//! Property-based tests over the crowd substrate: voting invariants,
//! platform/ledger accounting, and cache consistency under arbitrary
//! request sequences.

use crowd::voting::{resolve, Scheme};
use crowd::{CrowdConfig, CrowdPlatform, GoldOracle, PairKey, WorkerPool};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn vote_outcomes_within_bounds(seed in 0u64..5000, err in 0.0f64..0.45,
                                   truth in any::<bool>()) {
        let pool = WorkerPool::uniform(7, err);
        let mut rng = StdRng::seed_from_u64(seed);
        for scheme in [Scheme::TwoPlusOne, Scheme::StrongMajority, Scheme::Hybrid] {
            let out = resolve(scheme, &pool, truth, &mut rng);
            match scheme {
                Scheme::TwoPlusOne => prop_assert!(out.answers == 2 || out.answers == 3),
                _ => prop_assert!((2..=7).contains(&out.answers)),
            }
            if scheme == Scheme::StrongMajority {
                prop_assert!(out.strong);
            }
            if scheme == Scheme::Hybrid && out.label {
                prop_assert!(out.strong, "hybrid positives must be strong");
            }
        }
    }

    #[test]
    fn perfect_crowd_is_always_right(seed in 0u64..5000, truth in any::<bool>()) {
        let pool = WorkerPool::perfect(3);
        let mut rng = StdRng::seed_from_u64(seed);
        for scheme in [Scheme::TwoPlusOne, Scheme::StrongMajority, Scheme::Hybrid] {
            prop_assert_eq!(resolve(scheme, &pool, truth, &mut rng).label, truth);
        }
    }

    #[test]
    fn ledger_accounting_consistent(batches in prop::collection::vec(
        prop::collection::vec((0u32..40, 0u32..40), 1..25), 1..6,
    ), err in 0.0f64..0.3, seed in 0u64..1000) {
        let gold = GoldOracle::from_pairs((0..40).map(|i| (i, i)));
        let pool = if err == 0.0 { WorkerPool::perfect(5) } else { WorkerPool::uniform(5, err) };
        let mut platform = CrowdPlatform::new(pool, CrowdConfig { price_cents: 2.0, seed, ..Default::default() });
        let mut all_labeled: HashMap<PairKey, bool> = HashMap::new();
        for batch in &batches {
            let keys: Vec<PairKey> = batch.iter().map(|&(a, b)| PairKey::new(a, b)).collect();
            let got = platform.label_batch(&gold, &keys, Scheme::TwoPlusOne);
            // Results are a subset of the request.
            let req: HashSet<PairKey> = keys.iter().copied().collect();
            for (k, l) in &got {
                prop_assert!(req.contains(k));
                all_labeled.insert(*k, *l);
            }
            // No duplicate pairs in one batch result.
            let distinct: HashSet<PairKey> = got.iter().map(|(k, _)| *k).collect();
            prop_assert_eq!(distinct.len(), got.len());
        }
        let ledger = platform.ledger();
        // Every answer is paid at the configured price.
        prop_assert!((ledger.total_cents - ledger.answers_solicited as f64 * 2.0).abs() < 1e-9);
        // At least two answers per labeled pair.
        prop_assert!(ledger.answers_solicited >= 2 * ledger.pairs_labeled);
        // Cache holds every pair ever labeled.
        prop_assert!(platform.cache().len() as u64 >= ledger.pairs_labeled.min(all_labeled.len() as u64));
    }

    #[test]
    fn cache_makes_repeats_free(pairs in prop::collection::vec((0u32..30, 0u32..30), 10..30),
                                seed in 0u64..1000) {
        let gold = GoldOracle::from_pairs((0..30).map(|i| (i, i)));
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5),
                                              CrowdConfig { price_cents: 1.0, seed, ..Default::default() });
        let keys: Vec<PairKey> = pairs.iter().map(|&(a, b)| PairKey::new(a, b)).collect();
        let first = platform.label_all(&gold, &keys, Scheme::TwoPlusOne);
        let cents = platform.ledger().total_cents;
        let second = platform.label_batch(&gold, &keys, Scheme::TwoPlusOne);
        prop_assert_eq!(platform.ledger().total_cents, cents, "repeat must be free");
        // Cached labels are identical to the originals.
        let map: HashMap<PairKey, bool> = first.into_iter().collect();
        for (k, l) in second {
            prop_assert_eq!(map[&k], l);
        }
    }

    #[test]
    fn strong_requests_never_served_weak(seed in 0u64..1000) {
        let gold = GoldOracle::from_pairs([(0, 0)]);
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5),
                                              CrowdConfig { price_cents: 1.0, seed, ..Default::default() });
        let key = [PairKey::new(0, 0)];
        platform.label_all(&gold, &key, Scheme::TwoPlusOne);
        let labeled_before = platform.ledger().pairs_labeled;
        platform.label_all(&gold, &key, Scheme::StrongMajority);
        prop_assert!(platform.ledger().pairs_labeled > labeled_before);
        // Now a strong label exists; further strong requests are free.
        let labeled_mid = platform.ledger().pairs_labeled;
        platform.label_all(&gold, &key, Scheme::StrongMajority);
        prop_assert_eq!(platform.ledger().pairs_labeled, labeled_mid);
    }
}
