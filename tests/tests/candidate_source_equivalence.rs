//! Property-based equivalence of the two candidate sources.
//!
//! The determinism contract for the blocking redesign: [`IndexedJoin`]
//! must produce a candidate list **byte-identical** (same pairs, same
//! row-major order) to [`CartesianScan`] — the equivalence oracle — over
//! arbitrary tables and rules, at any thread count. Tables here include
//! the nasty cases: empty strings, whitespace-only values, nulls,
//! unicode, duplicated rows, and empty tables.

use corleone::prelude::*;
use corleone::source::{CandidateSource, CartesianScan, IndexedJoin, PlannedSource};
use forest::{Op, Predicate, Rule};
use proptest::prelude::*;
use similarity::{Attribute, FeatureKind, Schema, Table, Value};
use std::sync::Arc;

/// Overlapping product-style names, so joins have non-trivial output.
const CORPUS: &[&str] = &[
    "kingston hyperx 4gb memory kit",
    "kingston hyperx 4gb",
    "kingston valueram",
    "corsair vengeance 8gb memory",
    "corsair 8gb",
    "samsung evo ssd 500",
    "samsung evo",
    "seagate barracuda 2tb drive",
    "data mining",
    "data  mining",
    "databases",
];

/// Degenerate shapes: empty, whitespace-only, symbol-only, unicode.
const WEIRD: &[&str] = &["", " ", "  !!  ", "héllo wörld", "a a b"];

/// Text values with adversarial shapes for tokenization and analysis.
fn text_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        3 => (0..CORPUS.len()).prop_map(|i| Value::Text(CORPUS[i].to_string())),
        1 => (0..WEIRD.len()).prop_map(|i| Value::Text(WEIRD[i].to_string())),
        1 => Just(Value::Null),
    ]
}

fn rows(max: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    prop::collection::vec(text_value().prop_map(|v| vec![v]), 0..max)
}

/// Build a seedless task directly (seeds are irrelevant to candidate
/// generation, and skipping `MatchTask::new` lets tables be empty).
fn make_task(rows_a: Vec<Vec<Value>>, rows_b: Vec<Vec<Value>>) -> MatchTask {
    let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
    let a = Table::new("a", schema.clone(), rows_a);
    let b = Table::new("b", schema, rows_b);
    let vectorizer = similarity::FeatureVectorizer::fit(&a, &b);
    MatchTask {
        table_a: a,
        table_b: b,
        instruction: String::new(),
        seeds: vec![],
        vectorizer,
        analysis: Default::default(),
    }
}

/// Indexable feature kinds present in the single-text-attr library.
const INDEXABLE: &[FeatureKind] = &[
    FeatureKind::JaccardWords,
    FeatureKind::Jaccard3Grams,
    FeatureKind::DiceWords,
    FeatureKind::OverlapWords,
    FeatureKind::CosineTfIdf,
    FeatureKind::ExactMatch,
    FeatureKind::Soundex,
];

fn feature_of(task: &MatchTask, kind: FeatureKind) -> usize {
    task.vectorizer
        .library()
        .defs
        .iter()
        .position(|d| d.kind == kind)
        .expect("kind present in text library")
}

/// An indexable rule: 1–3 predicates over indexable kinds.
fn indexable_rule() -> impl Strategy<Value = Vec<(usize, f64)>> {
    prop::collection::vec(
        (0..INDEXABLE.len(), 0.0f64..0.999),
        1..4,
    )
}

fn to_rule(task: &MatchTask, spec: &[(usize, f64)]) -> Rule {
    Rule {
        predicates: spec
            .iter()
            .map(|&(ki, t)| Predicate {
                feature: feature_of(task, INDEXABLE[ki]),
                op: Op::Le,
                threshold: t,
                nan_satisfies: true,
            })
            .collect(),
        label: false,
        tree: 0,
        n_pos: 0,
        n_neg: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tentpole property: indexed == scan, byte-for-byte, at 1/2/8
    /// threads, over arbitrary tables and 1–2 indexable rules.
    #[test]
    fn indexed_join_is_byte_identical_to_scan(
        rows_a in rows(14),
        rows_b in rows(10),
        rule_specs in prop::collection::vec(indexable_rule(), 1..3),
    ) {
        let task = make_task(rows_a, rows_b);
        let rules: Vec<Rule> = rule_specs.iter().map(|s| to_rule(&task, s)).collect();
        let join = IndexedJoin::plan(&task, &rules)
            .expect("all-indexable rules must plan an indexed join");
        let want = CartesianScan::new(&task, rules.clone()).generate(Threads::new(1));
        for threads in [1usize, 2, 8] {
            let got = join.generate(Threads::new(threads));
            prop_assert_eq!(&got, &want, "divergence at {} threads", threads);
        }
        // Row-major order invariant.
        prop_assert!(want.windows(2).all(|w| w[0] < w[1]));
    }

    /// Planner fallback: a rule set containing only unindexable rules
    /// routes to the scan and produces the same survivors either way
    /// (trivially — but the planner must not panic or misroute).
    #[test]
    fn unindexable_rules_fall_back_to_scan(
        rows_a in rows(8),
        rows_b in rows(6),
        threshold in 0.0f64..0.999,
    ) {
        let task = make_task(rows_a, rows_b);
        let lev = feature_of(&task, FeatureKind::Levenshtein);
        let rule = Rule {
            predicates: vec![Predicate {
                feature: lev,
                op: Op::Le,
                threshold,
                nan_satisfies: true,
            }],
            label: false,
            tree: 0,
            n_pos: 0,
            n_neg: 0,
        };
        let planned = corleone::source::plan_blocking_source(&task, std::slice::from_ref(&rule));
        prop_assert!(matches!(planned, PlannedSource::Cartesian(_)));
        let a = planned.generate(Threads::new(2));
        let b = CartesianScan::new(&task, vec![rule]).generate(Threads::new(1));
        prop_assert_eq!(a, b);
    }

    /// The planned source (whatever the planner picks) is itself
    /// thread-count deterministic.
    #[test]
    fn planned_source_is_thread_deterministic(
        rows_a in rows(10),
        rows_b in rows(8),
        spec in indexable_rule(),
    ) {
        let task = make_task(rows_a, rows_b);
        let rules = vec![to_rule(&task, &spec)];
        let planned = corleone::source::plan_blocking_source(&task, &rules);
        let base = planned.generate(Threads::new(1));
        for threads in [2usize, 8] {
            prop_assert_eq!(&planned.generate(Threads::new(threads)), &base);
        }
    }
}
