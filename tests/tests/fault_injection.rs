//! Fault-injection integration tests: the full pipeline against a
//! misbehaving simulated marketplace (HIT expiry, assignment abandonment,
//! transient outages). The acceptance bar is the one from the fault-model
//! design: a run under aggressive faults either completes — possibly
//! labeled `Degraded` — or comes back as a typed error. It never panics.

use corleone::error::CorleoneError;
use corleone::task::task_from_parts;
use corleone::{CorleoneConfig, Engine, MatchTask, RunReport, Termination};
use crowd::{CrowdConfig, CrowdPlatform, FaultConfig, GoldOracle, RetryPolicy, WorkerPool};
use datagen::{EmDataset, GenConfig};

fn setup(name: &str, scale: f64, seed: u64) -> (MatchTask, GoldOracle, EmDataset) {
    let ds = datagen::by_name(name, GenConfig { scale, seed }).unwrap();
    let task = task_from_parts(
        ds.table_a.clone(),
        ds.table_b.clone(),
        &ds.instruction,
        ds.seeds.positive,
        ds.seeds.negative,
    );
    let gold = GoldOracle::from_pairs(ds.gold.iter().copied());
    (task, gold, ds)
}

fn faulty_platform(
    ds: &EmDataset,
    seed: u64,
    faults: FaultConfig,
    retry: RetryPolicy,
) -> CrowdPlatform {
    CrowdPlatform::with_faults(
        WorkerPool::uniform(25, 0.05),
        CrowdConfig { price_cents: ds.price_cents, seed, ..Default::default() },
        faults,
        retry,
    )
}

fn run_faulty(
    name: &str,
    seed: u64,
    faults: FaultConfig,
    retry: RetryPolicy,
) -> Result<RunReport, CorleoneError> {
    let (task, gold, ds) = setup(name, 0.1, seed);
    let mut p = faulty_platform(&ds, seed, faults, retry);
    Engine::new(CorleoneConfig::small())
        .with_seed(seed)
        .session(&task)
        .platform(&mut p)
        .oracle(&gold)
        .gold(gold.matches())
        .try_run()
}

/// The headline acceptance test: 30% HIT expiry + 20% abandonment. The
/// default retry policy must carry the run to a labeled completion, or the
/// run must surface a typed error — under no circumstances a panic.
#[test]
fn aggressive_faults_complete_or_fail_typed() {
    let faults = FaultConfig {
        hit_expiry_prob: 0.30,
        abandonment_prob: 0.20,
        seed: 11,
        ..Default::default()
    };
    match run_faulty("restaurants", 11, faults, RetryPolicy::default()) {
        Ok(report) => {
            // The run pushed through the fault storm; the report must say
            // how it ended and must have seen faults along the way.
            assert!(
                matches!(
                    report.termination,
                    Termination::Converged
                        | Termination::MaxIterations
                        | Termination::BudgetExhausted
                        | Termination::Degraded
                ),
                "unlabeled termination {:?}",
                report.termination
            );
            assert!(
                report.perf.faults.any(),
                "30% expiry + 20% abandonment must register fault events"
            );
            assert!(
                report.perf.faults.reposts > 0,
                "retries must have fired under 30% expiry"
            );
        }
        Err(e) => {
            // Equally acceptable: a typed error, with a real message.
            assert!(!e.to_string().is_empty());
        }
    }
}

/// With retries disabled, aggressive expiry starves the engine of labels;
/// the run must degrade or fail typed, and the failed-HIT count must show
/// up in the report when it completes.
#[test]
fn no_retries_under_heavy_expiry_degrades_or_fails_typed() {
    let faults = FaultConfig { hit_expiry_prob: 0.5, seed: 23, ..Default::default() };
    let retry = RetryPolicy { max_reposts: 0, ..Default::default() };
    match run_faulty("restaurants", 23, faults, retry) {
        Ok(report) => {
            assert!(
                report.perf.faults.hits_failed > 0,
                "50% expiry with no reposts must fail HITs"
            );
            assert_eq!(
                report.termination,
                Termination::Degraded,
                "failed HITs must label the run Degraded"
            );
        }
        Err(CorleoneError::Crowd(_)) => {}
        Err(e) => panic!("expected a crowd error, got: {e}"),
    }
}

/// Moderate faults with the default retry policy should still produce a
/// usable matcher: the pipeline's whole point is riding out marketplace
/// noise, not just surviving it.
#[test]
fn moderate_faults_still_match_well() {
    let faults = FaultConfig {
        hit_expiry_prob: 0.10,
        abandonment_prob: 0.05,
        outage_prob: 0.02,
        seed: 42,
        ..Default::default()
    };
    let report = run_faulty("restaurants", 42, faults, RetryPolicy::default())
        .expect("moderate faults with retries must complete");
    let f1 = report.final_true.expect("gold supplied").f1;
    assert!(f1 > 0.6, "moderate faults wrecked the matcher: F1 {f1}");
    // Retries cost simulated time: backoff must be visible in the clock.
    if report.perf.faults.reposts > 0 {
        assert!(report.perf.faults.backoff_secs > 0.0);
    }
}

/// The same faulty run twice is byte-identical: fault injection draws from
/// its own seeded stream, so it is as deterministic as the rest.
#[test]
fn faulty_runs_are_reproducible() {
    let faults = FaultConfig {
        hit_expiry_prob: 0.15,
        abandonment_prob: 0.10,
        seed: 7,
        ..Default::default()
    };
    let a = run_faulty("restaurants", 7, faults, RetryPolicy::default());
    let b = run_faulty("restaurants", 7, faults, RetryPolicy::default());
    match (a, b) {
        (Ok(ra), Ok(rb)) => {
            assert_eq!(
                ra.try_deterministic_json().unwrap(),
                rb.try_deterministic_json().unwrap()
            );
            assert_eq!(ra.perf.faults, rb.perf.faults);
            assert_eq!(ra.termination, rb.termination);
        }
        (Err(ea), Err(eb)) => assert_eq!(ea.to_string(), eb.to_string()),
        (a, b) => panic!(
            "two identical faulty runs diverged: {:?} vs {:?}",
            a.map(|r| r.termination),
            b.map(|r| r.termination)
        ),
    }
}
