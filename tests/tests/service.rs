//! Multi-tenant service integration tests: the determinism contract of
//! the `service` subsystem wired through the whole pipeline.
//!
//! The acceptance bar, from the service design: any tenant's final report
//! must be **byte-identical** (`RunReport::deterministic_json`) to the
//! same task run solo through `RunSession` — at any thread count, under
//! any interleaving with other tenants, with and without fault injection,
//! and across a kill-and-restart of the whole service. Admission control
//! and incompatible-checkpoint resubmissions must surface as typed
//! errors, never panics.

use corleone::task::task_from_parts;
use corleone::{CorleoneConfig, Engine, MatchTask, RunReport};
use crowd::{CrowdConfig, CrowdPlatform, FaultConfig, GoldOracle, RetryPolicy, WorkerPool};
use datagen::GenConfig;
use service::{MatchService, ServiceConfig, ServiceError, ServiceEvent, TenantSpec};
use std::path::PathBuf;
use store::StoreError;

fn setup(name: &str, scale: f64, seed: u64) -> (MatchTask, GoldOracle, f64) {
    let ds = datagen::by_name(name, GenConfig { scale, seed }).unwrap();
    let task = task_from_parts(
        ds.table_a.clone(),
        ds.table_b.clone(),
        &ds.instruction,
        ds.seeds.positive,
        ds.seeds.negative,
    );
    let gold = GoldOracle::from_pairs(ds.gold.iter().copied());
    (task, gold, ds.price_cents)
}

fn platform(price_cents: f64, seed: u64, faults: FaultConfig) -> CrowdPlatform {
    CrowdPlatform::with_faults(
        WorkerPool::uniform(25, 0.05),
        CrowdConfig { price_cents, seed, ..Default::default() },
        faults,
        RetryPolicy::default(),
    )
}

fn light_faults() -> FaultConfig {
    FaultConfig { hit_expiry_prob: 0.05, abandonment_prob: 0.05, ..Default::default() }
}

/// The mixed tenant population every test submits: two datasets, distinct
/// seeds, and one tenant running under fault injection.
fn tenant_fixtures() -> Vec<(&'static str, &'static str, u64, FaultConfig)> {
    vec![
        ("rest-clean", "restaurants", 17, FaultConfig::default()),
        ("cite-clean", "citations", 23, FaultConfig::default()),
        ("rest-faulty", "restaurants", 31, light_faults()),
    ]
}

/// A tenant spec over dataset-seed `ds_seed` running with RNG seed
/// `run_seed` (kept separate so two tenants can share one table).
fn spec_over(
    run_id: &str,
    dataset: &str,
    ds_seed: u64,
    run_seed: u64,
    faults: FaultConfig,
) -> TenantSpec {
    let (task, gold, price) = setup(dataset, 0.08, ds_seed);
    let matches = gold.matches().clone();
    TenantSpec {
        run_id: run_id.to_string(),
        task,
        platform: platform(price, run_seed, faults),
        oracle: Box::new(gold),
        gold: Some(matches),
        config: CorleoneConfig::small(),
        seed: run_seed,
    }
}

fn spec_for(run_id: &str, dataset: &str, seed: u64, faults: FaultConfig) -> TenantSpec {
    spec_over(run_id, dataset, seed, seed, faults)
}

/// The solo reference: same task, same collaborators, run through
/// `RunSession` with default execution settings.
fn solo_over(dataset: &str, ds_seed: u64, run_seed: u64, faults: FaultConfig) -> RunReport {
    let (task, gold, price) = setup(dataset, 0.08, ds_seed);
    let mut p = platform(price, run_seed, faults);
    Engine::new(CorleoneConfig::small())
        .with_seed(run_seed)
        .session(&task)
        .platform(&mut p)
        .oracle(&gold)
        .gold(gold.matches())
        .run()
}

fn solo_report(dataset: &str, seed: u64, faults: FaultConfig) -> RunReport {
    solo_over(dataset, seed, seed, faults)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("corleone-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn concurrent_tenants_match_solo_runs_at_every_thread_count() {
    let fixtures = tenant_fixtures();
    let references: Vec<String> = fixtures
        .iter()
        .map(|(_, ds, seed, faults)| solo_report(ds, *seed, *faults).deterministic_json())
        .collect();

    for threads in [1usize, 2, 8] {
        let mut svc = MatchService::new(ServiceConfig { threads, ..Default::default() })
            .expect("no registry to open");
        for (id, ds, seed, faults) in &fixtures {
            svc.submit(spec_for(id, ds, *seed, *faults)).expect("admitted");
        }
        svc.run_all();
        for ((id, ..), want) in fixtures.iter().zip(&references) {
            let got = svc.take_report(id).expect("finished").deterministic_json();
            assert_eq!(
                &got, want,
                "tenant {id} at {threads} threads diverged from its solo run"
            );
        }
    }
}

#[test]
fn killed_service_resumes_every_tenant_byte_identically() {
    let fixtures = tenant_fixtures();
    let references: Vec<String> = fixtures
        .iter()
        .map(|(_, ds, seed, faults)| solo_report(ds, *seed, *faults).deterministic_json())
        .collect();
    let root = fresh_dir("kill-resume");

    // First incarnation: admit everyone, run a few quanta, then "crash"
    // (drop the service mid-flight).
    let cfg = ServiceConfig { checkpoint_root: Some(root.clone()), ..Default::default() };
    let mut first = MatchService::new(cfg.clone()).expect("registry opens");
    for (id, ds, seed, faults) in &fixtures {
        first.submit(spec_for(id, ds, *seed, *faults)).expect("admitted");
    }
    let idle = first.run_ticks(4);
    assert!(!idle, "the kill must land mid-flight; shrink the tick budget");
    drop(first);

    // Second incarnation over the same registry root: resubmitting the
    // same specs resumes every tenant from its newest snapshot.
    let mut second = MatchService::new(cfg).expect("registry reopens");
    for (id, ds, seed, faults) in &fixtures {
        second.submit(spec_for(id, ds, *seed, *faults)).expect("readmitted");
    }
    let events = second.poll_events();
    assert!(
        events
            .iter()
            .all(|e| matches!(e, ServiceEvent::Admitted { resuming: true, .. })),
        "every resubmission must announce it is resuming: {events:?}"
    );
    second.run_all();
    assert!(second.service_perf().tenants_resumed >= 1);
    for ((id, ..), want) in fixtures.iter().zip(&references) {
        let got = second.take_report(id).expect("finished").deterministic_json();
        assert_eq!(&got, want, "tenant {id} diverged after kill-and-resume");
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn resubmission_under_a_changed_config_is_a_typed_refusal() {
    let root = fresh_dir("fp-mismatch");
    let cfg = ServiceConfig { checkpoint_root: Some(root.clone()), ..Default::default() };
    let mut svc = MatchService::new(cfg.clone()).expect("registry opens");
    svc.submit(spec_for("tenant", "restaurants", 17, FaultConfig::default()))
        .expect("admitted");
    svc.run_all();
    drop(svc);

    // Same run id, different engine configuration ⇒ different run
    // fingerprint ⇒ the stamped snapshots refuse to resume.
    let mut changed = spec_for("tenant", "restaurants", 17, FaultConfig::default());
    changed.config.matcher.batch_size += 1;
    let mut svc = MatchService::new(cfg).expect("registry reopens");
    match svc.submit(changed) {
        Err(ServiceError::Store(StoreError::FingerprintMismatch { expected, found, .. })) => {
            assert!(found.is_some(), "the snapshot carries a fingerprint");
            assert_ne!(Some(expected), found);
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn same_table_tenants_share_one_analysis_build() {
    let mut svc = MatchService::new(ServiceConfig::default()).expect("no registry");
    // Same dataset seed (identical tables + vectorizer), different run
    // seeds: the runs differ, the analysis layer is content-identical.
    svc.submit(spec_over("alpha", "restaurants", 17, 17, FaultConfig::default()))
        .expect("admitted");
    svc.submit(spec_over("beta", "restaurants", 17, 99, FaultConfig::default()))
        .expect("admitted");
    svc.run_all();
    let perf = svc.service_perf();
    assert_eq!(perf.analysis_cache_misses, 1, "first tenant builds the analysis");
    assert_eq!(perf.analysis_cache_hits, 1, "second tenant adopts it");
    // Sharing must not leak into run bytes: the adopting tenant still
    // matches its solo run (which builds the analysis itself).
    let beta = svc.take_report("beta").expect("finished").deterministic_json();
    let solo = solo_over("restaurants", 17, 99, FaultConfig::default()).deterministic_json();
    assert_eq!(beta, solo);
}

#[test]
fn queued_tenants_run_after_active_ones_and_still_match_solo() {
    let mut svc = MatchService::new(ServiceConfig { max_active: 1, ..Default::default() })
        .expect("no registry");
    svc.submit(spec_for("front", "restaurants", 17, FaultConfig::default()))
        .expect("activates");
    svc.submit(spec_for("back", "restaurants", 99, FaultConfig::default()))
        .expect("queues");
    let events = svc.poll_events();
    assert!(matches!(
        events.first(),
        Some(ServiceEvent::Admitted { queued: false, .. })
    ));
    assert!(matches!(
        events.get(1),
        Some(ServiceEvent::Admitted { queued: true, .. })
    ));
    svc.run_all();
    let back = svc.take_report("back").expect("finished").deterministic_json();
    let solo = solo_report("restaurants", 99, FaultConfig::default()).deterministic_json();
    assert_eq!(back, solo, "a queued tenant's bytes must match its solo run");
}
