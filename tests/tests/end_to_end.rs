//! End-to-end integration tests: the full hands-off pipeline over the
//! synthetic datasets, crossing every crate (datagen → similarity →
//! forest → crowd → corleone).

use corleone::task::task_from_parts;
use corleone::{CorleoneConfig, Engine, MatchTask};
use crowd::{CrowdConfig, CrowdPlatform, GoldOracle, WorkerPool};
use datagen::{EmDataset, GenConfig};

fn setup(name: &str, scale: f64, seed: u64) -> (MatchTask, GoldOracle, EmDataset) {
    let ds = datagen::by_name(name, GenConfig { scale, seed }).unwrap();
    let task = task_from_parts(
        ds.table_a.clone(),
        ds.table_b.clone(),
        &ds.instruction,
        ds.seeds.positive,
        ds.seeds.negative,
    );
    let gold = GoldOracle::from_pairs(ds.gold.iter().copied());
    (task, gold, ds)
}

fn platform(ds: &EmDataset, error: f64, seed: u64) -> CrowdPlatform {
    let pool = if error == 0.0 {
        WorkerPool::perfect(25)
    } else {
        WorkerPool::uniform(25, error)
    };
    CrowdPlatform::new(pool, CrowdConfig { price_cents: ds.price_cents, seed, ..Default::default() })
}

#[test]
fn restaurants_end_to_end_no_blocking() {
    let (task, gold, ds) = setup("restaurants", 0.12, 5);
    let mut p = platform(&ds, 0.05, 5);
    let mut cfg = CorleoneConfig::default();
    cfg.blocker.t_b = 100_000; // restaurants stays under: no blocking
    let report = Engine::new(cfg).with_seed(5).session(&task).platform(&mut p).oracle(&gold).gold(gold.matches()).run();
    assert!(!report.blocker.triggered, "restaurants must not trigger blocking");
    let f1 = report.final_true.unwrap().f1;
    assert!(f1 > 0.75, "restaurants F1 {f1}");
    assert!(report.total_cost_cents > 0.0);
}

#[test]
fn citations_end_to_end_with_blocking() {
    let (task, gold, ds) = setup("citations", 0.03, 6);
    let mut p = platform(&ds, 0.05, 6);
    let mut cfg = CorleoneConfig::default();
    cfg.blocker.t_b = 50_000; // cartesian ~ 150k ⇒ blocking triggers
    let report = Engine::new(cfg).with_seed(6).session(&task).platform(&mut p).oracle(&gold).gold(gold.matches()).run();
    assert!(report.blocker.triggered);
    assert!(
        report.blocker.umbrella_size < report.blocker.cartesian as usize,
        "blocking must shrink the candidate set"
    );
    assert!(
        report.blocking_recall.unwrap() > 0.8,
        "blocking recall {}",
        report.blocking_recall.unwrap()
    );
    let f1 = report.final_true.unwrap().f1;
    assert!(f1 > 0.75, "citations F1 {f1}");
}

#[test]
fn estimates_track_truth_within_reason() {
    let (task, gold, ds) = setup("products", 0.02, 7);
    let mut p = platform(&ds, 0.05, 7);
    let report = Engine::new(CorleoneConfig::default())
        .with_seed(7)
        .session(&task).platform(&mut p).oracle(&gold).gold(gold.matches()).run();
    let est = report.final_estimate.unwrap();
    let truth = report.final_true.unwrap();
    // Paper Table 4: estimates land within ~0.5-5.4% of truth; allow a
    // wider band for the small scale + noisy crowd.
    assert!(
        (est.f1 - truth.f1).abs() < 0.2,
        "estimated F1 {} vs true {}",
        est.f1,
        truth.f1
    );
}

#[test]
fn perfect_crowd_beats_noisy_crowd() {
    let (task, gold, ds) = setup("products", 0.02, 8);
    let f1_at = |error: f64| {
        let mut p = platform(&ds, error, 8);
        Engine::new(CorleoneConfig::default())
            .with_seed(8)
            .session(&task).platform(&mut p).oracle(&gold).gold(gold.matches()).run()
            .final_true
            .unwrap()
            .f1
    };
    let perfect = f1_at(0.0);
    let noisy = f1_at(0.3);
    assert!(
        perfect >= noisy - 0.05,
        "perfect crowd ({perfect}) should not lose clearly to a 30%-error crowd ({noisy})"
    );
}

#[test]
fn hands_off_contract_no_gold_needed() {
    // Corleone itself must run without ever touching the gold standard —
    // the defining hands-off property. Only the simulated workers see it.
    let (task, gold, ds) = setup("restaurants", 0.06, 9);
    let mut p = platform(&ds, 0.05, 9);
    let report = Engine::new(CorleoneConfig::default())
        .with_seed(9)
        .session(&task).platform(&mut p).oracle(&gold).run();
    assert!(report.final_true.is_none());
    assert!(report.blocking_recall.is_none());
    assert!(report.final_estimate.is_some(), "estimate must come from the crowd");
    assert!(!report.predicted_matches.is_empty());
}

#[test]
fn run_report_serializes() {
    let (task, gold, ds) = setup("restaurants", 0.06, 10);
    let mut p = platform(&ds, 0.0, 10);
    let report = Engine::new(CorleoneConfig::default())
        .with_seed(10)
        .session(&task).platform(&mut p).oracle(&gold).gold(gold.matches()).run();
    let json = serde_json::to_string(&report).expect("report must serialize");
    assert!(json.contains("blocker"));
    let back: corleone::RunReport = serde_json::from_str(&json).expect("roundtrip");
    assert_eq!(back.predicted_matches, report.predicted_matches);
}
