//! Checkpoint/resume integration tests: the crash-safety contract of the
//! `store` subsystem wired through the whole pipeline.
//!
//! The acceptance bar, from the persistence-layer design: a run
//! interrupted at *any* iteration boundary and resumed from its snapshot
//! must produce a final report **byte-identical**
//! (`RunReport::deterministic_json`) to the uninterrupted run — at any
//! thread count, with and without fault injection. Damaged or
//! incompatible snapshots must surface as typed errors, never panics, and
//! a run that stopped on `BudgetExhausted` must continue to convergence
//! when resumed under a raised budget.

use corleone::error::CorleoneError;
use corleone::task::task_from_parts;
use corleone::{CorleoneConfig, Engine, MatchTask, Termination};
use crowd::{CrowdConfig, CrowdPlatform, FaultConfig, GoldOracle, RetryPolicy, WorkerPool};
use datagen::GenConfig;
use std::path::{Path, PathBuf};
use store::StoreError;

fn setup(scale: f64, seed: u64) -> (MatchTask, GoldOracle, f64) {
    let ds = datagen::by_name("restaurants", GenConfig { scale, seed }).unwrap();
    let task = task_from_parts(
        ds.table_a.clone(),
        ds.table_b.clone(),
        &ds.instruction,
        ds.seeds.positive,
        ds.seeds.negative,
    );
    let gold = GoldOracle::from_pairs(ds.gold.iter().copied());
    (task, gold, ds.price_cents)
}

fn platform(price_cents: f64, seed: u64, faults: FaultConfig) -> CrowdPlatform {
    CrowdPlatform::with_faults(
        WorkerPool::uniform(25, 0.05),
        CrowdConfig { price_cents, seed, ..Default::default() },
        faults,
        RetryPolicy::default(),
    )
}

/// A fresh, empty scratch directory under the system temp dir.
fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("corleone-resume-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run once: reference, then checkpointed (must match), then a resume from
/// every retained snapshot (each must match), all at thread count
/// `threads`. The platform any resumed session starts with is deliberately
/// a *blank* one — `resume_from` must overwrite it wholesale with the
/// snapshot's platform state.
fn assert_every_boundary_resumes(tag: &str, faults: FaultConfig, threads: usize) {
    let (task, gold, price) = setup(0.1, 17);
    let engine = Engine::new(CorleoneConfig::small()).with_seed(17);
    let dir = fresh_dir(tag);

    let mut p_ref = platform(price, 17, faults);
    let reference = engine
        .session(&task)
        .platform(&mut p_ref)
        .oracle(&gold)
        .gold(gold.matches())
        .threads(threads)
        .run();

    let mut p_ck = platform(price, 17, faults);
    let checkpointed = engine
        .session(&task)
        .platform(&mut p_ck)
        .oracle(&gold)
        .gold(gold.matches())
        .threads(threads)
        .checkpoint_dir(&dir)
        .checkpoint_every(1)
        .checkpoint_keep(0)
        .run();
    assert_eq!(
        checkpointed.deterministic_json(),
        reference.deterministic_json(),
        "checkpointing perturbed the run ({tag}, {threads} threads)"
    );
    assert!(checkpointed.perf.snapshots_written > 0);

    let snaps = store::Snapshotter::create(&dir).expect("open dir").list().expect("list");
    assert!(!snaps.is_empty(), "checkpointed run left no snapshots ({tag})");
    for snap in &snaps {
        let mut p_res = CrowdPlatform::new(WorkerPool::perfect(1), CrowdConfig::default());
        let resumed = engine
            .session(&task)
            .platform(&mut p_res)
            .oracle(&gold)
            .gold(gold.matches())
            .threads(threads)
            .resume_from(snap)
            .run();
        assert_eq!(
            resumed.deterministic_json(),
            reference.deterministic_json(),
            "resume from {snap:?} diverged ({tag}, {threads} threads)"
        );
        assert!(resumed.perf.resumed_from_iteration.is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_run_resumes_byte_identically_one_thread() {
    assert_every_boundary_resumes("clean-t1", FaultConfig::default(), 1);
}

#[test]
fn clean_run_resumes_byte_identically_two_threads() {
    assert_every_boundary_resumes("clean-t2", FaultConfig::default(), 2);
}

#[test]
fn clean_run_resumes_byte_identically_eight_threads() {
    assert_every_boundary_resumes("clean-t8", FaultConfig::default(), 8);
}

#[test]
fn faulty_run_resumes_byte_identically() {
    // Fault injection draws from its own seeded stream whose position is
    // part of the snapshot, so resume must replay the same expiries and
    // abandonments the uninterrupted run saw.
    let faults = FaultConfig {
        hit_expiry_prob: 0.10,
        abandonment_prob: 0.05,
        seed: 17,
        ..Default::default()
    };
    for threads in [1, 2, 8] {
        assert_every_boundary_resumes(&format!("faulty-t{threads}"), faults, threads);
    }
}

/// Write one checkpointed run and return (engine state, latest snapshot
/// path, scratch dir) for the damage tests below.
fn checkpointed_run(tag: &str) -> (MatchTask, GoldOracle, PathBuf, PathBuf) {
    let (task, gold, price) = setup(0.1, 29);
    let dir = fresh_dir(tag);
    let mut p = platform(price, 29, FaultConfig::default());
    Engine::new(CorleoneConfig::small())
        .with_seed(29)
        .session(&task)
        .platform(&mut p)
        .oracle(&gold)
        .gold(gold.matches())
        .checkpoint_dir(&dir)
        .run();
    let latest = store::Snapshotter::create(&dir).expect("open").latest().expect("latest");
    (task, gold, latest, dir)
}

fn try_resume(task: &MatchTask, gold: &GoldOracle, snap: &Path) -> Result<(), CorleoneError> {
    let mut p = CrowdPlatform::new(WorkerPool::perfect(1), CrowdConfig::default());
    Engine::new(CorleoneConfig::small())
        .with_seed(29)
        .session(task)
        .platform(&mut p)
        .oracle(gold)
        .resume_from(snap)
        .try_run()
        .map(|_| ())
}

#[test]
fn corrupted_checksum_is_a_typed_error() {
    let (task, gold, latest, dir) = checkpointed_run("corrupt");
    let text = std::fs::read_to_string(&latest).expect("read snapshot");
    // Change a payload *value* (whitespace would survive the canonical
    // re-rendering the checksum verifies): seed 29 is 0x1d.
    let tampered =
        text.replacen("\"seed_hex\":\"000000000000001d\"", "\"seed_hex\":\"000000000000001e\"", 1);
    assert_ne!(text, tampered, "snapshot layout changed; update the tamper probe");
    std::fs::write(&latest, tampered).expect("write tampered snapshot");
    match try_resume(&task, &gold, &latest) {
        Err(CorleoneError::Store(StoreError::ChecksumMismatch { .. })) => {}
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn schema_version_mismatch_is_a_typed_error() {
    let (task, gold, latest, dir) = checkpointed_run("schema");
    let text = std::fs::read_to_string(&latest).expect("read snapshot");
    let current = format!("\"schema_version\":{}", store::SCHEMA_VERSION);
    let future = text.replacen(&current, "\"schema_version\":999", 1);
    assert_ne!(text, future, "envelope layout changed; update the version probe");
    std::fs::write(&latest, future).expect("write future snapshot");
    match try_resume(&task, &gold, &latest) {
        Err(CorleoneError::Store(StoreError::SchemaMismatch { found: 999, expected, .. })) => {
            assert_eq!(expected, store::SCHEMA_VERSION);
        }
        other => panic!("expected SchemaMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncated_snapshot_is_a_typed_error() {
    let (task, gold, latest, dir) = checkpointed_run("truncate");
    let text = std::fs::read_to_string(&latest).expect("read snapshot");
    std::fs::write(&latest, &text[..text.len() / 2]).expect("truncate snapshot");
    match try_resume(&task, &gold, &latest) {
        Err(CorleoneError::Store(StoreError::Corrupt { .. })) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_snapshot_is_a_typed_error() {
    let (task, gold, _) = setup(0.1, 31);
    let bogus = std::env::temp_dir().join("corleone-resume-no-such-snapshot.json");
    match try_resume(&task, &gold, &bogus) {
        Err(CorleoneError::Store(StoreError::Io { .. })) => {}
        other => panic!("expected Io, got {other:?}"),
    }
}

#[test]
fn snapshot_from_a_different_task_is_a_typed_error() {
    let (_task, gold, latest, dir) = checkpointed_run("othertask");
    // A task with a different schema carries a different run
    // fingerprint; resuming against it must be refused at the envelope,
    // not garbage-matched.
    let ds = datagen::by_name("citations", GenConfig { scale: 0.1, seed: 29 }).unwrap();
    let other = task_from_parts(
        ds.table_a.clone(),
        ds.table_b.clone(),
        &ds.instruction,
        ds.seeds.positive,
        ds.seeds.negative,
    );
    match try_resume(&other, &gold, &latest) {
        Err(CorleoneError::Store(StoreError::FingerprintMismatch { expected, found, .. })) => {
            assert!(found.is_some(), "snapshot was written with a fingerprint");
            assert_ne!(Some(expected), found);
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn snapshots_carry_no_analysis_payload_and_resume_byte_identically() {
    use corleone::Threads;

    // The record-analysis layer is derived state: building it must not
    // change what a task serializes to (the cell renders as `null`), so
    // snapshots can never grow an analysis payload.
    let (task, gold, price) = setup(0.1, 53);
    let before = serde_json::to_string(&task).expect("serialize task");
    assert!(before.contains("\"analysis\":null"), "analysis cell must serialize as null");
    task.ensure_analysis(Threads::new(2));
    let after = serde_json::to_string(&task).expect("serialize task with analysis built");
    assert_eq!(before, after, "building the analysis changed the task's serialized form");

    // A checkpointed run (which builds the analysis internally) must write
    // snapshots free of analysis internals, and byte-identical to the
    // snapshots written when the task enters the run with the analysis
    // already built.
    let engine = Engine::new(CorleoneConfig::small()).with_seed(53);
    let run_with = |task: &MatchTask, dir: &Path| {
        let mut p = platform(price, 53, FaultConfig::default());
        let report = engine
            .session(task)
            .platform(&mut p)
            .oracle(&gold)
            .gold(gold.matches())
            .checkpoint_dir(dir)
            .checkpoint_every(1)
            .checkpoint_keep(0)
            .run();
        let snaps = store::Snapshotter::create(dir).expect("open").list().expect("list");
        assert!(!snaps.is_empty());
        (report, snaps)
    };

    let dir_pre = fresh_dir("analysis-prebuilt");
    let (report_pre, snaps_pre) = run_with(&task, &dir_pre);

    let (cold_task, _, _) = setup(0.1, 53);
    let dir_cold = fresh_dir("analysis-cold");
    let (report_cold, snaps_cold) = run_with(&cold_task, &dir_cold);

    assert_eq!(report_pre.deterministic_json(), report_cold.deterministic_json());
    assert_eq!(snaps_pre.len(), snaps_cold.len());

    // Zero the wall-clock fields (and the checksum that covers them) so
    // the only run-to-run variation left is timing digits.
    fn normalized(path: &Path) -> String {
        fn scrub(v: &mut serde::Value) {
            match v {
                serde::Value::Obj(fields) => {
                    for (k, val) in fields.iter_mut() {
                        if k == "timings_ms" || k == "checksum" {
                            *val = serde::Value::Null;
                        } else {
                            scrub(val);
                        }
                    }
                }
                serde::Value::Arr(items) => items.iter_mut().for_each(scrub),
                _ => {}
            }
        }
        let text = std::fs::read_to_string(path).expect("read snapshot");
        let mut v = serde_json::from_str(&text).expect("parse snapshot");
        scrub(&mut v);
        serde_json::to_string(&v).expect("render snapshot")
    }

    for (sp, sc) in snaps_pre.iter().zip(&snaps_cold) {
        let text_pre = std::fs::read_to_string(sp).expect("read snapshot");
        for marker in ["word_ids", "gram_ids", "soundex_codes", "prefix_chars", "tfidf_norm"] {
            assert!(
                !text_pre.contains(marker),
                "snapshot {sp:?} leaked analysis internals ({marker})"
            );
        }
        let (norm_pre, norm_cold) = (normalized(sp), normalized(sc));
        assert_eq!(
            norm_pre.len(),
            norm_cold.len(),
            "prebuilt analysis changed snapshot size ({sp:?} vs {sc:?})"
        );
        assert_eq!(norm_pre, norm_cold, "prebuilt analysis changed snapshot contents");
    }

    // And a resume from the prebuilt-analysis snapshots still reproduces
    // the reference run exactly.
    let mut p_ref = platform(price, 53, FaultConfig::default());
    let reference = engine
        .session(&task)
        .platform(&mut p_ref)
        .oracle(&gold)
        .gold(gold.matches())
        .run();
    let mut p_res = CrowdPlatform::new(WorkerPool::perfect(1), CrowdConfig::default());
    let resumed = engine
        .session(&task)
        .platform(&mut p_res)
        .oracle(&gold)
        .gold(gold.matches())
        .resume_from(snaps_pre.last().expect("at least one snapshot"))
        .run();
    assert_eq!(resumed.deterministic_json(), reference.deterministic_json());

    let _ = std::fs::remove_dir_all(&dir_pre);
    let _ = std::fs::remove_dir_all(&dir_cold);
}

#[test]
fn budget_exhausted_run_resumes_under_a_raised_budget_and_converges() {
    let (task, gold, price) = setup(0.1, 41);
    let dir = fresh_dir("budget");

    let mut starved = CorleoneConfig::small();
    starved.engine.budget_cents = Some(400.0);
    let mut p1 = platform(price, 41, FaultConfig::default());
    let exhausted = Engine::new(starved)
        .with_seed(41)
        .session(&task)
        .platform(&mut p1)
        .oracle(&gold)
        .gold(gold.matches())
        .checkpoint_dir(&dir)
        .checkpoint_keep(0)
        .run();
    assert_eq!(
        exhausted.termination,
        Termination::BudgetExhausted,
        "$4 must not cover a scale-0.1 run; raise the starvation margin if this fails"
    );

    // Top up the budget and continue from the last snapshot. The resumed
    // run picks up the spent-so-far ledger from the snapshot, so the new
    // budget must cover the *total* spend, not just the remainder.
    let mut topped_up = CorleoneConfig::small();
    topped_up.engine.budget_cents = None;
    let latest = store::Snapshotter::create(&dir).expect("open").latest().expect("latest");
    let mut p2 = CrowdPlatform::new(WorkerPool::perfect(1), CrowdConfig::default());
    let resumed = Engine::new(topped_up)
        .with_seed(41)
        .session(&task)
        .platform(&mut p2)
        .oracle(&gold)
        .gold(gold.matches())
        .resume_from(&latest)
        .run();
    assert!(
        matches!(resumed.termination, Termination::Converged | Termination::MaxIterations),
        "resumed run still starved: {:?}",
        resumed.termination
    );
    assert!(resumed.final_estimate.is_some(), "converged resume must carry an estimate");
    assert!(
        resumed.total_cost_cents >= exhausted.total_cost_cents,
        "resumed total spend includes the pre-interrupt ledger"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
