//! Edge cases and failure injection: extreme crowd noise, minimal tables,
//! skewed-to-degenerate gold standards, and tiny budgets. The system must
//! degrade gracefully — never panic, never spend unboundedly, always
//! return a report.

use corleone::task::task_from_parts;
use corleone::{CorleoneConfig, Engine, MatchTask};
use crowd::{CrowdConfig, CrowdPlatform, GoldOracle, WorkerPool};
use similarity::{Attribute, Schema, Table, Value};
use std::sync::Arc;

fn name_table(name: &str, rows: Vec<String>) -> Table {
    let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
    Table::new(
        name,
        schema,
        rows.into_iter().map(|s| vec![Value::Text(s)]).collect(),
    )
}

fn shared_schema_tables(n_a: usize, n_b: usize) -> (Table, Table) {
    let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
    let a = Table::new(
        "a",
        schema.clone(),
        (0..n_a).map(|i| vec![Value::Text(format!("item {i}"))]).collect(),
    );
    let b = Table::new(
        "b",
        schema,
        (0..n_b).map(|i| vec![Value::Text(format!("item {i}"))]).collect(),
    );
    (a, b)
}

#[test]
fn survives_a_nearly_adversarial_crowd() {
    let (a, b) = shared_schema_tables(20, 20);
    let task = task_from_parts(a, b, "same item", [(0, 0), (1, 1)], [(0, 19), (2, 17)]);
    let gold = GoldOracle::from_pairs((0..20).map(|i| (i, i)));
    // 45% error: barely better than coin flips.
    let mut platform = CrowdPlatform::new(
        WorkerPool::uniform(9, 0.45),
        CrowdConfig { price_cents: 1.0, seed: 1, ..Default::default() },
    );
    let report = Engine::new(CorleoneConfig::small())
        .with_seed(1)
        .session(&task)
        .platform(&mut platform)
        .oracle(&gold)
        .gold(gold.matches())
        .run();
    // No panic, a report exists, and spend stayed bounded by the phase caps.
    assert!(report.total_cost_cents > 0.0);
    assert!(report.total_cost_cents < 100_000.0);
    assert!(report.final_estimate.is_some());
}

#[test]
fn single_row_table_a_works() {
    let a = name_table("a", vec!["lonely widget".into()]);
    let b = name_table(
        "b",
        (0..10)
            .map(|i| {
                if i < 2 {
                    format!("lonely widget v{i}")
                } else {
                    format!("other thing {i}")
                }
            })
            .collect(),
    );
    let task = MatchTask::new(
        a,
        b,
        "same?",
        vec![
            (crowd::PairKey::new(0, 0), true),
            (crowd::PairKey::new(0, 1), true),
            (crowd::PairKey::new(0, 5), false),
            (crowd::PairKey::new(0, 7), false),
        ],
    );
    let gold = GoldOracle::from_pairs([(0, 0), (0, 1)]);
    let mut platform = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
    let report = Engine::new(CorleoneConfig::small())
        .with_seed(2)
        .session(&task)
        .platform(&mut platform)
        .oracle(&gold)
        .gold(gold.matches())
        .run();
    assert!(report.final_true.unwrap().recall > 0.4);
}

#[test]
fn gold_with_only_the_seed_matches() {
    // Two real matches in the whole universe (exactly the positive seeds).
    let (a, b) = shared_schema_tables(15, 15);
    let task = task_from_parts(a, b, "same item", [(0, 0), (1, 1)], [(0, 14), (2, 12)]);
    let gold = GoldOracle::from_pairs([(0, 0), (1, 1)]);
    let mut platform = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
    let report = Engine::new(CorleoneConfig::small())
        .with_seed(3)
        .session(&task)
        .platform(&mut platform)
        .oracle(&gold)
        .gold(gold.matches())
        .run();
    // With identical-name negatives that the oracle calls non-matches,
    // whatever is predicted must not crash metrics; recall over 2 golds is
    // well-defined.
    let t = report.final_true.unwrap();
    assert!((0.0..=1.0).contains(&t.precision));
    assert!((0.0..=1.0).contains(&t.recall));
}

#[test]
fn one_cent_budget_stops_almost_immediately() {
    let (a, b) = shared_schema_tables(25, 25);
    let task = task_from_parts(a, b, "same item", [(0, 0), (1, 1)], [(0, 24), (2, 22)]);
    let gold = GoldOracle::from_pairs((0..25).map(|i| (i, i)));
    let mut cfg = CorleoneConfig::small();
    cfg.engine.budget_cents = Some(1.0);
    let mut platform = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
    let report = Engine::new(cfg)
        .with_seed(4)
        .session(&task)
        .platform(&mut platform)
        .oracle(&gold)
        .gold(gold.matches())
        .run();
    // One AL batch (~20 pairs × 2 answers) plus one estimator probe batch
    // is the worst-case in-flight overshoot.
    assert!(
        report.total_cost_cents <= 250.0,
        "spent {} on a 1¢ budget",
        report.total_cost_cents
    );
}

#[test]
fn all_null_attribute_does_not_panic() {
    let schema = Arc::new(Schema::new(vec![
        Attribute::text("name"),
        Attribute::number("price"),
    ]));
    let rows = |n: usize| -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| vec![Value::Text(format!("gizmo {i}")), Value::Null])
            .collect()
    };
    let a = Table::new("a", schema.clone(), rows(12));
    let b = Table::new("b", schema, rows(12));
    let task = task_from_parts(a, b, "same gizmo", [(0, 0), (1, 1)], [(0, 11), (2, 9)]);
    let gold = GoldOracle::from_pairs((0..12).map(|i| (i, i)));
    let mut platform = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
    let report = Engine::new(CorleoneConfig::small())
        .with_seed(5)
        .session(&task)
        .platform(&mut platform)
        .oracle(&gold)
        .gold(gold.matches())
        .run();
    // The price features are all NaN; learning must still work off names.
    assert!(report.final_true.unwrap().f1 > 0.8);
}

#[test]
fn near_duplicate_tables_with_unicode() {
    let a = name_table(
        "a",
        vec![
            "Café Müller".into(),
            "Şehir Lokantası".into(),
            "北京烤鸭店".into(),
            "Außer Haus".into(),
            "Łódź Grill".into(),
            "Smörgåsbord".into(),
            "Taverna Ψαράς".into(),
            "Пельменная".into(),
        ],
    );
    let b = name_table(
        "b",
        vec![
            "Cafe Muller".into(),
            "Sehir Lokantasi".into(),
            "北京烤鸭店 restaurant".into(),
            "Ausser Haus".into(),
            "Lodz Grill".into(),
            "Smorgasbord".into(),
            "Taverna Psaras".into(),
            "Pelmennaya".into(),
        ],
    );
    let task = task_from_parts(a, b, "same place", [(2, 2), (4, 4)], [(0, 5), (1, 7)]);
    let gold = GoldOracle::from_pairs((0..8).map(|i| (i, i)));
    let mut platform = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
    // Must not panic on multi-byte characters anywhere in the pipeline.
    let report = Engine::new(CorleoneConfig::small())
        .with_seed(6)
        .session(&task)
        .platform(&mut platform)
        .oracle(&gold)
        .gold(gold.matches())
        .run();
    assert!(report.final_estimate.is_some());
}

#[test]
fn budget_split_respects_phase_caps() {
    let (a, b) = shared_schema_tables(30, 30);
    let task = task_from_parts(a, b, "same item", [(0, 0), (1, 1)], [(0, 29), (2, 27)]);
    let gold = GoldOracle::from_pairs((0..30).map(|i| (i, i)));
    let mut cfg = CorleoneConfig::small();
    cfg.engine.budget_cents = Some(300.0);
    cfg.engine.budget_split = Some(corleone::BudgetSplit::default());
    let mut platform = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
    let report = Engine::new(cfg)
        .with_seed(9)
        .session(&task)
        .platform(&mut platform)
        .oracle(&gold)
        .gold(gold.matches())
        .run();
    // Matching may not exceed its cumulative cap (65% of $3) by more than
    // one in-flight batch.
    let matcher_spend: f64 = report.iterations.iter().map(|i| i.matcher_cost_cents).sum();
    assert!(
        matcher_spend <= 300.0 * 0.65 + 60.0,
        "matcher spend {matcher_spend} exceeded its allocation"
    );
    assert!(report.total_cost_cents <= 300.0 + 200.0);
}
