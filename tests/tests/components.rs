//! Cross-crate component integration: blocker ↔ datagen, label-cache reuse
//! across modules, baselines vs. the hands-off pipeline.

use corleone::ruleeval::RuleEvalConfig;
use corleone::task::task_from_parts;
use corleone::{
    locate_difficult_pairs, run_active_learning, run_blocker, CandidateSet, CorleoneConfig,
    LocatorConfig, MatchTask, RunEnv, Threads,
};
use crowd::{CrowdConfig, CrowdPlatform, GoldOracle, WorkerPool};
use datagen::GenConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

fn citations_setup(scale: f64, seed: u64) -> (MatchTask, GoldOracle, CrowdPlatform) {
    let ds = datagen::citations::generate(GenConfig { scale, seed });
    let task = task_from_parts(
        ds.table_a.clone(),
        ds.table_b.clone(),
        &ds.instruction,
        ds.seeds.positive,
        ds.seeds.negative,
    );
    let gold = GoldOracle::from_pairs(ds.gold.iter().copied());
    let platform = CrowdPlatform::new(
        WorkerPool::uniform(25, 0.05),
        CrowdConfig { price_cents: ds.price_cents, seed, ..Default::default() },
    );
    (task, gold, platform)
}

#[test]
fn blocker_keeps_most_gold_on_citations() {
    let (task, gold, mut platform) = citations_setup(0.03, 21);
    let cfg = CorleoneConfig { ..Default::default() };
    let mut blocker_cfg = cfg.blocker;
    blocker_cfg.t_b = 40_000;
    let mut rng = StdRng::seed_from_u64(21);
    let out = run_blocker(
        &task,
        &mut platform,
        &gold,
        &blocker_cfg,
        &cfg.matcher,
        &mut rng,
        &RunEnv::default(),
    );
    assert!(out.report.triggered);
    assert!(!out.applied_rules.is_empty());
    let umbrella: HashSet<_> = out.candidates.pairs().iter().copied().collect();
    let kept = gold.matches().iter().filter(|p| umbrella.contains(p)).count();
    let recall = kept as f64 / gold.n_matches() as f64;
    assert!(recall > 0.8, "blocking recall {recall}");
    // Applied rules must agree with the umbrella set: no surviving pair
    // may be covered by any applied rule.
    for (i, &pair) in out.candidates.pairs().iter().enumerate().step_by(97) {
        let x = task.vectorize(pair);
        assert!(
            !out.applied_rules.iter().any(|r| r.matches(&x)),
            "pair {i} survived but is covered by an applied rule"
        );
    }
}

#[test]
fn label_cache_reused_across_modules() {
    // Labels bought during active learning make later rule evaluation
    // cheaper: run the locator twice and check the second pass is free.
    let (task, gold, mut platform) = citations_setup(0.012, 22);
    let cand = CandidateSet::full_cartesian(&task);
    let seeds: Vec<(Vec<f64>, bool)> = task
        .seeds
        .iter()
        .map(|&(k, l)| (task.vectorize(k), l))
        .collect();
    let mut rng = StdRng::seed_from_u64(22);
    let cfg = CorleoneConfig::small();
    let learn = run_active_learning(
        &cand,
        &seeds,
        &mut platform,
        &gold,
        &cfg.matcher,
        &mut rng,
        Threads::auto(),
    );
    let known: HashMap<usize, bool> = learn.crowd_labels().collect();
    let within: Vec<usize> = (0..cand.len()).collect();
    let run_locator = |platform: &mut CrowdPlatform, rng: &mut StdRng| {
        locate_difficult_pairs(
            &cand,
            &within,
            &learn.forest,
            &known,
            platform,
            &gold,
            &LocatorConfig::default(),
            &RuleEvalConfig::default(),
            rng,
            &RunEnv::default(),
        )
    };
    let mut rng_first = StdRng::seed_from_u64(122);
    let _first = run_locator(&mut platform, &mut rng_first);
    let cents_after_first = platform.ledger().total_cents;
    let mut rng_second = StdRng::seed_from_u64(122);
    let _second = run_locator(&mut platform, &mut rng_second);
    let second_cost = platform.ledger().total_cents - cents_after_first;
    assert_eq!(
        second_cost, 0.0,
        "identical locator pass must be served from the label cache"
    );
}

#[test]
fn corleone_outperforms_baseline1_on_citations() {
    let ds = datagen::citations::generate(GenConfig { scale: 0.02, seed: 23 });
    let task = task_from_parts(
        ds.table_a.clone(),
        ds.table_b.clone(),
        &ds.instruction,
        ds.seeds.positive,
        ds.seeds.negative,
    );
    let gold = GoldOracle::from_pairs(ds.gold.iter().copied());
    let mut platform = CrowdPlatform::new(
        WorkerPool::uniform(25, 0.05),
        CrowdConfig { price_cents: 1.0, seed: 23, ..Default::default() },
    );
    let report = corleone::Engine::new(CorleoneConfig::default())
        .with_seed(23)
        .session(&task)
        .platform(&mut platform)
        .oracle(&gold)
        .gold(gold.matches())
        .run();
    let corleone_f1 = report.final_true.unwrap().f1;
    let b1 = baselines::baseline1::run(
        &task,
        "citations",
        &gold,
        report.total_pairs_labeled as usize,
        23,
    );
    assert!(
        corleone_f1 > b1.prf.f1 - 0.02,
        "corleone {corleone_f1} must not lose to baseline1 {}",
        b1.prf.f1
    );
}

#[test]
fn forest_rules_route_like_forest_on_real_features() {
    // The rule/tree agreement property on *real* similarity vectors
    // (NaNs from missing fields included), across crates.
    let (task, gold, mut platform) = citations_setup(0.012, 24);
    let cand = CandidateSet::full_cartesian(&task);
    let seeds: Vec<(Vec<f64>, bool)> = task
        .seeds
        .iter()
        .map(|&(k, l)| (task.vectorize(k), l))
        .collect();
    let mut rng = StdRng::seed_from_u64(24);
    let learn = run_active_learning(
        &cand,
        &seeds,
        &mut platform,
        &gold,
        &CorleoneConfig::small().matcher,
        &mut rng,
        Threads::auto(),
    );
    for (ti, tree) in learn.forest.trees().iter().enumerate() {
        let rules = forest::rules::extract_tree_rules(tree, ti);
        for i in (0..cand.len()).step_by(31) {
            let x = cand.row(i);
            let hits: Vec<_> = rules.iter().filter(|r| r.matches(x)).collect();
            assert_eq!(hits.len(), 1, "tree {ti}, pair {i}");
            assert_eq!(hits[0].label, tree.predict(x));
        }
    }
}
