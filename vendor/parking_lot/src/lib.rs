//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind parking_lot's panic-free API:
//! `lock()`/`read()`/`write()` return guards directly instead of
//! `Result`s. Poisoning is deliberately ignored — if a thread panicked
//! while holding a lock, the caller was already going down with it in
//! every use inside this workspace (scoped threads propagate panics).
//!
//! Not the real crate's futex-based implementation, so raw lock
//! throughput is std-class — fine for the coarse, sharded locking the
//! feature cache does.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutual-exclusion lock that never poisons.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock that never poisons.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Wrap a value.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        let (a, b) = (l.read(), l.read());
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning, lock still usable.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
