//! The case-running loop behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; this stand-in trims that for
        // wall-clock on small CI machines while keeping useful coverage.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A strategy filter rejected the inputs; the case is retried.
    Reject(String),
    /// An assertion failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    /// Build a rejection.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }

    /// Build a failure.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// FNV-1a over the test name: a stable, platform-independent seed so every
/// run of a given test draws the same cases (failures always reproduce).
fn seed_for(test_name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// Drive one property test: run `case` until `config.cases` successes.
///
/// # Panics
/// Panics when a case fails (assertion) or when rejections swamp the run.
pub fn run_cases(
    config: &ProptestConfig,
    test_name: &str,
    mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    let mut rng = StdRng::seed_from_u64(seed_for(test_name));
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let reject_budget = config.cases as u64 * 50 + 1_000;
    while passed < config.cases {
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > reject_budget {
                    panic!(
                        "{test_name}: {rejected} rejected cases with only {passed}/{} passed — \
                         filter is too strict",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(message)) => {
                panic!("{test_name}: property failed after {passed} passing cases: {message}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_case_count() {
        let mut n = 0;
        run_cases(&ProptestConfig::with_cases(17), "count", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 17);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failure_panics() {
        run_cases(&ProptestConfig::with_cases(5), "fails", |_| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    #[should_panic(expected = "filter is too strict")]
    fn reject_storm_panics() {
        run_cases(&ProptestConfig::with_cases(1), "rejects", |_| {
            Err(TestCaseError::reject("never"))
        });
    }
}
