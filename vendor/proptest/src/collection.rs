//! Collection strategies: `prop::collection::{vec, hash_set}`.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A size specification: an exact length or a range of lengths.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { min: r.start, max: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange { min: *r.start(), max: *r.end() }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.min..=self.max)
    }
}

/// Vectors of values from an element strategy.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// Strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn gen_value(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
        let len = self.size.sample(rng);
        let mut out = Vec::with_capacity(len);
        // A filtered element strategy gets a few retries before the whole
        // vector draw is rejected.
        let mut rejects = 0;
        while out.len() < len {
            match self.element.gen_value(rng) {
                Some(v) => out.push(v),
                None => {
                    rejects += 1;
                    if rejects > 100 + len * 10 {
                        return None;
                    }
                }
            }
        }
        Some(out)
    }
}

/// Hash sets of values from an element strategy. The size range bounds the
/// number of *distinct* elements; if the element domain is too small to
/// reach the minimum, the draw is rejected.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size: size.into() }
}

/// Strategy returned by [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;

    fn gen_value(&self, rng: &mut StdRng) -> Option<HashSet<S::Value>> {
        let target = self.size.sample(rng);
        let mut out = HashSet::with_capacity(target);
        let mut attempts = 0;
        while out.len() < target {
            attempts += 1;
            if attempts > 100 + target * 20 {
                return None;
            }
            if let Some(v) = self.element.gen_value(rng) {
                out.insert(v);
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_range() {
        let mut rng = StdRng::seed_from_u64(12);
        let s = vec(0u32..100, 2..6);
        for _ in 0..100 {
            let v = s.gen_value(&mut rng).unwrap();
            assert!((2..6).contains(&v.len()), "{}", v.len());
        }
    }

    #[test]
    fn vec_exact_size() {
        let mut rng = StdRng::seed_from_u64(13);
        let v = vec(0.0f64..1.0, 3).gen_value(&mut rng).unwrap();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn hash_set_reaches_distinct_count() {
        let mut rng = StdRng::seed_from_u64(14);
        let s = hash_set((0u32..30, 0u32..30), 1..40);
        for _ in 0..50 {
            let set = s.gen_value(&mut rng).unwrap();
            assert!((1..40).contains(&set.len()));
        }
    }

    #[test]
    fn hash_set_rejects_impossible_minimum() {
        let mut rng = StdRng::seed_from_u64(15);
        // Domain has 2 distinct values; asking for 10 must reject, not hang.
        assert!(hash_set(0u32..2, 10..12).gen_value(&mut rng).is_none());
    }
}
