//! `any::<T>()` — default strategies per type.

use std::marker::PhantomData;

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Types with a default generation recipe.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut StdRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Mostly moderate magnitudes, occasionally special values — enough
        // spread to exercise numeric code without real proptest's full
        // bit-pattern sampling.
        match rng.gen_range(0..20u32) {
            0 => f64::NAN,
            1 => 0.0,
            2 => -1.0,
            n if n < 10 => rng.gen_range(-1.0e6..1.0e6),
            _ => rng.gen_range(-1.0..1.0),
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut StdRng) -> Self {
        // Bias toward ASCII with a slice of non-ASCII to catch UTF-8 bugs.
        const EXTRAS: &[char] = &['é', 'ß', 'λ', '中', '🙂', '\u{0}', '\t'];
        if rng.gen_bool(0.85) {
            rng.gen_range(0x20u32..0x7F) as u8 as char
        } else {
            EXTRAS[rng.gen_range(0..EXTRAS.len())]
        }
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut StdRng) -> Self {
        let len = rng.gen_range(0..32usize);
        (0..len).map(|_| char::arbitrary(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_string_varies() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = any::<String>().gen_value(&mut rng).unwrap();
        let b = any::<String>().gen_value(&mut rng).unwrap();
        let c = any::<String>().gen_value(&mut rng).unwrap();
        assert!(a != b || b != c, "three identical draws are vanishingly unlikely");
    }
}
