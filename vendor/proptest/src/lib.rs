//! Offline stand-in for `proptest`.
//!
//! Implements the slice of proptest this workspace's property tests use:
//! the [`proptest!`]/[`prop_assert!`] macros, the [`Strategy`] trait with
//! `prop_map`/`prop_filter`, range and tuple strategies, a regex-subset
//! string strategy (`"[a-z0-9 ]{0,24}"`-style char classes), weighted
//! [`prop_oneof!`], and `prop::collection::{vec, hash_set}`.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — a failing case reports the panic message only;
//! * **deterministic seeding** — each test's RNG is seeded from a hash of
//!   the test name, so failures reproduce exactly on every run;
//! * regex strategies support only char classes with `{n}`/`{m,n}`
//!   quantifiers and literal characters, which covers every pattern in
//!   this repository.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Run each `#[test] fn name(binding in strategy, ...) { body }` against
/// many generated cases. Supports an optional leading
/// `#![proptest_config(expr)]`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run_cases(&($cfg), stringify!($name), |__pt_rng| {
                $(
                    let $parm = match $crate::strategy::Strategy::gen_value(&($strategy), __pt_rng) {
                        ::core::option::Option::Some(v) => v,
                        ::core::option::Option::None => {
                            return ::core::result::Result::Err(
                                $crate::test_runner::TestCaseError::reject("strategy filter"),
                            )
                        }
                    };
                )+
                let __pt_result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                __pt_result
            });
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert inside a proptest body; failure aborts the case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert!` for equality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

/// `prop_assert!` for inequality, printing both sides on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, $($fmt)+);
    }};
}

/// Choose among strategies, optionally weighted:
/// `prop_oneof![a, b]` or `prop_oneof![9 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strategy))),+
        ])
    };
}
