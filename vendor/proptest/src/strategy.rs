//! The [`Strategy`] trait and the built-in strategies.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
///
/// `gen_value` returns `None` when a `prop_filter` (or a collection
/// strategy that could not satisfy its constraints) rejects the draw; the
/// runner counts the case as rejected and retries with fresh randomness.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value, or `None` if a filter rejected it.
    fn gen_value(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Transform generated values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Discard values the predicate rejects. The label is kept for parity
    /// with real proptest's diagnostics but unused here.
    fn prop_filter<F>(self, label: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, _label: label.into(), pred }
    }

    /// Type-erase the strategy (needed by `prop_oneof!` arms of mixed
    /// concrete types).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut StdRng) -> Option<T> {
        self.0.gen_value(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn gen_value(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn gen_value(&self, rng: &mut StdRng) -> Option<U> {
        self.inner.gen_value(rng).map(&self.f)
    }
}

/// `prop_filter` adapter.
pub struct Filter<S, F> {
    inner: S,
    _label: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn gen_value(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.inner.gen_value(rng).filter(|v| (self.pred)(v))
    }
}

/// Weighted choice among boxed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` arms.
    ///
    /// # Panics
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs at least one positively weighted arm");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn gen_value(&self, rng: &mut StdRng) -> Option<T> {
        let mut pick = rng.gen_range(0..self.total);
        for (weight, arm) in &self.arms {
            if pick < *weight as u64 {
                return arm.gen_value(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("pick is always below the total weight")
    }
}

// ---- ranges --------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

// ---- tuples --------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut StdRng) -> Option<Self::Value> {
                Some(($(self.$idx.gen_value(rng)?,)+))
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
}

// ---- regex-subset string strategies --------------------------------------

/// One parsed atom of the pattern plus its repetition bounds.
struct PatternAtom {
    /// The characters this atom can produce.
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// `&str` patterns are strategies producing `String`, like real proptest's
/// regex strategies — restricted to literal chars and `[...]` classes with
/// optional `{n}` / `{m,n}` / `?` / `*` / `+` quantifiers.
impl Strategy for &str {
    type Value = String;

    fn gen_value(&self, rng: &mut StdRng) -> Option<String> {
        let atoms = parse_pattern(self)
            .unwrap_or_else(|e| panic!("unsupported regex pattern {self:?}: {e}"));
        let mut out = String::new();
        for atom in &atoms {
            let n = rng.gen_range(atom.min..=atom.max);
            for _ in 0..n {
                out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
            }
        }
        Some(out)
    }
}

fn parse_pattern(pattern: &str) -> Result<Vec<PatternAtom>, String> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let end = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .ok_or("unterminated char class")?
                    + i;
                let class = parse_class(&chars[i + 1..end])?;
                i = end + 1;
                class
            }
            '\\' => {
                let c = *chars.get(i + 1).ok_or("trailing backslash")?;
                i += 2;
                vec![c]
            }
            '(' | ')' | '|' | '.' | '^' | '$' => {
                return Err(format!("unsupported metacharacter `{}`", chars[i]));
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i)?;
        atoms.push(PatternAtom { choices, min, max });
    }
    Ok(atoms)
}

fn parse_class(body: &[char]) -> Result<Vec<char>, String> {
    if body.first() == Some(&'^') {
        return Err("negated classes are unsupported".to_string());
    }
    let mut choices = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if body[i] == '\\' {
            choices.push(*body.get(i + 1).ok_or("trailing backslash in class")?);
            i += 2;
        } else if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            if lo > hi {
                return Err(format!("inverted range `{lo}-{hi}`"));
            }
            choices.extend((lo..=hi).filter(|c| c.is_ascii() || *c as u32 <= 0x10FFFF));
            i += 3;
        } else {
            choices.push(body[i]);
            i += 1;
        }
    }
    if choices.is_empty() {
        return Err("empty char class".to_string());
    }
    Ok(choices)
}

fn parse_quantifier(chars: &[char], i: &mut usize) -> Result<(usize, usize), String> {
    match chars.get(*i) {
        Some('{') => {
            let end = chars[*i..]
                .iter()
                .position(|&c| c == '}')
                .ok_or("unterminated quantifier")?
                + *i;
            let body: String = chars[*i + 1..end].iter().collect();
            *i = end + 1;
            if let Some((lo, hi)) = body.split_once(',') {
                let lo: usize = lo.trim().parse().map_err(|_| "bad quantifier")?;
                let hi: usize = hi.trim().parse().map_err(|_| "bad quantifier")?;
                Ok((lo, hi))
            } else {
                let n: usize = body.trim().parse().map_err(|_| "bad quantifier")?;
                Ok((n, n))
            }
        }
        Some('?') => {
            *i += 1;
            Ok((0, 1))
        }
        Some('*') => {
            *i += 1;
            Ok((0, 8))
        }
        Some('+') => {
            *i += 1;
            Ok((1, 8))
        }
        _ => Ok((1, 1)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn regex_pattern_respects_class_and_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let s = "[a-c0-1 ]{2,5}".gen_value(&mut rng).unwrap();
            let n = s.chars().count();
            assert!((2..=5).contains(&n), "{s:?}");
            assert!(s.chars().all(|c| "abc01 ".contains(c)), "{s:?}");
        }
    }

    #[test]
    fn literal_and_escape_atoms() {
        let mut rng = StdRng::seed_from_u64(8);
        let s = "ab\\.c".gen_value(&mut rng).unwrap();
        assert_eq!(s, "ab.c");
    }

    #[test]
    fn union_honors_weights() {
        let mut rng = StdRng::seed_from_u64(9);
        let u = crate::prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let ones = (0..10_000)
            .filter(|_| u.gen_value(&mut rng) == Some(1))
            .count();
        assert!((8_500..9_500).contains(&ones), "{ones}");
    }

    #[test]
    fn filter_rejects() {
        let mut rng = StdRng::seed_from_u64(10);
        let s = (0u32..10).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            if let Some(v) = s.gen_value(&mut rng) {
                assert_eq!(v % 2, 0);
            }
        }
    }
}
