//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports exactly the shapes this workspace serializes: non-generic
//! structs with named fields (or unit structs), and non-generic enums
//! whose variants are unit, tuple, or struct-like. Anything else gets a
//! clear `compile_error!`.
//!
//! No `syn`/`quote` (crates.io is unreachable in this environment): the
//! item is parsed directly from the `proc_macro` token stream — which is
//! easy because field *types* are never needed, only field and variant
//! names.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed struct or enum shape.
enum Item {
    Struct { name: String, fields: Vec<String> },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

/// One enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    /// Tuple variant with this many fields.
    Tuple(usize),
    /// Struct variant with these field names.
    Struct(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    let code = match parse_item(input) {
        Ok(item) => gen(&item),
        Err(msg) => format!("compile_error!({msg:?});"),
    };
    code.parse().expect("generated impl must parse")
}

// ---- parsing -------------------------------------------------------------

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    let mut kind: Option<String> = None;

    // Scan "… (struct|enum) Name" skipping attributes and visibility.
    while let Some(tt) = tokens.next() {
        match tt {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next(); // the attribute group
            }
            TokenTree::Ident(id) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    kind = Some(s);
                    break;
                }
                // `pub`, `crate`, etc. — skip (a following `(crate)` group
                // is consumed by the Group arm below).
            }
            TokenTree::Group(_) => {} // `(crate)` after pub
            _ => {}
        }
    }
    let kind = kind.ok_or("derive input is not a struct or enum")?;
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected an item name".to_string()),
    };

    // Generics are unsupported; the body must be the next group.
    let body = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err(format!(
                    "serde stand-in cannot derive for generic type `{name}`"
                ));
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break Some(g),
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break None, // unit struct
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!(
                    "serde stand-in cannot derive for tuple struct `{name}`"
                ));
            }
            Some(_) => {}
            None => return Err(format!("no body found for `{name}`")),
        }
    };

    if kind == "struct" {
        match body {
            None => Ok(Item::UnitStruct { name }),
            Some(g) => Ok(Item::Struct { name, fields: parse_named_fields(g.stream())? }),
        }
    } else {
        let g = body.ok_or_else(|| format!("enum `{name}` has no body"))?;
        Ok(Item::Enum { name, variants: parse_variants(g.stream())? })
    }
}

/// Parse `a: T, b: U, …` capturing only the field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        let name = loop {
            match tokens.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    if let Some(TokenTree::Group(_)) = tokens.peek() {
                        tokens.next(); // pub(crate) etc.
                    }
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(other) => {
                    return Err(format!("unexpected token `{other}` in struct fields"))
                }
            }
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        fields.push(name);
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth: i64 = 0;
        loop {
            match tokens.next() {
                None => return Ok(fields),
                Some(TokenTree::Punct(p)) => match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                },
                Some(_) => {}
            }
        }
    }
}

/// Parse enum variants, capturing names and payload shape.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        let name = loop {
            match tokens.next() {
                None => return Ok(variants),
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) => break id.to_string(),
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => continue,
                Some(other) => return Err(format!("unexpected token `{other}` in enum body")),
            }
        };
        let kind = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_top_level_types(g.stream());
                tokens.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                tokens.next();
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '=' {
                return Err(format!(
                    "serde stand-in cannot derive for enum with explicit discriminant on `{name}`"
                ));
            }
        }
        variants.push(Variant { name, kind });
    }
}

/// Number of comma-separated types at angle-depth 0 in a tuple-variant body.
fn count_top_level_types(stream: TokenStream) -> usize {
    let mut depth: i64 = 0;
    let mut commas = 0;
    let mut any = false;
    let mut trailing_comma = false;
    for tt in stream {
        any = true;
        trailing_comma = false;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                }
                _ => {}
            }
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

// ---- codegen -------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Item::Struct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "({f:?}.to_string(), ::serde::Serialize::to_json_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Obj(vec![{}])\n\
                 }}\n}}",
                entries.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(x0) => ::serde::Value::Obj(vec![({vn:?}.to_string(), \
                             ::serde::Serialize::to_json_value(x0))]),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("x{i}")).collect();
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Obj(vec![({vn:?}.to_string(), \
                                 ::serde::Value::Arr(vec![{}]))]),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Struct(fields) => {
                            let binds = fields.join(", ");
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "({f:?}.to_string(), ::serde::Serialize::to_json_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(vec![\
                                 ({vn:?}.to_string(), ::serde::Value::Obj(vec![{}]))]),",
                                entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{}\n}}\n}}\n}}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_json_value(_v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
             ::core::result::Result::Ok({name})\n\
             }}\n}}"
        ),
        Item::Struct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json_value(\
                         ::serde::field(v, {f:?}, {name:?})?)?"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 if v.as_obj().is_none() {{\n\
                 return ::core::result::Result::Err(::serde::Error::expected(\"object\", {name:?}));\n\
                 }}\n\
                 ::core::result::Result::Ok({name} {{ {} }})\n\
                 }}\n}}",
                inits.join(", ")
            )
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut obj_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => {
                        unit_arms.push_str(&format!(
                            "{vn:?} => return ::core::result::Result::Ok({name}::{vn}),\n"
                        ));
                    }
                    VariantKind::Tuple(1) => {
                        obj_arms.push_str(&format!(
                            "{vn:?} => return ::core::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_json_value(payload)?)),\n"
                        ));
                    }
                    VariantKind::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| {
                                format!("::serde::Deserialize::from_json_value(&arr[{i}])?")
                            })
                            .collect();
                        obj_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let arr = payload.as_arr().ok_or_else(|| \
                             ::serde::Error::expected(\"array\", {name:?}))?;\n\
                             if arr.len() != {n} {{\n\
                             return ::core::result::Result::Err(::serde::Error::expected(\
                             \"{n}-element array\", {name:?}));\n\
                             }}\n\
                             return ::core::result::Result::Ok({name}::{vn}({}));\n\
                             }}\n",
                            elems.join(", ")
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_json_value(\
                                     ::serde::field(payload, {f:?}, {name:?})?)?"
                                )
                            })
                            .collect();
                        obj_arms.push_str(&format!(
                            "{vn:?} => return ::core::result::Result::Ok(\
                             {name}::{vn} {{ {} }}),\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_json_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 match v {{\n\
                 ::serde::Value::Str(s) => {{\n\
                 match s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n\
                 }}\n\
                 ::serde::Value::Obj(entries) if entries.len() == 1 => {{\n\
                 let (tag, payload) = (&entries[0].0, &entries[0].1);\n\
                 let _ = payload;\n\
                 match tag.as_str() {{\n{obj_arms}_ => {{}}\n}}\n\
                 }}\n\
                 _ => {{}}\n\
                 }}\n\
                 ::core::result::Result::Err(::serde::Error::expected(\"known variant\", {name:?}))\n\
                 }}\n}}"
            )
        }
    }
}
