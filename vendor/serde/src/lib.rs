//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of serde it uses: `#[derive(Serialize, Deserialize)]`
//! on plain structs and enums, serialized through an in-memory JSON
//! [`Value`] tree that `serde_json` renders and parses.
//!
//! The data model is deliberately simple:
//!
//! * structs serialize to objects with fields in declaration order
//!   (serialization is therefore deterministic for map-free types);
//! * unit enum variants serialize to strings, data variants to
//!   single-key objects (`{"Variant": ...}`), matching serde's external
//!   tagging;
//! * non-finite floats serialize to `null` (as real `serde_json` does)
//!   and deserialize back to `NaN`.
//!
//! This is *not* wire-compatible with upstream serde for every type — it
//! is compatible with itself, which is all the workspace's report
//! round-trips require.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;
use std::rc::Rc;
use std::sync::Arc;

pub use serde_derive::{Deserialize, Serialize};

/// An in-memory JSON value. Objects preserve insertion order so struct
/// serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Look up a field of an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()
            .and_then(|entries| entries.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

// A `Value` is its own JSON representation: these impls let generic code
// (e.g. a snapshot envelope that must checksum its payload before decoding
// it) parse to a raw tree first and interpret fields later.
impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }

    /// "expected X while deserializing Y" helper.
    pub fn expected(what: &str, context: &str) -> Self {
        Error(format!("expected {what} while deserializing {context}"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Look up a required struct field during deserialization.
pub fn field<'v>(v: &'v Value, name: &str, ty: &str) -> Result<&'v Value, Error> {
    v.get(name)
        .ok_or_else(|| Error::msg(format!("missing field `{name}` while deserializing {ty}")))
}

/// Types that can render themselves as a JSON [`Value`].
pub trait Serialize {
    /// Convert to a JSON value.
    fn to_json_value(&self) -> Value;
}

/// Types that can rebuild themselves from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Parse from a JSON value.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

// ---- primitives ----------------------------------------------------------

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::expected("bool", "bool")),
        }
    }
}

macro_rules! impl_serde_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) => Ok(*n as $t),
                    _ => Err(Error::expected("number", stringify!($t))),
                }
            }
        }
    )*};
}
impl_serde_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        if self.is_finite() {
            Value::Num(*self)
        } else {
            // Real serde_json also writes null for NaN/±inf.
            Value::Null
        }
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(*n),
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::expected("number", "f64")),
        }
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::expected("string", "String")),
        }
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            _ => Err(Error::expected("single-char string", "char")),
        }
    }
}

// ---- containers ----------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(x) => x.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_arr().ok_or_else(|| Error::expected("array", "fixed array"))?;
        if arr.len() != N {
            return Err(Error::msg(format!(
                "expected array of {N} elements, got {}",
                arr.len()
            )));
        }
        let items: Vec<T> = arr.iter().map(T::from_json_value).collect::<Result<_, _>>()?;
        items
            .try_into()
            .map_err(|_| Error::msg("array length changed during deserialization"))
    }
}

impl<T: Serialize + Eq + Hash> Serialize for HashSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::expected("array", "HashSet"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn to_json_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_arr()
            .ok_or_else(|| Error::expected("array", "BTreeSet"))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

/// Types usable as JSON object keys.
///
/// JSON objects only have string keys, so map keys round-trip through a
/// string form — real serde_json does the same for integer-keyed maps.
/// Downstream crates may implement this for their own key types (e.g. a
/// packed pair identifier).
pub trait MapKey: Sized {
    /// Render the key as a JSON object key.
    fn to_key_string(&self) -> String;
    /// Parse the key back from a JSON object key.
    fn from_key_string(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key_string(&self) -> String {
        self.clone()
    }
    fn from_key_string(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! impl_mapkey_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key_string(&self) -> String {
                self.to_string()
            }
            fn from_key_string(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| {
                    Error::msg(format!(
                        "invalid {} map key `{s}`", stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_mapkey_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_json_value(&self) -> Value {
        // Sort keys so map serialization is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key_string(), v.to_json_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_obj()
            .ok_or_else(|| Error::expected("object", "HashMap"))?
            .iter()
            .map(|(k, val)| {
                Ok((K::from_key_string(k)?, V::from_json_value(val)?))
            })
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_json_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.to_key_string(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_obj()
            .ok_or_else(|| Error::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, val)| {
                Ok((K::from_key_string(k)?, V::from_json_value(val)?))
            })
            .collect()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Arc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Arc<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Arc::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for Rc<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Deserialize> Deserialize for Rc<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Rc::new)
    }
}

macro_rules! impl_serde_tuple {
    ($(($($t:ident : $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Arr(vec![$(self.$idx.to_json_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                let arr = v.as_arr().ok_or_else(|| Error::expected("array", "tuple"))?;
                if arr.len() != LEN {
                    return Err(Error::msg(format!(
                        "expected array of {LEN} elements, got {}", arr.len()
                    )));
                }
                Ok(($($t::from_json_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

impl Serialize for () {
    fn to_json_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::expected("null", "()")),
        }
    }
}
