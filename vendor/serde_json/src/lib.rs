//! Offline stand-in for `serde_json`.
//!
//! Implements the three entry points this workspace uses — [`to_string`],
//! [`to_string_pretty`], and [`from_str`] — over the vendored `serde`
//! crate's in-memory [`Value`] tree.
//!
//! Output is deterministic: struct fields render in declaration order and
//! `HashMap`s are sorted by the `serde` shim before they reach the writer.
//! Numbers with no fractional part print as integers (`3`, not `3.0`),
//! matching how real serde_json prints integer fields.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serialize a value to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, None, 0);
    Ok(out)
}

/// Serialize a value to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Deserialize a value from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    T::from_json_value(&value)
}

// ---- writer --------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(*n, out),
        Value::Str(s) => write_string(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(item, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        // Integral and exactly representable: print without ".0".
        out.push_str(&format!("{}", n as i64));
    } else {
        // `{}` on f64 is the shortest representation that round-trips.
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::msg(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
            None => Err(Error::msg("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::msg(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9') = self.peek() {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        if let Some(b'e' | b'E') = self.peek() {
            self.pos += 1;
            if let Some(b'+' | b'-') = self.peek() {
                self.pos += 1;
            }
            while let Some(b'0'..=b'9') = self.peek() {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number `{text}` at byte {start}")))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{08}'),
                        Some(b'f') => s.push('\u{0C}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pair handling for completeness.
                            if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // past the high surrogate's last hex digit
                                self.expect(b'\\')?;
                                if self.peek() != Some(b'u') {
                                    return Err(Error::msg("expected low surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::msg("invalid surrogate pair"));
                                }
                                self.pos += 1; // past the low surrogate's last hex digit
                                let combined =
                                    0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                s.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::msg("invalid surrogate pair"))?,
                                );
                                continue;
                            }
                            s.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error::msg("invalid \\u escape"))?,
                            );
                            self.pos += 1; // past the 'u'; hex digits consumed in parse_hex4
                            continue;
                        }
                        _ => return Err(Error::msg("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one full UTF-8 char.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parse the 4 hex digits after a `\u`, without consuming the `u` itself.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1; // skip the 'u'
        let digits = self
            .bytes
            .get(start..start + 4)
            .ok_or_else(|| Error::msg("truncated \\u escape"))?;
        let text = std::str::from_utf8(digits).map_err(|_| Error::msg("invalid \\u escape"))?;
        let cp = u32::from_str_radix(text, 16)
            .map_err(|_| Error::msg(format!("invalid \\u escape `{text}`")))?;
        self.pos = start + 3; // leave pos on the last hex digit; caller advances past it
        Ok(cp)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::msg(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error::msg(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&3u32).unwrap(), "3");
        assert_eq!(to_string(&-4i64).unwrap(), "-4");
        assert_eq!(to_string(&0.5f64).unwrap(), "0.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n").unwrap(), "\"a\\\"b\\n\"");
        let x: f64 = from_str("0.25").unwrap();
        assert_eq!(x, 0.25);
        let s: String = from_str("\"hi\\u0041\"").unwrap();
        assert_eq!(s, "hiA");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1.5f64, 2.0, f64::NAN];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1.5,2,null]");
        let back: Vec<f64> = from_str(&json).unwrap();
        assert_eq!(back.len(), 3);
        assert!(back[2].is_nan());

        let pairs: Vec<(u32, bool)> = from_str("[[1,true],[2,false]]").unwrap();
        assert_eq!(pairs, vec![(1, true), (2, false)]);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1u32, 2];
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(pretty, "[\n  1,\n  2\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<bool>("tru").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<u32>("1 x").is_err());
    }
}
