//! Offline stand-in for `criterion`.
//!
//! Provides the harness surface the workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`], [`Throughput::Elements`], and
//! [`black_box`] — with a simple adaptive-iteration timer instead of
//! criterion's statistical machinery. Results print as plain text:
//!
//! ```text
//! similarity/jaccard_words      842 ns/iter  (1.19 M elem/s)
//! ```
//!
//! Honors `--bench` (ignored filter args are fine) and runs everything by
//! default, so `cargo bench` and the CI smoke script work unchanged.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting the
/// benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Units for reporting throughput alongside time-per-iteration.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// The benchmark context handed to each registered function.
pub struct Criterion {
    /// Target measurement time per benchmark.
    measure_for: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` narrows which benchmarks run.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "bench");
        Criterion { measure_for: Duration::from_millis(300), filter }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing a throughput setting.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Report throughput for subsequent benchmarks in this group.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Raise or lower the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, _time: Duration) {
        // The stand-in keeps its fixed budget; accepted for API parity.
    }

    /// Set the sample count (accepted for API parity; unused).
    pub fn sample_size(&mut self, _n: usize) {}

    /// Time one benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return self;
            }
        }
        let mut bencher = Bencher { iters: 1, elapsed: Duration::ZERO };

        // Warm-up and iteration-count calibration: grow until one batch
        // takes a measurable slice of the budget.
        loop {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            if bencher.elapsed >= self.criterion.measure_for / 10 || bencher.iters >= 1 << 24 {
                break;
            }
            bencher.iters *= 8;
        }

        // Measurement: repeat batches until the budget is spent, keep best.
        let mut best = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
        let start = Instant::now();
        while start.elapsed() < self.criterion.measure_for {
            bencher.elapsed = Duration::ZERO;
            f(&mut bencher);
            let per_iter = bencher.elapsed.as_nanos() as f64 / bencher.iters as f64;
            if per_iter < best {
                best = per_iter;
            }
        }

        let mut line = format!("{full:<40} {}", format_time(best));
        if let Some(tp) = self.throughput {
            let (count, unit) = match tp {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            let per_sec = count as f64 / (best * 1e-9);
            line.push_str(&format!("  ({} {unit}/s)", format_rate(per_sec)));
        }
        println!("{line}");
        self
    }

    /// End the group (prints nothing extra; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Passed to the closure under test; call [`Bencher::iter`] with the body.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `body` over the calibrated number of iterations.
    pub fn iter<T>(&mut self, mut body: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(body());
        }
        self.elapsed = start.elapsed();
    }
}

fn format_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:>8.0} ns/iter")
    } else if nanos < 1_000_000.0 {
        format!("{:>8.2} µs/iter", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:>8.2} ms/iter", nanos / 1_000_000.0)
    } else {
        format!("{:>8.2}  s/iter", nanos / 1_000_000_000.0)
    }
}

fn format_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2} k", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

/// Bundle benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion { measure_for: Duration::from_millis(5), filter: None };
        let mut ran = false;
        c.benchmark_group("t").bench_function("noop", |b| {
            ran = true;
            b.iter(|| black_box(1 + 1))
        });
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
            filter: Some("other".to_string()),
        };
        let mut ran = false;
        c.benchmark_group("t").bench_function("noop", |b| {
            ran = true;
            b.iter(|| ())
        });
        assert!(!ran);
    }

    #[test]
    fn time_formatting() {
        assert!(format_time(250.0).contains("ns"));
        assert!(format_time(2_500.0).contains("µs"));
        assert!(format_time(2_500_000.0).contains("ms"));
        assert!(format_rate(2.0e6).starts_with("2.00 M"));
    }
}
