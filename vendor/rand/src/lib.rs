//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of `rand`'s API it actually uses: [`StdRng`]
//! (here a xoshiro256++ generator seeded via SplitMix64 rather than
//! ChaCha12 — different stream, same contract), the [`Rng`] and
//! [`SeedableRng`] traits with `gen`/`gen_range`/`gen_bool`, and
//! [`seq::SliceRandom`] with `shuffle`/`choose`.
//!
//! Determinism is the property the workspace relies on: the same seed
//! always produces the same stream, on every platform and at every
//! optimization level. Statistical quality is xoshiro-class, which is
//! far beyond what the simulated-crowd sampling and forest bagging here
//! need.

use std::ops::{Range, RangeInclusive};

/// Types that can construct themselves from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (fixed-size byte array in real rand).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64` seed (the only constructor this workspace uses).
    fn seed_from_u64(state: u64) -> Self;
}

/// The user-facing random-value API.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform value of a supported type (`bool`, integers, `f64`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// A uniform value in the given range. Supports `a..b` and `a..=b`
    /// over the integer types and `f64`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Map 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Marker for types `Rng::gen` can produce uniformly.
pub trait Standard: Sized {
    /// Draw a uniform value.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    #[inline]
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Ranges `Rng::gen_range` can sample a `T` from.
///
/// `T` is a type parameter (not an associated type) so the value the
/// caller wants drives inference of integer range literals, as in the
/// real rand crate.
pub trait SampleRange<T> {
    /// Draw a uniform value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, n)` by 128-bit widening multiply (negligible
/// bias, branch-free, deterministic).
#[inline]
fn below(rng: &mut (impl Rng + ?Sized), n: u64) -> u64 {
    debug_assert!(n > 0);
    ((rng.next_u64() as u128 * n as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman & Vigna),
    /// seeded through SplitMix64. Not the real rand crate's ChaCha12, but
    /// deterministic, fast, and statistically strong.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl StdRng {
        /// The generator's raw internal state, for checkpointing. Restoring
        /// via [`StdRng::from_state`] resumes the stream at exactly this
        /// position.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from raw state captured by
        /// [`StdRng::state`]. The all-zero state is invalid for xoshiro and
        /// is mapped to `seed_from_u64(0)`, mirroring `from_seed`.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    //! Sequence helpers: shuffling and choosing.

    use super::Rng;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::below(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[super::below(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn state_round_trip_resumes_the_stream() {
        let mut a = StdRng::seed_from_u64(99);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // All-zero state maps to the zero seed, never a stuck generator.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn uniformity_of_gen_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }
}
