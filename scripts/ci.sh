#!/usr/bin/env bash
# Full local CI: release build, test suite, lint wall, and a one-dataset
# end-to-end smoke run. Run from anywhere; exits non-zero on first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> smoke run (restaurants, scale 0.05, 1 run)"
cargo run --release -q -p bench --bin smoke -- \
    --datasets restaurants --scale 0.05 --runs 1

echo "==> CI OK"
