#!/usr/bin/env bash
# Full local CI: release build, test suite, lint wall, and a one-dataset
# end-to-end smoke run. Run from anywhere; exits non-zero on first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> corleone-lint (determinism & robustness contract, D1-D9)"
# Fails CI on any un-annotated finding. The machine-readable report is kept
# at target/lint-report.json (the CI artifact of record); the human pass
# prints the allow-annotation inventory (rule, file:line, reason) so waivers
# stay reviewable in the log, plus per-rule finding/waiver counts.
mkdir -p target
if ! cargo run --release -q -p lint --bin corleone-lint -- --json > target/lint-report.json; then
    cat target/lint-report.json >&2
    echo "corleone-lint: un-annotated findings (see target/lint-report.json)" >&2
    exit 1
fi

echo "==> corleone-lint waiver ratchet (lint-baseline.json)"
# The waiver inventory can only shrink: the ratchet fails on any unused
# allow, any rule over its committed per-rule budget, or any finding, and
# prints lint_ratchet=ok otherwise. The grep turns a silently-missing
# marker into a CI failure, same as the *_equivalence=ok markers below.
ratchet_log=$(mktemp)
cargo run --release -q -p lint --bin corleone-lint -- --stats --ratchet lint-baseline.json \
    | tee "$ratchet_log"
grep -q "lint_ratchet=ok" "$ratchet_log" \
    || { echo "FAIL: corleone-lint did not report lint_ratchet=ok"; exit 1; }
rm -f "$ratchet_log"

echo "==> smoke run (restaurants, scale 0.05, 1 run)"
cargo run --release -q -p bench --bin smoke -- \
    --datasets restaurants --scale 0.05 --runs 1

echo "==> blocking hot-path perf smoke (quick: restaurants, scale 0.05)"
# Sanity-checks the precomputed-analysis kernels against the string
# reference (the bin asserts bit-identity internally) and keeps the
# blocking_perf harness itself from rotting. Quick numbers go to a temp
# file so the committed BENCH_blocking.json (full-scale run) is untouched.
# The bin also asserts the indexed join's candidate list is byte-identical
# to the Cartesian scan's and prints an index_equivalence=ok marker; the
# grep below turns a silently-missing assertion into a CI failure.
perf_tmp=$(mktemp)
perf_log=$(mktemp)
cargo run --release -q -p bench --bin blocking_perf -- --quick --kinds --out "$perf_tmp" \
    | tee "$perf_log"
grep -q "index_equivalence=ok" "$perf_log" \
    || { echo "FAIL: blocking_perf did not report index_equivalence=ok"; exit 1; }
# Same deal for the char-level kernels: the bin asserts per-pair bit
# identity between the bit-parallel/scratch kernels and the string
# reference, then prints this marker.
grep -q "char_equivalence=ok" "$perf_log" \
    || { echo "FAIL: blocking_perf did not report char_equivalence=ok"; exit 1; }
# And for the arena-packed analysis layer: the bin compares every pair's
# full feature vector (arena views vs string reference) with to_bits
# equality before printing this marker.
grep -q "arena_equivalence=ok" "$perf_log" \
    || { echo "FAIL: blocking_perf did not report arena_equivalence=ok"; exit 1; }
rm -f "$perf_tmp" "$perf_log"

echo "==> fault-injection smoke (30% HIT expiry, 20% abandonment)"
# The run must finish without a panic and report a labeled termination
# (or a typed "run failed" line) — that is the whole acceptance bar.
fault_out=$(cargo run --release -q -p bench --bin smoke -- \
    --datasets restaurants --scale 0.05 --runs 1 \
    --fault-expiry 0.3 --fault-abandon 0.2)
echo "$fault_out"
if ! echo "$fault_out" | grep -qE "termination=|run failed:"; then
    echo "fault smoke produced neither a termination label nor a typed error" >&2
    exit 1
fi

echo "==> kill-and-resume smoke (faults + --checkpoint-every 1)"
# Crash-safety contract: a faulty checkpointed run, "killed" by throwing
# away everything after an early snapshot and resumed from it, must end
# with a final report byte-identical to the uninterrupted reference.
ckpt_dir=$(mktemp -d)
trap 'rm -rf "$ckpt_dir"' EXIT
cargo run --release -q -p bench --bin smoke -- \
    --datasets restaurants --scale 0.05 --runs 1 \
    --fault-expiry 0.1 --fault-abandon 0.05 \
    --checkpoint-dir "$ckpt_dir/snaps" --checkpoint-every 1 --checkpoint-keep 0 \
    --emit-json "$ckpt_dir/reference"
# "Interrupt" the run: resume from the oldest retained snapshot, i.e. the
# point where the least work had been done.
oldest=$(ls "$ckpt_dir"/snaps/restaurants-run0/snap-*.json | head -n 1)
echo "resuming from $oldest"
cargo run --release -q -p bench --bin smoke -- \
    --datasets restaurants --scale 0.05 --runs 1 \
    --resume-from "$oldest" \
    --emit-json "$ckpt_dir/resumed"
if ! diff -q "$ckpt_dir/reference/restaurants.json" "$ckpt_dir/resumed/restaurants.json"; then
    echo "resumed run diverged from the uninterrupted reference" >&2
    exit 1
fi
echo "resumed run is byte-identical to the uninterrupted reference"

echo "==> service smoke (3 concurrent tenants, kill mid-flight, restart)"
# The multi-tenant durability contract end-to-end through the corleone-serve
# bin: run three tenants uninterrupted for reference, then the same three
# against a fresh registry but killed after a few scheduling quanta
# (--max-ticks), then restart over the same registry. Every tenant must
# resume (tenants_resumed=3 in the service_perf line) and every final
# report must be byte-identical to the uninterrupted reference.
svc_dir=$(mktemp -d)
trap 'rm -rf "$ckpt_dir" "$svc_dir"' EXIT
serve_flags=(--datasets restaurants,citations,products --scale 0.08 --seed 7 --quiet)
cargo run --release -q -p service --bin corleone-serve -- \
    "${serve_flags[@]}" --root "$svc_dir/reg-ref" --out "$svc_dir/ref"
kill_out=$(cargo run --release -q -p service --bin corleone-serve -- \
    "${serve_flags[@]}" --root "$svc_dir/reg" --out "$svc_dir/resumed" --max-ticks 4)
echo "$kill_out" | grep -q '"killed"' \
    || { echo "FAIL: --max-ticks 4 did not interrupt the service mid-flight"; exit 1; }
resume_out=$(cargo run --release -q -p service --bin corleone-serve -- \
    "${serve_flags[@]}" --root "$svc_dir/reg" --out "$svc_dir/resumed")
echo "$resume_out" | grep -q '"tenants_resumed":3' \
    || { echo "FAIL: restarted service did not resume all 3 tenants"; exit 1; }
for ds in restaurants citations products; do
    if ! diff -q "$svc_dir/ref/$ds.json" "$svc_dir/resumed/$ds.json"; then
        echo "service tenant $ds diverged after kill-and-restart" >&2
        exit 1
    fi
done
echo "all 3 tenants resumed; reports byte-identical to the uninterrupted service"

echo "==> CI OK"
