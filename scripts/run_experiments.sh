#!/bin/bash
# Regenerate every experiment in EXPERIMENTS.md. Outputs land in results/.
# Runtime: ~40-60 minutes at the default scales on an 8-core machine.
set -u
cd "$(dirname "$0")/.."
cargo build --release -p bench -p datagen --bins || exit 1
R=results
mkdir -p $R
run() { name=$1; shift; echo "=== $name: $* ==="; "$@" > "$R/$name.txt" 2>&1 || echo "FAILED: $name"; }

run table1 ./target/release/table1 --scale 0.1
./target/release/table1 --scale 1.0 >> $R/table1.txt 2>&1
run table2 ./target/release/table2 --scale 0.1 --runs 3
run table3 ./target/release/table3 --scale 0.1 --runs 3
run table4 ./target/release/table4 --scale 0.1
run fig2   ./target/release/fig2
run fig3   ./target/release/fig3 --scale 0.1
run estimator_cost ./target/release/estimator_cost --scale 0.1 --runs 2
run reduction      ./target/release/reduction --scale 0.1
run rule_quality   ./target/release/rule_quality --scale 0.1
run sensitivity    ./target/release/sensitivity --scale 0.05 --runs 2
run param_sweep    ./target/release/param_sweep --scale 0.05 --runs 2 --datasets citations
run ablation_voting   ./target/release/ablation_voting --scale 0.05 --runs 2 --datasets citations
run ablation_stopping ./target/release/ablation_stopping --scale 0.05 --runs 2 --datasets products
run cleaning_demo     ./target/release/cleaning_demo --scale 0.05 --runs 2
run money_time        ./target/release/money_time --scale 0.05 --runs 2 --datasets restaurants
run ablation_model    ./target/release/ablation_model --scale 0.05 --runs 2 --datasets citations,products
echo ALL_EXPERIMENTS_DONE
