//! Hand-written per-dataset blocking rules (paper §9.2's developer
//! comparator).
//!
//! These are the rules a developer "well versed in EM" would write after
//! inspecting each dataset: cheap token-overlap predicates on the most
//! identifying attribute. They play the same role as in the paper —
//! a human expert baseline for the crowdsourced Blocker's recall and
//! reduction.

use corleone::MatchTask;
use crowd::PairKey;
use similarity::jaccard::jaccard_words;
use similarity::Record;

/// A developer blocking predicate: `true` keeps the pair.
pub type KeepRule = fn(&Record, &Record) -> bool;

fn text(r: &Record, idx: usize) -> &str {
    r.value(idx).as_text().unwrap_or("")
}

/// Restaurants: the Cartesian product is small; a developer would not
/// block at all (paper Table 3 shows Restaurants untouched). Provided for
/// completeness: keep pairs whose names share any word.
pub fn restaurants_keep(a: &Record, b: &Record) -> bool {
    jaccard_words(text(a, 0), text(b, 0)) > 0.0
}

/// Citations: keep pairs whose titles overlap substantially — the classic
/// title-token blocker for bibliographic data.
pub fn citations_keep(a: &Record, b: &Record) -> bool {
    jaccard_words(text(a, 0), text(b, 0)) >= 0.25
}

/// Products: keep pairs that agree on brand (attribute 0) or whose names
/// (attribute 1) overlap. Brand can be missing, so name overlap is the
/// fallback.
pub fn products_keep(a: &Record, b: &Record) -> bool {
    let brand_a = text(a, 0);
    let brand_b = text(b, 0);
    if !brand_a.is_empty()
        && !brand_b.is_empty()
        && brand_a.eq_ignore_ascii_case(brand_b)
    {
        return jaccard_words(text(a, 1), text(b, 1)) >= 0.2;
    }
    jaccard_words(text(a, 1), text(b, 1)) >= 0.4
}

/// The developer blocking rule for a dataset name, if the developer would
/// block it at all.
pub fn rule_for(dataset: &str) -> Option<KeepRule> {
    match dataset {
        "restaurants" => None, // small enough — no blocking
        "citations" => Some(citations_keep),
        "products" => Some(products_keep),
        _ => None,
    }
}

/// Apply a developer blocking rule over `A × B`, returning the kept pairs.
/// With no rule, everything is kept.
pub fn apply(task: &MatchTask, rule: Option<KeepRule>) -> Vec<PairKey> {
    let mut kept = Vec::new();
    for a in &task.table_a.records {
        for b in &task.table_b.records {
            let keep = rule.is_none_or(|r| r(a, b));
            if keep {
                kept.push(PairKey::new(a.id, b.id));
            }
        }
    }
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use similarity::Value;

    fn rec(id: u32, vals: Vec<Value>) -> Record {
        Record::new(id, vals)
    }

    #[test]
    fn citations_rule_keeps_similar_titles() {
        let a = rec(0, vec!["active learning for entity matching".into()]);
        let b = rec(1, vec!["entity matching with active learning".into()]);
        let c = rec(2, vec!["streaming graph compression".into()]);
        assert!(citations_keep(&a, &b));
        assert!(!citations_keep(&a, &c));
    }

    #[test]
    fn products_rule_uses_brand_then_name() {
        let a = rec(
            0,
            vec!["Kingston".into(), "Kingston HyperX 4GB Kit".into()],
        );
        let same_brand = rec(
            1,
            vec!["Kingston".into(), "Kingston HyperX 8GB Kit".into()],
        );
        let other = rec(2, vec!["Sony".into(), "Sony Bravia Remote".into()]);
        assert!(products_keep(&a, &same_brand));
        assert!(!products_keep(&a, &other));
    }

    #[test]
    fn products_rule_survives_missing_brand() {
        let a = rec(0, vec![Value::Null, "Kingston HyperX 4GB Kit".into()]);
        let b = rec(1, vec!["Kingston".into(), "Kingston HyperX 4GB Kit memory".into()]);
        assert!(products_keep(&a, &b));
    }

    #[test]
    fn rule_for_maps_names() {
        assert!(rule_for("restaurants").is_none());
        assert!(rule_for("citations").is_some());
        assert!(rule_for("products").is_some());
        assert!(rule_for("unknown").is_none());
    }
}
