#![forbid(unsafe_code)]
//! # baselines — the traditional EM solutions Corleone is compared to
//!
//! Paper §9.1 compares Corleone against two developer-driven baselines and
//! §9.2 against developer-written blocking rules:
//!
//! * [`baseline1`]: a developer performs blocking, then trains a random
//!   forest on a *random* sample of labeled pairs of the same size as the
//!   number of pairs Corleone's crowd labeled. On skewed EM data random
//!   samples contain almost no positives, which is why this baseline
//!   collapses (7.6% F1 on Restaurants in the paper).
//! * [`baseline2`]: same, but trained on 20% of the candidate set — an
//!   enormous labeled set (11× what Corleone uses on Products) that makes
//!   it "a very strong baseline".
//! * [`dev_blocker`]: hand-written per-dataset blocking rules, the expert
//!   comparator for the Blocker's recall/reduction trade-off.
//!
//! Baseline training labels come from the gold standard (a developer
//! labeling pairs, assumed noiseless), exactly as a traditional supervised
//! workflow would.

pub mod baseline1;
pub mod baseline2;
pub mod dev_blocker;

use corleone::CandidateSet;
use crowd::{GoldOracle, TruthOracle};
use forest::{Dataset, ForestConfig, RandomForest};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Train a random forest on `n_train` uniformly sampled candidate pairs
/// with gold (developer) labels, then predict every candidate. Shared core
/// of both baselines.
pub fn random_training_forest(
    cand: &CandidateSet,
    gold: &GoldOracle,
    n_train: usize,
    seed: u64,
) -> RandomForest {
    assert!(!cand.is_empty(), "candidate set must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx: Vec<usize> = (0..cand.len()).collect();
    idx.shuffle(&mut rng);
    idx.truncate(n_train.clamp(4, cand.len()));
    let mut train = Dataset::new(cand.n_features());
    for &i in &idx {
        train.push(cand.row(i), gold.true_label(cand.pair(i)));
    }
    // A random sample of a skewed universe may contain a single class;
    // the forest still needs to train (it will then predict that class).
    RandomForest::train_all(&train, &ForestConfig::default(), &mut rng)
}

/// Predict every candidate with a forest.
pub fn predict_all(cand: &CandidateSet, forest: &RandomForest) -> Vec<bool> {
    (0..cand.len()).map(|i| forest.predict(cand.row(i))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use corleone::task::task_from_parts;
    use corleone::MatchTask;
    use similarity::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    fn toy() -> (MatchTask, GoldOracle) {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::Text(format!("part {i}"))])
            .collect();
        let a = Table::new("a", schema.clone(), rows.clone());
        let b = Table::new("b", schema, rows);
        let task = task_from_parts(a, b, "same", [(0, 0), (1, 1)], [(0, 19), (2, 17)]);
        let gold = GoldOracle::from_pairs((0..20).map(|i| (i, i)));
        (task, gold)
    }

    #[test]
    fn big_training_set_learns_well() {
        let (task, gold) = toy();
        let cand = CandidateSet::full_cartesian(&task);
        let forest = random_training_forest(&cand, &gold, 300, 1);
        let preds = predict_all(&cand, &forest);
        let correct = (0..cand.len())
            .filter(|&i| preds[i] == gold.true_label(cand.pair(i)))
            .count();
        assert!(correct as f64 / cand.len() as f64 > 0.95);
    }

    #[test]
    fn tiny_random_training_set_struggles() {
        let (task, gold) = toy();
        let cand = CandidateSet::full_cartesian(&task);
        // 12 random pairs out of 400 — with 5% positive density most draws
        // see zero or one positive.
        let forest = random_training_forest(&cand, &gold, 12, 2);
        let preds = predict_all(&cand, &forest);
        let tp = (0..cand.len())
            .filter(|&i| preds[i] && gold.true_label(cand.pair(i)))
            .count();
        let recall = tp as f64 / 20.0;
        assert!(recall < 0.9, "random training should underperform, recall {recall}");
    }

    #[test]
    fn deterministic_given_seed() {
        let (task, gold) = toy();
        let cand = CandidateSet::full_cartesian(&task);
        let f1 = random_training_forest(&cand, &gold, 50, 9);
        let f2 = random_training_forest(&cand, &gold, 50, 9);
        assert_eq!(predict_all(&cand, &f1), predict_all(&cand, &f2));
    }
}
