//! Baseline 1 (paper §9.1): developer blocking + a random forest trained
//! on a *random* labeled sample of the same size as Corleone's crowd-label
//! budget.

use crate::dev_blocker;
use crate::{predict_all, random_training_forest};
use corleone::metrics::{evaluate, Prf};
use corleone::{CandidateSet, MatchTask};
use crowd::{GoldOracle, PairKey};
use std::collections::HashSet;

/// Result of a baseline run.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Accuracy against the full gold set (blocking losses included).
    pub prf: Prf,
    /// Number of labeled training pairs used.
    pub n_train: usize,
    /// Size of the candidate set after developer blocking.
    pub candidate_size: usize,
}

/// Run Baseline 1: developer blocking for `dataset_name`, then train on
/// `n_train` random gold-labeled pairs.
pub fn run(
    task: &MatchTask,
    dataset_name: &str,
    gold: &GoldOracle,
    n_train: usize,
    seed: u64,
) -> BaselineResult {
    let kept = dev_blocker::apply(task, dev_blocker::rule_for(dataset_name));
    let cand = CandidateSet::build(task, kept);
    let forest = random_training_forest(&cand, gold, n_train, seed);
    let preds = predict_all(&cand, &forest);
    let predicted: HashSet<PairKey> = preds
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p)
        .map(|(i, _)| cand.pair(i))
        .collect();
    BaselineResult {
        prf: evaluate(&predicted, gold.matches()),
        n_train: n_train.min(cand.len()),
        candidate_size: cand.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{restaurants, GenConfig};

    #[test]
    fn baseline1_runs_on_restaurants() {
        let ds = restaurants::generate(GenConfig { scale: 0.15, seed: 3 });
        let task = corleone::task::task_from_parts(
            ds.table_a.clone(),
            ds.table_b.clone(),
            &ds.instruction,
            ds.seeds.positive,
            ds.seeds.negative,
        );
        let gold = GoldOracle::from_pairs(ds.gold.iter().copied());
        let r = run(&task, "restaurants", &gold, 150, 7);
        assert_eq!(r.candidate_size, task.cartesian_size() as usize);
        assert!(r.prf.f1 <= 1.0);
    }
}
