//! Baseline 2 (paper §9.1): like Baseline 1, but trained on a full 20% of
//! the post-blocking candidate set — "a very strong baseline matcher"
//! using up to 11× the labels Corleone consumes.

use crate::baseline1::BaselineResult;
use crate::dev_blocker;
use crate::{predict_all, random_training_forest};
use corleone::metrics::evaluate;
use corleone::{CandidateSet, MatchTask};
use crowd::{GoldOracle, PairKey};
use std::collections::HashSet;

/// Fraction of the candidate set used for training.
pub const TRAIN_FRACTION: f64 = 0.2;

/// Run Baseline 2: developer blocking, then train on 20% of the candidate
/// set with gold labels.
pub fn run(task: &MatchTask, dataset_name: &str, gold: &GoldOracle, seed: u64) -> BaselineResult {
    let kept = dev_blocker::apply(task, dev_blocker::rule_for(dataset_name));
    let cand = CandidateSet::build(task, kept);
    let n_train = ((cand.len() as f64 * TRAIN_FRACTION).round() as usize).max(4);
    let forest = random_training_forest(&cand, gold, n_train, seed);
    let preds = predict_all(&cand, &forest);
    let predicted: HashSet<PairKey> = preds
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p)
        .map(|(i, _)| cand.pair(i))
        .collect();
    BaselineResult {
        prf: evaluate(&predicted, gold.matches()),
        n_train,
        candidate_size: cand.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datagen::{restaurants, GenConfig};

    #[test]
    fn baseline2_beats_baseline1_on_restaurants() {
        let ds = restaurants::generate(GenConfig { scale: 0.15, seed: 3 });
        let task = corleone::task::task_from_parts(
            ds.table_a.clone(),
            ds.table_b.clone(),
            &ds.instruction,
            ds.seeds.positive,
            ds.seeds.negative,
        );
        let gold = GoldOracle::from_pairs(ds.gold.iter().copied());
        // Single runs are noisy; compare 3-seed averages like the paper's
        // 3-run protocol.
        let avg = |f: &dyn Fn(u64) -> f64| (f(7) + f(8) + f(9)) / 3.0;
        let b2 = avg(&|s| run(&task, "restaurants", &gold, s).prf.f1);
        let b1 = avg(&|s| crate::baseline1::run(&task, "restaurants", &gold, 100, s).prf.f1);
        assert!(
            b2 >= b1 - 0.02,
            "20% training ({b2}) must not lose clearly to 100 random labels ({b1})"
        );
        assert!(b2 > 0.5, "strong baseline should do well: {b2}");
    }
}
