//! Property-based tests for the forest substrate. The load-bearing
//! invariant for Corleone is rule/tree agreement: the extracted rules of a
//! tree partition the feature space, and the one rule matching a vector
//! carries exactly the tree's prediction. Blocking correctness (§4) depends
//! on this.

use forest::{extract_rules, rules::extract_tree_rules, Dataset, ForestConfig, RandomForest};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random labeled dataset: values in [0,1] with ~10% NaN, arbitrary labels.
fn dataset(max_rows: usize, n_features: usize) -> impl Strategy<Value = Dataset> {
    prop::collection::vec(
        (
            prop::collection::vec(
                prop_oneof![9 => 0.0f64..1.0, 1 => Just(f64::NAN)],
                n_features,
            ),
            any::<bool>(),
        ),
        2..max_rows,
    )
    .prop_filter("need both classes", |rows| {
        rows.iter().any(|(_, l)| *l) && rows.iter().any(|(_, l)| !*l)
    })
    .prop_map(|rows| {
        let (xs, ls): (Vec<Vec<f64>>, Vec<bool>) = rows.into_iter().unzip();
        Dataset::from_rows(&xs, &ls)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rules_agree_with_trees(ds in dataset(40, 4), seed in 0u64..1000) {
        let cfg = ForestConfig { n_trees: 3, ..ForestConfig::default() };
        let f = RandomForest::train_all(&ds, &cfg, &mut StdRng::seed_from_u64(seed));
        for (ti, tree) in f.trees().iter().enumerate() {
            let rules = extract_tree_rules(tree, ti);
            for i in 0..ds.len() {
                let x = ds.row(i);
                let matched: Vec<_> = rules.iter().filter(|r| r.matches(x)).collect();
                prop_assert_eq!(matched.len(), 1,
                    "rules of a tree must partition the space");
                prop_assert_eq!(matched[0].label, tree.predict(x));
            }
        }
    }

    #[test]
    fn rules_partition_on_unseen_vectors(ds in dataset(30, 3),
                                         probe in prop::collection::vec(
                                             prop_oneof![9 => 0.0f64..1.0, 1 => Just(f64::NAN)], 3),
                                         seed in 0u64..1000) {
        let cfg = ForestConfig { n_trees: 2, ..ForestConfig::default() };
        let f = RandomForest::train_all(&ds, &cfg, &mut StdRng::seed_from_u64(seed));
        for (ti, tree) in f.trees().iter().enumerate() {
            let rules = extract_tree_rules(tree, ti);
            let matched: Vec<_> = rules.iter().filter(|r| r.matches(&probe)).collect();
            prop_assert_eq!(matched.len(), 1);
            prop_assert_eq!(matched[0].label, tree.predict(&probe));
        }
    }

    #[test]
    fn entropy_confidence_duality(ds in dataset(30, 3), seed in 0u64..1000) {
        let f = RandomForest::train_all(&ds, &ForestConfig::default(),
                                        &mut StdRng::seed_from_u64(seed));
        for i in 0..ds.len() {
            let x = ds.row(i);
            let h = f.entropy(x);
            prop_assert!((0.0..=std::f64::consts::LN_2 + 1e-12).contains(&h));
            prop_assert!((f.confidence(x) - (1.0 - h)).abs() < 1e-12);
            let p = f.positive_fraction(x);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert_eq!(f.predict(x), p >= 0.5);
        }
    }

    #[test]
    fn leaf_counts_sum_to_bag_size(ds in dataset(40, 3), seed in 0u64..1000) {
        let cfg = ForestConfig { n_trees: 2, bagging_fraction: 1.0, ..Default::default() };
        let f = RandomForest::train_all(&ds, &cfg, &mut StdRng::seed_from_u64(seed));
        for rules in f.trees().iter().enumerate()
            .map(|(ti, t)| extract_tree_rules(t, ti)) {
            let total: u32 = rules.iter().map(|r| r.n_pos + r.n_neg).sum();
            prop_assert_eq!(total as usize, ds.len(),
                "with full bagging every training row lands in exactly one leaf");
        }
    }

    #[test]
    fn forest_fits_training_data_reasonably(seed in 0u64..200) {
        // On cleanly separable data the forest must be near-perfect.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            let v = i as f64 / 100.0;
            rows.push(vec![v]);
            labels.push(v >= 0.5);
        }
        let ds = Dataset::from_rows(&rows, &labels);
        let f = RandomForest::train_all(&ds, &ForestConfig::default(),
                                        &mut StdRng::seed_from_u64(seed));
        let acc = (0..ds.len())
            .filter(|&i| f.predict(ds.row(i)) == ds.label(i))
            .count() as f64 / ds.len() as f64;
        prop_assert!(acc >= 0.95, "accuracy {acc}");
        prop_assert!(!extract_rules(&f).is_empty());
    }
}

#[test]
fn forest_serde_roundtrip_preserves_predictions() {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for i in 0..60 {
        let v = i as f64 / 60.0;
        rows.push(vec![v, (i % 7) as f64 / 7.0, if i % 11 == 0 { f64::NAN } else { 1.0 - v }]);
        labels.push(v > 0.5);
    }
    let ds = Dataset::from_rows(&rows, &labels);
    let f = RandomForest::train_all(&ds, &ForestConfig::default(), &mut StdRng::seed_from_u64(5));
    let json = serde_json::to_string(&f).expect("forest serializes");
    let back: RandomForest = serde_json::from_str(&json).expect("forest deserializes");
    for i in 0..ds.len() {
        assert_eq!(back.predict(ds.row(i)), f.predict(ds.row(i)));
        assert_eq!(back.positive_fraction(ds.row(i)), f.positive_fraction(ds.row(i)));
    }
    // Extracted rules survive the roundtrip too.
    assert_eq!(extract_rules(&back).len(), extract_rules(&f).len());
}
