//! Logistic regression — the comparison model for the paper's key design
//! choice of random forests.
//!
//! The paper picks forests "because blocking rules can be naturally
//! extracted from them" (§4.1). A linear model is the obvious
//! alternative: often competitive on accuracy, but it offers **no
//! machine-readable rules** — no Blocker, no reduction rules for the
//! Estimator, no Locator. This module exists so the `ablation_model`
//! experiment can quantify what the forest choice costs (if anything) in
//! raw matching accuracy.
//!
//! Implementation: batch gradient descent with L2 regularization on
//! standardized features; `NaN` features are imputed with the training
//! mean (linear models have no native missing-value routing — another
//! practical argument for trees in EM, where missing fields abound).

use crate::data::Dataset;
use serde::{Deserialize, Serialize};

/// Hyper-parameters for logistic-regression training.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LogRegConfig {
    /// Gradient-descent epochs.
    pub epochs: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularization strength.
    pub l2: f64,
}

impl Default for LogRegConfig {
    fn default() -> Self {
        LogRegConfig { epochs: 300, learning_rate: 0.5, l2: 1e-3 }
    }
}

/// A trained logistic-regression classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticRegression {
    weights: Vec<f64>,
    bias: f64,
    /// Per-feature training means (for NaN imputation and centering).
    means: Vec<f64>,
    /// Per-feature training standard deviations (for scaling; ≥ small ε).
    stds: Vec<f64>,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticRegression {
    /// Train on every row of `ds`.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn train(ds: &Dataset, cfg: &LogRegConfig) -> Self {
        assert!(!ds.is_empty(), "cannot train on an empty dataset");
        let n = ds.len();
        let d = ds.n_features();

        // Feature statistics over non-NaN entries.
        let mut means = vec![0.0f64; d];
        let mut counts = vec![0usize; d];
        for i in 0..n {
            for (j, &v) in ds.row(i).iter().enumerate() {
                if !v.is_nan() {
                    means[j] += v;
                    counts[j] += 1;
                }
            }
        }
        for j in 0..d {
            if counts[j] > 0 {
                means[j] /= counts[j] as f64;
            }
        }
        let mut vars = vec![0.0f64; d];
        for i in 0..n {
            for (j, &v) in ds.row(i).iter().enumerate() {
                if !v.is_nan() {
                    vars[j] += (v - means[j]).powi(2);
                }
            }
        }
        let stds: Vec<f64> = vars
            .iter()
            .zip(&counts)
            .map(|(&v, &c)| {
                if c > 1 {
                    (v / c as f64).sqrt().max(1e-6)
                } else {
                    1.0
                }
            })
            .collect();

        let standardize = |row: &[f64], out: &mut Vec<f64>| {
            out.clear();
            for j in 0..d {
                let v = row[j];
                let x = if v.is_nan() { means[j] } else { v };
                out.push((x - means[j]) / stds[j]);
            }
        };

        let mut w = vec![0.0f64; d];
        let mut b = 0.0f64;
        let mut x = Vec::with_capacity(d);
        let mut grad = vec![0.0f64; d];
        for _ in 0..cfg.epochs {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let mut gb = 0.0;
            for i in 0..n {
                standardize(ds.row(i), &mut x);
                let z: f64 = w.iter().zip(&x).map(|(wi, xi)| wi * xi).sum::<f64>() + b;
                let err = sigmoid(z) - f64::from(u8::from(ds.label(i)));
                for j in 0..d {
                    grad[j] += err * x[j];
                }
                gb += err;
            }
            let scale = cfg.learning_rate / n as f64;
            for j in 0..d {
                w[j] -= scale * (grad[j] + cfg.l2 * w[j] * n as f64);
            }
            b -= scale * gb;
        }
        LogisticRegression { weights: w, bias: b, means, stds }
    }

    /// Probability the pair matches.
    pub fn predict_proba(&self, row: &[f64]) -> f64 {
        let z: f64 = self
            .weights
            .iter()
            .zip(row)
            .zip(self.means.iter().zip(&self.stds))
            .map(|((w, &v), (&m, &s))| {
                let x = if v.is_nan() { m } else { v };
                w * ((x - m) / s)
            })
            .sum::<f64>()
            + self.bias;
        sigmoid(z)
    }

    /// Hard prediction at the 0.5 threshold.
    pub fn predict(&self, row: &[f64]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// The learned weights (standardized space).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(n: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let v = i as f64 / n as f64;
            rows.push(vec![v, 1.0 - v]);
            labels.push(v > 0.5);
        }
        Dataset::from_rows(&rows, &labels)
    }

    #[test]
    fn learns_separable_data() {
        let ds = separable(200);
        let m = LogisticRegression::train(&ds, &LogRegConfig::default());
        let acc = (0..ds.len())
            .filter(|&i| m.predict(ds.row(i)) == ds.label(i))
            .count() as f64
            / ds.len() as f64;
        assert!(acc > 0.97, "accuracy {acc}");
    }

    #[test]
    fn probabilities_are_calibrated_directionally() {
        let ds = separable(200);
        let m = LogisticRegression::train(&ds, &LogRegConfig::default());
        assert!(m.predict_proba(&[0.95, 0.05]) > 0.9);
        assert!(m.predict_proba(&[0.05, 0.95]) < 0.1);
    }

    #[test]
    fn nan_features_imputed_with_mean() {
        let ds = separable(100);
        let m = LogisticRegression::train(&ds, &LogRegConfig::default());
        // A NaN in the decisive feature falls back to its mean — the
        // prediction must still be finite and in range.
        let p = m.predict_proba(&[f64::NAN, 0.2]);
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn constant_feature_is_harmless() {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..80 {
            rows.push(vec![0.7, i as f64 / 80.0]);
            labels.push(i >= 40);
        }
        let ds = Dataset::from_rows(&rows, &labels);
        let m = LogisticRegression::train(&ds, &LogRegConfig::default());
        let acc = (0..ds.len())
            .filter(|&i| m.predict(ds.row(i)) == ds.label(i))
            .count() as f64
            / ds.len() as f64;
        assert!(acc > 0.95);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_training_panics() {
        LogisticRegression::train(&Dataset::new(2), &LogRegConfig::default());
    }

    #[test]
    fn serde_roundtrip() {
        let ds = separable(50);
        let m = LogisticRegression::train(&ds, &LogRegConfig::default());
        let json = serde_json::to_string(&m).unwrap();
        let back: LogisticRegression = serde_json::from_str(&json).unwrap();
        for i in 0..ds.len() {
            assert_eq!(back.predict(ds.row(i)), m.predict(ds.row(i)));
        }
    }
}
