//! Impurity measures and best-split search for tree induction.

use crate::data::Dataset;

/// Gini impurity of a node with `pos` positive and `neg` negative samples.
pub fn gini(pos: usize, neg: usize) -> f64 {
    let n = pos + neg;
    if n == 0 {
        return 0.0;
    }
    let p = pos as f64 / n as f64;
    2.0 * p * (1.0 - p)
}

/// Binary Shannon entropy (natural log) of a class distribution, with the
/// `0 · ln 0 = 0` convention. This is the paper's Eq. 1 applied to a node.
pub fn binary_entropy(pos: usize, neg: usize) -> f64 {
    let n = pos + neg;
    if n == 0 {
        return 0.0;
    }
    let p = pos as f64 / n as f64;
    let mut h = 0.0;
    if p > 0.0 {
        h -= p * p.ln();
    }
    if p < 1.0 {
        h -= (1.0 - p) * (1.0 - p).ln();
    }
    h
}

/// A chosen split of a node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Split {
    /// Feature index to split on.
    pub feature: usize,
    /// Samples with `x[feature] <= threshold` go left.
    pub threshold: f64,
    /// Whether missing (`NaN`) values are routed to the left branch.
    pub nan_left: bool,
    /// Weighted Gini impurity after the split (to compare against parent).
    pub impurity: f64,
}

/// Find the best Gini split of the samples `idx` of `ds` over the candidate
/// `features`. Returns `None` if no feature admits a split that actually
/// separates the samples (all values equal or all missing per feature).
///
/// For each feature the non-missing samples are sorted by value; every
/// midpoint between distinct consecutive values is a candidate threshold.
/// Missing samples are tried on both sides and the better side is kept,
/// which is also recorded as the branch `NaN` routes to at prediction time.
pub fn best_split(ds: &Dataset, idx: &[usize], features: &[usize]) -> Option<Split> {
    let mut best: Option<Split> = None;
    // Reusable scratch buffer of (value, is_positive).
    let mut vals: Vec<(f64, bool)> = Vec::with_capacity(idx.len());
    for &f in features {
        vals.clear();
        let mut nan_pos = 0usize;
        let mut nan_neg = 0usize;
        for &i in idx {
            let v = ds.row(i)[f];
            let l = ds.label(i);
            if v.is_nan() {
                if l {
                    nan_pos += 1;
                } else {
                    nan_neg += 1;
                }
            } else {
                vals.push((v, l));
            }
        }
        if vals.len() < 2 {
            continue;
        }
        vals.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
        let total_pos: usize = vals.iter().filter(|(_, l)| *l).count();
        let total_neg = vals.len() - total_pos;
        let nan_total = nan_pos + nan_neg;
        let n_all = vals.len() + nan_total;

        let mut left_pos = 0usize;
        let mut left_neg = 0usize;
        for w in 0..vals.len() - 1 {
            if vals[w].1 {
                left_pos += 1;
            } else {
                left_neg += 1;
            }
            if vals[w].0 == vals[w + 1].0 {
                continue; // not a valid cut point
            }
            let threshold = midpoint(vals[w].0, vals[w + 1].0);
            let right_pos = total_pos - left_pos;
            let right_neg = total_neg - left_neg;
            // Try NaN on each side; keep the better assignment.
            for nan_left in [true, false] {
                let (lp, ln, rp, rn) = if nan_left {
                    (left_pos + nan_pos, left_neg + nan_neg, right_pos, right_neg)
                } else {
                    (left_pos, left_neg, right_pos + nan_pos, right_neg + nan_neg)
                };
                let nl = lp + ln;
                let nr = rp + rn;
                let imp = (nl as f64 * gini(lp, ln) + nr as f64 * gini(rp, rn))
                    / n_all as f64;
                if best.is_none_or(|b| imp < b.impurity) {
                    best = Some(Split { feature: f, threshold, nan_left, impurity: imp });
                }
            }
        }
    }
    best
}

/// Midpoint of two finite values, guaranteed to satisfy `a <= mid < b`
/// so `x <= mid` separates them even under floating-point rounding.
fn midpoint(a: f64, b: f64) -> f64 {
    let mid = a + (b - a) / 2.0;
    if mid >= b {
        a
    } else {
        mid
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_extremes() {
        assert_eq!(gini(0, 0), 0.0);
        assert_eq!(gini(5, 0), 0.0);
        assert_eq!(gini(0, 5), 0.0);
        assert_eq!(gini(5, 5), 0.5);
    }

    #[test]
    fn entropy_extremes() {
        assert_eq!(binary_entropy(0, 0), 0.0);
        assert_eq!(binary_entropy(3, 0), 0.0);
        assert!((binary_entropy(5, 5) - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn finds_perfect_split() {
        let ds = Dataset::from_rows(
            &[vec![0.1], vec![0.2], vec![0.8], vec![0.9]],
            &[false, false, true, true],
        );
        let s = best_split(&ds, &[0, 1, 2, 3], &[0]).unwrap();
        assert_eq!(s.feature, 0);
        assert!(s.threshold > 0.2 && s.threshold < 0.8);
        assert_eq!(s.impurity, 0.0);
    }

    #[test]
    fn no_split_on_constant_feature() {
        let ds = Dataset::from_rows(&[vec![0.5], vec![0.5]], &[false, true]);
        assert!(best_split(&ds, &[0, 1], &[0]).is_none());
    }

    #[test]
    fn no_split_when_all_missing() {
        let ds = Dataset::from_rows(
            &[vec![f64::NAN], vec![f64::NAN]],
            &[false, true],
        );
        assert!(best_split(&ds, &[0, 1], &[0]).is_none());
    }

    #[test]
    fn nan_routed_to_purer_side() {
        // NaNs are all positive; the positive side is right (> 0.5).
        let ds = Dataset::from_rows(
            &[
                vec![0.1],
                vec![0.2],
                vec![0.9],
                vec![f64::NAN],
                vec![f64::NAN],
            ],
            &[false, false, true, true, true],
        );
        let s = best_split(&ds, &[0, 1, 2, 3, 4], &[0]).unwrap();
        assert!(!s.nan_left, "NaN should go to the positive (right) side");
        assert_eq!(s.impurity, 0.0);
    }

    #[test]
    fn midpoint_separates_adjacent_floats() {
        let a = 1.0_f64;
        let b = f64::from_bits(a.to_bits() + 1);
        let m = midpoint(a, b);
        assert!(a <= m && m < b);
    }

    #[test]
    fn picks_most_discriminative_feature() {
        // Feature 1 separates perfectly; feature 0 does not.
        let ds = Dataset::from_rows(
            &[
                vec![0.4, 0.0],
                vec![0.6, 0.1],
                vec![0.5, 0.9],
                vec![0.5, 1.0],
            ],
            &[false, false, true, true],
        );
        let s = best_split(&ds, &[0, 1, 2, 3], &[0, 1]).unwrap();
        assert_eq!(s.feature, 1);
    }
}
