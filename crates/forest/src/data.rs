//! Row-major labeled feature matrix used for training.

use serde::{Deserialize, Serialize};

/// A labeled dataset: a dense row-major `f64` feature matrix plus boolean
/// labels (`true` = matched / positive).
///
/// `NaN` entries encode missing features.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Dataset {
    n_features: usize,
    rows: Vec<f64>,
    labels: Vec<bool>,
}

impl Dataset {
    /// Create an empty dataset with the given arity.
    pub fn new(n_features: usize) -> Self {
        Dataset { n_features, rows: Vec::new(), labels: Vec::new() }
    }

    /// Build from explicit rows.
    ///
    /// # Panics
    /// Panics if any row has the wrong arity or the label count differs
    /// from the row count.
    pub fn from_rows(rows: &[Vec<f64>], labels: &[bool]) -> Self {
        assert_eq!(rows.len(), labels.len(), "one label per row required");
        let n_features = rows.first().map_or(0, |r| r.len());
        let mut ds = Dataset::new(n_features);
        for (r, &l) in rows.iter().zip(labels) {
            ds.push(r, l);
        }
        ds
    }

    /// Append a labeled row.
    pub fn push(&mut self, row: &[f64], label: bool) {
        assert_eq!(row.len(), self.n_features, "row arity mismatch");
        self.rows.extend_from_slice(row);
        self.labels.push(label);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per row.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The `i`-th feature row.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i * self.n_features..(i + 1) * self.n_features]
    }

    /// The `i`-th label.
    pub fn label(&self, i: usize) -> bool {
        self.labels[i]
    }

    /// All labels.
    pub fn labels(&self) -> &[bool] {
        &self.labels
    }

    /// Count of positive labels.
    pub fn n_positive(&self) -> usize {
        self.labels.iter().filter(|&&l| l).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_access() {
        let mut ds = Dataset::new(2);
        ds.push(&[1.0, 2.0], true);
        ds.push(&[3.0, f64::NAN], false);
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.row(0), &[1.0, 2.0]);
        assert!(ds.row(1)[1].is_nan());
        assert!(ds.label(0));
        assert!(!ds.label(1));
        assert_eq!(ds.n_positive(), 1);
    }

    #[test]
    fn from_rows_roundtrip() {
        let ds = Dataset::from_rows(&[vec![0.5], vec![0.7]], &[false, true]);
        assert_eq!(ds.n_features(), 1);
        assert_eq!(ds.labels(), &[false, true]);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut ds = Dataset::new(2);
        ds.push(&[1.0], true);
    }

    #[test]
    #[should_panic(expected = "one label per row")]
    fn label_count_checked() {
        Dataset::from_rows(&[vec![1.0]], &[true, false]);
    }
}
