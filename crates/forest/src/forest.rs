//! Random forest: bagged decision trees with vote entropy/confidence.

use crate::data::Dataset;
use crate::tree::{DecisionTree, TreeConfig};
use exec::Threads;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Random-forest hyper-parameters, defaulting to the Weka values the paper
/// uses (§5.1): `k = 10` trees, each trained on a random 60% portion of the
/// training data, `m = log2(n) + 1` random features per node.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees `k`.
    pub n_trees: usize,
    /// Fraction of the training data each tree sees (without replacement).
    pub bagging_fraction: f64,
    /// Candidate features per node; `None` means `log2(n_features) + 1`.
    pub m_features: Option<usize>,
    /// Per-tree induction parameters (depth, min split).
    pub tree: TreeConfig,
}

impl Default for ForestConfig {
    fn default() -> Self {
        ForestConfig {
            n_trees: 10,
            bagging_fraction: 0.6,
            m_features: None,
            tree: TreeConfig::default(),
        }
    }
}

/// A trained random forest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Train a forest on the samples `idx` of `ds`.
    ///
    /// Each tree gets an independent random `bagging_fraction` portion of
    /// `idx`, sampled without replacement (the paper trains "each on a
    /// random portion (typically set at 60%) of the original training
    /// data"). At least one sample is always used.
    ///
    /// # Panics
    /// Panics if `idx` is empty or the config is degenerate.
    pub fn train<R: Rng>(ds: &Dataset, idx: &[usize], cfg: &ForestConfig, rng: &mut R) -> Self {
        assert!(!idx.is_empty(), "cannot train a forest on zero samples");
        assert!(cfg.n_trees > 0, "need at least one tree");
        assert!(
            cfg.bagging_fraction > 0.0 && cfg.bagging_fraction <= 1.0,
            "bagging fraction must be in (0, 1]"
        );
        let mut tree_cfg = cfg.tree;
        tree_cfg.m_features = cfg
            .m_features
            .unwrap_or_else(|| (ds.n_features() as f64).log2() as usize + 1);
        let portion = ((idx.len() as f64 * cfg.bagging_fraction).round() as usize)
            .clamp(1, idx.len());
        let mut pool = idx.to_vec();
        let trees = (0..cfg.n_trees)
            .map(|_| {
                pool.shuffle(rng);
                DecisionTree::train(ds, &pool[..portion], &tree_cfg, rng)
            })
            .collect();
        RandomForest { trees }
    }

    /// Convenience: train on every row of `ds`.
    pub fn train_all<R: Rng>(ds: &Dataset, cfg: &ForestConfig, rng: &mut R) -> Self {
        let idx: Vec<usize> = (0..ds.len()).collect();
        Self::train(ds, &idx, cfg, rng)
    }

    /// [`RandomForest::train`] with the trees trained in parallel.
    ///
    /// Each tree draws a seed *serially* from `rng` and then trains on its
    /// own `StdRng`, so the resulting forest is identical at every thread
    /// count (though not identical to the serial [`RandomForest::train`],
    /// whose trees share one generator stream).
    pub fn train_par(
        ds: &Dataset,
        idx: &[usize],
        cfg: &ForestConfig,
        rng: &mut StdRng,
        threads: Threads,
    ) -> Self {
        assert!(!idx.is_empty(), "cannot train a forest on zero samples");
        assert!(cfg.n_trees > 0, "need at least one tree");
        assert!(
            cfg.bagging_fraction > 0.0 && cfg.bagging_fraction <= 1.0,
            "bagging fraction must be in (0, 1]"
        );
        let mut tree_cfg = cfg.tree;
        tree_cfg.m_features = cfg
            .m_features
            .unwrap_or_else(|| (ds.n_features() as f64).log2() as usize + 1);
        let portion = ((idx.len() as f64 * cfg.bagging_fraction).round() as usize)
            .clamp(1, idx.len());
        let tree_ids: Vec<usize> = (0..cfg.n_trees).collect();
        let trees = exec::par_map_seeded(threads, &tree_ids, rng, |_, tree_rng| {
            let mut pool = idx.to_vec();
            pool.shuffle(tree_rng);
            DecisionTree::train(ds, &pool[..portion], &tree_cfg, tree_rng)
        });
        RandomForest { trees }
    }

    /// Serialize the trained model to JSON for checkpointing.
    ///
    /// # Panics
    /// Never in practice — the model contains only finite numbers and
    /// derives `Serialize` throughout.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("a trained forest always serializes")
    }

    /// Reconstruct a model written by [`RandomForest::to_json`]. The
    /// restored forest votes identically to the original on every input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Fraction of trees voting "matched" for `x` — `P₊(e)` in Eq. 1.
    pub fn positive_fraction(&self, x: &[f64]) -> f64 {
        let pos = self.trees.iter().filter(|t| t.predict(x)).count();
        pos as f64 / self.trees.len() as f64
    }

    /// Majority-vote prediction (ties are "matched").
    pub fn predict(&self, x: &[f64]) -> bool {
        self.positive_fraction(x) >= 0.5
    }

    /// Vote entropy of Eq. 1:
    /// `entropy(e) = -[P₊ ln P₊ + P₋ ln P₋]`, with `0 ln 0 = 0`.
    /// Ranges over `[0, ln 2]`; higher means stronger tree disagreement,
    /// i.e. a more informative example for active learning.
    pub fn entropy(&self, x: &[f64]) -> f64 {
        let p = self.positive_fraction(x);
        let mut h = 0.0;
        if p > 0.0 {
            h -= p * p.ln();
        }
        if p < 1.0 {
            h -= (1.0 - p) * (1.0 - p).ln();
        }
        h
    }

    /// Confidence `conf(e) = 1 − entropy(e)` (paper §5.3).
    pub fn confidence(&self, x: &[f64]) -> f64 {
        1.0 - self.entropy(x)
    }

    /// Majority-vote predictions for every row of a row-major `matrix`
    /// (`matrix.len() / n_features` rows), in parallel.
    pub fn predict_batch(&self, matrix: &[f64], n_features: usize, threads: Threads) -> Vec<bool> {
        let n_rows = matrix.len().checked_div(n_features).unwrap_or(0);
        exec::indexed_par_map(threads, n_rows, |i| {
            self.predict(&matrix[i * n_features..(i + 1) * n_features])
        })
    }

    /// Confidences of the rows `indices` of a row-major `matrix`, in
    /// parallel, preserving the order of `indices`.
    pub fn confidence_batch(
        &self,
        matrix: &[f64],
        n_features: usize,
        indices: &[usize],
        threads: Threads,
    ) -> Vec<f64> {
        exec::par_map(threads, indices, |&i| {
            self.confidence(&matrix[i * n_features..(i + 1) * n_features])
        })
    }

    /// Vote entropies of the rows `indices` of a row-major `matrix`, in
    /// parallel, preserving the order of `indices`.
    pub fn entropy_batch(
        &self,
        matrix: &[f64],
        n_features: usize,
        indices: &[usize],
        threads: Threads,
    ) -> Vec<f64> {
        exec::par_map(threads, indices, |&i| {
            self.entropy(&matrix[i * n_features..(i + 1) * n_features])
        })
    }

    /// The component trees.
    pub fn trees(&self) -> &[DecisionTree] {
        &self.trees
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Normalized split-based feature importances (summing to 1 unless the
    /// forest is all leaves). `n_features` sizes the output; features the
    /// forest never splits on get 0.
    pub fn feature_importance(&self, n_features: usize) -> Vec<f64> {
        let mut acc = vec![0.0; n_features];
        for t in &self.trees {
            t.accumulate_importance(&mut acc);
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for v in acc.iter_mut() {
                *v /= total;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn separable(n: usize) -> Dataset {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let v = i as f64 / n as f64;
            rows.push(vec![v, 1.0 - v]);
            labels.push(v > 0.5);
        }
        Dataset::from_rows(&rows, &labels)
    }

    #[test]
    fn forest_learns_separable_data() {
        let ds = separable(200);
        let mut rng = StdRng::seed_from_u64(42);
        let f = RandomForest::train_all(&ds, &ForestConfig::default(), &mut rng);
        assert_eq!(f.n_trees(), 10);
        let correct = (0..ds.len())
            .filter(|&i| f.predict(ds.row(i)) == ds.label(i))
            .count();
        assert!(correct as f64 / ds.len() as f64 > 0.97);
    }

    #[test]
    fn json_round_trip_votes_identically() {
        let ds = separable(150);
        let mut rng = StdRng::seed_from_u64(7);
        let f = RandomForest::train_all(&ds, &ForestConfig::default(), &mut rng);
        let back = RandomForest::from_json(&f.to_json()).expect("round trip");
        assert_eq!(back.n_trees(), f.n_trees());
        for i in 0..ds.len() {
            assert_eq!(back.predict(ds.row(i)), f.predict(ds.row(i)));
            assert_eq!(back.positive_fraction(ds.row(i)), f.positive_fraction(ds.row(i)));
        }
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(RandomForest::from_json("not json").is_err());
        assert!(RandomForest::from_json("{\"trees\": 3}").is_err());
    }

    #[test]
    fn entropy_zero_on_unanimous_examples() {
        let ds = separable(200);
        let mut rng = StdRng::seed_from_u64(42);
        let f = RandomForest::train_all(&ds, &ForestConfig::default(), &mut rng);
        // Far from the boundary every tree agrees.
        assert_eq!(f.entropy(&[0.99, 0.01]), 0.0);
        assert_eq!(f.confidence(&[0.99, 0.01]), 1.0);
    }

    #[test]
    fn entropy_bounded_by_ln2() {
        let ds = separable(50);
        let mut rng = StdRng::seed_from_u64(1);
        let f = RandomForest::train_all(&ds, &ForestConfig::default(), &mut rng);
        for i in 0..ds.len() {
            let h = f.entropy(ds.row(i));
            assert!((0.0..=std::f64::consts::LN_2 + 1e-12).contains(&h));
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let ds = separable(100);
        let cfg = ForestConfig::default();
        let f1 = RandomForest::train_all(&ds, &cfg, &mut StdRng::seed_from_u64(9));
        let f2 = RandomForest::train_all(&ds, &cfg, &mut StdRng::seed_from_u64(9));
        for i in 0..ds.len() {
            assert_eq!(
                f1.positive_fraction(ds.row(i)),
                f2.positive_fraction(ds.row(i))
            );
        }
    }

    #[test]
    fn single_tree_forest_works() {
        let ds = separable(50);
        let cfg = ForestConfig { n_trees: 1, bagging_fraction: 1.0, ..Default::default() };
        let f = RandomForest::train_all(&ds, &cfg, &mut StdRng::seed_from_u64(3));
        assert_eq!(f.n_trees(), 1);
        assert!(f.predict(&[0.9, 0.1]));
        assert!(!f.predict(&[0.1, 0.9]));
    }

    #[test]
    #[should_panic(expected = "bagging fraction")]
    fn bad_bagging_fraction_panics() {
        let ds = separable(10);
        let cfg = ForestConfig { bagging_fraction: 0.0, ..Default::default() };
        RandomForest::train_all(&ds, &cfg, &mut StdRng::seed_from_u64(0));
    }

    #[test]
    fn train_par_is_thread_count_invariant() {
        let ds = separable(120);
        let cfg = ForestConfig::default();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let forests: Vec<RandomForest> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                let mut rng = StdRng::seed_from_u64(11);
                RandomForest::train_par(&ds, &idx, &cfg, &mut rng, Threads::new(t))
            })
            .collect();
        for i in 0..ds.len() {
            let p = forests[0].positive_fraction(ds.row(i));
            assert_eq!(p, forests[1].positive_fraction(ds.row(i)));
            assert_eq!(p, forests[2].positive_fraction(ds.row(i)));
        }
    }

    #[test]
    fn batch_helpers_agree_with_scalar_calls() {
        let ds = separable(80);
        let mut rng = StdRng::seed_from_u64(4);
        let f = RandomForest::train_all(&ds, &ForestConfig::default(), &mut rng);
        let matrix: Vec<f64> = (0..ds.len()).flat_map(|i| ds.row(i).to_vec()).collect();
        let n = ds.n_features();
        let preds = f.predict_batch(&matrix, n, Threads::new(3));
        let idx: Vec<usize> = (0..ds.len()).collect();
        let confs = f.confidence_batch(&matrix, n, &idx, Threads::new(3));
        let ents = f.entropy_batch(&matrix, n, &idx, Threads::new(3));
        for i in 0..ds.len() {
            assert_eq!(preds[i], f.predict(ds.row(i)));
            assert_eq!(confs[i], f.confidence(ds.row(i)));
            assert_eq!(ents[i], f.entropy(ds.row(i)));
        }
    }

    #[test]
    fn tiny_training_set_still_trains() {
        // The four user-supplied seed examples (2 pos, 2 neg) must train.
        let ds = Dataset::from_rows(
            &[vec![1.0], vec![0.9], vec![0.1], vec![0.0]],
            &[true, true, false, false],
        );
        let f = RandomForest::train_all(
            &ds,
            &ForestConfig::default(),
            &mut StdRng::seed_from_u64(5),
        );
        assert!(f.predict(&[0.95]));
        assert!(!f.predict(&[0.05]));
    }
}

#[cfg(test)]
mod importance_tests {
    use super::*;
    use crate::data::Dataset;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn importance_concentrates_on_the_signal_feature() {
        // Feature 1 decides the label; feature 0 is noise-free constant.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..100 {
            let v = i as f64 / 100.0;
            rows.push(vec![0.5, v]);
            labels.push(v > 0.5);
        }
        let ds = Dataset::from_rows(&rows, &labels);
        let cfg = ForestConfig { m_features: Some(2), ..Default::default() };
        let f = RandomForest::train_all(&ds, &cfg, &mut StdRng::seed_from_u64(1));
        let imp = f.feature_importance(2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[1] > 0.9, "signal feature must dominate: {imp:?}");
    }

    #[test]
    fn importance_of_stump_forest_is_zero() {
        let ds = Dataset::from_rows(&[vec![0.1], vec![0.2]], &[true, true]);
        let f = RandomForest::train_all(
            &ds,
            &ForestConfig::default(),
            &mut StdRng::seed_from_u64(2),
        );
        let imp = f.feature_importance(1);
        assert_eq!(imp, vec![0.0], "pure leaves produce no splits");
    }
}
