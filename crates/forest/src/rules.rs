//! Rule extraction from decision trees (paper §4.1 step 4, Fig. 2).
//!
//! Every root→leaf path of a decision tree is a conjunction of threshold
//! predicates. A path ending in a "no" leaf is a **negative rule**: if a
//! pair satisfies it, the tree says the pair does not match — exactly the
//! machine-readable form a blocking rule needs. Paths to "yes" leaves are
//! **positive rules**, used by the Difficult Pairs' Locator (§7).

use crate::forest::RandomForest;
use crate::tree::{DecisionTree, Node};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operator of a predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Op {
    /// `x[feature] <= threshold` (the left branch of a split).
    Le,
    /// `x[feature] > threshold` (the right branch of a split).
    Gt,
}

/// One threshold predicate of a rule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Predicate {
    /// Feature index.
    pub feature: usize,
    /// Comparison.
    pub op: Op,
    /// Threshold.
    pub threshold: f64,
    /// Whether a missing (`NaN`) value satisfies the predicate. Mirrors the
    /// NaN routing the split learned at training time, so a rule matches a
    /// vector exactly when the tree would walk down that path.
    pub nan_satisfies: bool,
}

impl Predicate {
    /// Evaluate the predicate on a feature vector.
    #[inline]
    pub fn holds(&self, x: &[f64]) -> bool {
        let v = x[self.feature];
        if v.is_nan() {
            return self.nan_satisfies;
        }
        match self.op {
            Op::Le => v <= self.threshold,
            Op::Gt => v > self.threshold,
        }
    }
}

/// A conjunctive decision rule extracted from one tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Predicates, all of which must hold (root-to-leaf order).
    pub predicates: Vec<Predicate>,
    /// Predicted label: `false` = negative rule ("do not match"),
    /// `true` = positive rule ("match").
    pub label: bool,
    /// Index of the tree the rule came from.
    pub tree: usize,
    /// Positive training samples that reached the leaf.
    pub n_pos: u32,
    /// Negative training samples that reached the leaf.
    pub n_neg: u32,
}

impl Rule {
    /// True if the feature vector satisfies every predicate.
    pub fn matches(&self, x: &[f64]) -> bool {
        self.predicates.iter().all(|p| p.holds(x))
    }

    /// Sum of unit costs of the *distinct* features the rule reads —
    /// the "tuple pair cost" of paper §4.3. `costs[f]` is the unit cost of
    /// feature `f` (see `similarity::FeatureKind::unit_cost`).
    pub fn eval_cost(&self, costs: &[f64]) -> f64 {
        let mut seen: Vec<usize> = self.predicates.iter().map(|p| p.feature).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.iter().map(|&f| costs[f]).sum()
    }

    /// The distinct features the rule reads, ascending.
    pub fn features(&self) -> Vec<usize> {
        let mut fs: Vec<usize> = self.predicates.iter().map(|p| p.feature).collect();
        fs.sort_unstable();
        fs.dedup();
        fs
    }

    /// Render with human-readable feature names, e.g.
    /// `"(isbn_exact <= 0.50) and (pages_num_rel <= 0.95) => NO"`.
    pub fn display_with(&self, names: &[String]) -> String {
        let body = self
            .predicates
            .iter()
            .map(|p| {
                let op = match p.op {
                    Op::Le => "<=",
                    Op::Gt => ">",
                };
                format!("({} {} {:.2})", names[p.feature], op, p.threshold)
            })
            .collect::<Vec<_>>()
            .join(" and ");
        let verdict = if self.label { "MATCH" } else { "NO" };
        if body.is_empty() {
            format!("(always) => {verdict}")
        } else {
            format!("{body} => {verdict}")
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..)
            .take(
                self.predicates
                    .iter()
                    .map(|p| p.feature + 1)
                    .max()
                    .unwrap_or(0),
            )
            .map(|i| format!("f{i}"))
            .collect();
        write!(f, "{}", self.display_with(&names))
    }
}

/// Extract every root→leaf rule of a single tree.
pub fn extract_tree_rules(tree: &DecisionTree, tree_idx: usize) -> Vec<Rule> {
    let mut rules = Vec::new();
    let mut path: Vec<Predicate> = Vec::new();
    walk(tree.nodes(), 0, &mut path, &mut rules, tree_idx);
    rules
}

fn walk(
    nodes: &[Node],
    cur: usize,
    path: &mut Vec<Predicate>,
    out: &mut Vec<Rule>,
    tree_idx: usize,
) {
    match &nodes[cur] {
        Node::Leaf { label, n_pos, n_neg } => out.push(Rule {
            predicates: path.clone(),
            label: *label,
            tree: tree_idx,
            n_pos: *n_pos,
            n_neg: *n_neg,
        }),
        Node::Split { feature, threshold, nan_left, left, right } => {
            path.push(Predicate {
                feature: *feature as usize,
                op: Op::Le,
                threshold: *threshold,
                nan_satisfies: *nan_left,
            });
            walk(nodes, *left as usize, path, out, tree_idx);
            path.pop();
            path.push(Predicate {
                feature: *feature as usize,
                op: Op::Gt,
                threshold: *threshold,
                nan_satisfies: !*nan_left,
            });
            walk(nodes, *right as usize, path, out, tree_idx);
            path.pop();
        }
    }
}

/// Extract every rule of every tree in the forest.
pub fn extract_rules(forest: &RandomForest) -> Vec<Rule> {
    forest
        .trees()
        .iter()
        .enumerate()
        .flat_map(|(i, t)| extract_tree_rules(t, i))
        .collect()
}

/// Only the negative ("do not match") rules — candidate blocking and
/// reduction rules.
pub fn negative_rules(forest: &RandomForest) -> Vec<Rule> {
    extract_rules(forest).into_iter().filter(|r| !r.label).collect()
}

/// Only the positive ("match") rules, used by the Locator (§7).
pub fn positive_rules(forest: &RandomForest) -> Vec<Rule> {
    extract_rules(forest).into_iter().filter(|r| r.label).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::Dataset;
    use crate::forest::ForestConfig;
    use crate::tree::TreeConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn book_forest() -> (Dataset, RandomForest) {
        // Feature 0 = isbn_match, feature 1 = pages_match (Fig. 2 style).
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for isbn in [0.0, 1.0] {
            for pages in [0.0, 1.0] {
                for _ in 0..5 {
                    rows.push(vec![isbn, pages]);
                    labels.push(isbn == 1.0 && pages == 1.0);
                }
            }
        }
        let ds = Dataset::from_rows(&rows, &labels);
        let cfg = ForestConfig {
            n_trees: 2,
            bagging_fraction: 1.0,
            m_features: Some(2),
            tree: TreeConfig::default(),
        };
        let f = RandomForest::train_all(&ds, &cfg, &mut StdRng::seed_from_u64(11));
        (ds, f)
    }

    #[test]
    fn rules_partition_each_tree() {
        let (ds, f) = book_forest();
        for (ti, tree) in f.trees().iter().enumerate() {
            let rules = extract_tree_rules(tree, ti);
            assert_eq!(rules.len(), tree.n_leaves());
            for i in 0..ds.len() {
                let matched: Vec<&Rule> =
                    rules.iter().filter(|r| r.matches(ds.row(i))).collect();
                assert_eq!(matched.len(), 1, "exactly one rule per tree must match");
                assert_eq!(matched[0].label, tree.predict(ds.row(i)));
            }
        }
    }

    #[test]
    fn negative_rules_predict_no() {
        let (_, f) = book_forest();
        let negs = negative_rules(&f);
        assert!(!negs.is_empty());
        assert!(negs.iter().all(|r| !r.label));
        // The Fig. 2 rule: isbn mismatch alone implies non-match.
        let no_isbn = [0.0, 1.0];
        assert!(
            negs.iter().any(|r| r.matches(&no_isbn)),
            "some negative rule must cover an isbn-mismatch pair"
        );
    }

    #[test]
    fn positive_plus_negative_equals_all() {
        let (_, f) = book_forest();
        let all = extract_rules(&f).len();
        assert_eq!(
            positive_rules(&f).len() + negative_rules(&f).len(),
            all
        );
    }

    #[test]
    fn eval_cost_counts_distinct_features() {
        let r = Rule {
            predicates: vec![
                Predicate { feature: 0, op: Op::Le, threshold: 0.5, nan_satisfies: false },
                Predicate { feature: 0, op: Op::Gt, threshold: 0.1, nan_satisfies: false },
                Predicate { feature: 2, op: Op::Le, threshold: 0.9, nan_satisfies: true },
            ],
            label: false,
            tree: 0,
            n_pos: 0,
            n_neg: 3,
        };
        assert_eq!(r.eval_cost(&[5.0, 1.0, 2.0]), 7.0);
        assert_eq!(r.features(), vec![0, 2]);
    }

    #[test]
    fn nan_predicate_semantics() {
        let p = Predicate { feature: 0, op: Op::Le, threshold: 0.5, nan_satisfies: true };
        assert!(p.holds(&[f64::NAN]));
        assert!(p.holds(&[0.4]));
        assert!(!p.holds(&[0.6]));
        let q = Predicate { feature: 0, op: Op::Gt, threshold: 0.5, nan_satisfies: false };
        assert!(!q.holds(&[f64::NAN]));
    }

    #[test]
    fn display_is_readable() {
        let r = Rule {
            predicates: vec![Predicate {
                feature: 0,
                op: Op::Le,
                threshold: 0.5,
                nan_satisfies: false,
            }],
            label: false,
            tree: 0,
            n_pos: 0,
            n_neg: 9,
        };
        let s = r.display_with(&["isbn_exact".to_string()]);
        assert_eq!(s, "(isbn_exact <= 0.50) => NO");
    }

    #[test]
    fn root_leaf_rule_displays() {
        let r = Rule { predicates: vec![], label: true, tree: 0, n_pos: 4, n_neg: 0 };
        assert_eq!(r.to_string(), "(always) => MATCH");
        assert!(r.matches(&[1.0, 2.0]));
    }
}
