//! CART-style decision tree induction with random feature subsets per node.

use crate::data::Dataset;
use crate::split::{best_split, gini};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A node of a [`DecisionTree`], stored in a flat arena.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Terminal node predicting `label`, with the training class counts
    /// that reached it (used for rule statistics).
    Leaf {
        /// Predicted class.
        label: bool,
        /// Positive training samples that reached the leaf.
        n_pos: u32,
        /// Negative training samples that reached the leaf.
        n_neg: u32,
    },
    /// Internal split: `x[feature] <= threshold` goes to `left`, otherwise
    /// `right`; `NaN` goes to the side recorded in `nan_left`.
    Split {
        /// Feature index.
        feature: u32,
        /// Split threshold.
        threshold: f64,
        /// Whether missing values route left.
        nan_left: bool,
        /// Arena index of the left child.
        left: u32,
        /// Arena index of the right child.
        right: u32,
    },
}

/// Hyper-parameters for single-tree induction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Do not split nodes with fewer samples than this.
    pub min_samples_split: usize,
    /// Number of random candidate features per node; `0` means all.
    pub m_features: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig { max_depth: 25, min_samples_split: 2, m_features: 0 }
    }
}

/// A trained binary decision tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Train a tree on the samples `idx` of `ds`.
    ///
    /// # Panics
    /// Panics if `idx` is empty.
    pub fn train<R: Rng>(ds: &Dataset, idx: &[usize], cfg: &TreeConfig, rng: &mut R) -> Self {
        assert!(!idx.is_empty(), "cannot train a tree on zero samples");
        let mut tree = DecisionTree { nodes: Vec::new() };
        let all_features: Vec<usize> = (0..ds.n_features()).collect();
        let mut idx = idx.to_vec();
        tree.build(ds, &mut idx, &all_features, cfg, rng, 0);
        tree
    }

    /// Recursively build the subtree over `idx`, returning its arena index.
    fn build<R: Rng>(
        &mut self,
        ds: &Dataset,
        idx: &mut [usize],
        all_features: &[usize],
        cfg: &TreeConfig,
        rng: &mut R,
        depth: usize,
    ) -> u32 {
        let n_pos = idx.iter().filter(|&&i| ds.label(i)).count();
        let n_neg = idx.len() - n_pos;
        let make_leaf = |nodes: &mut Vec<Node>| -> u32 {
            nodes.push(Node::Leaf {
                // Tie-break toward "not matched": EM universes are skewed
                // negative, so an uninformative leaf should not claim a match.
                label: n_pos > n_neg,
                n_pos: n_pos as u32,
                n_neg: n_neg as u32,
            });
            (nodes.len() - 1) as u32
        };
        if depth >= cfg.max_depth
            || idx.len() < cfg.min_samples_split
            || n_pos == 0
            || n_neg == 0
        {
            return make_leaf(&mut self.nodes);
        }
        // Random feature subset (Breiman-style), resampled at every node.
        let m = if cfg.m_features == 0 || cfg.m_features >= all_features.len() {
            all_features.len()
        } else {
            cfg.m_features
        };
        let chosen: Vec<usize> = {
            let mut pool = all_features.to_vec();
            pool.shuffle(rng);
            pool.truncate(m);
            pool
        };
        let Some(split) = best_split(ds, idx, &chosen) else {
            return make_leaf(&mut self.nodes);
        };
        // Reject splits that do not reduce impurity at all.
        if split.impurity >= gini(n_pos, n_neg) - 1e-12 {
            return make_leaf(&mut self.nodes);
        }
        // Partition in place: left = (v <= t) or (NaN & nan_left).
        let goes_left = |v: f64| {
            if v.is_nan() {
                split.nan_left
            } else {
                v <= split.threshold
            }
        };
        let mid = itertools_partition(idx, |&i| goes_left(ds.row(i)[split.feature]));
        if mid == 0 || mid == idx.len() {
            // Degenerate partition (can happen when NaN routing collapses a
            // side); fall back to a leaf.
            return make_leaf(&mut self.nodes);
        }
        // Reserve our slot before children so the root is index 0.
        self.nodes.push(Node::Leaf { label: false, n_pos: 0, n_neg: 0 });
        let me = (self.nodes.len() - 1) as u32;
        let (l_idx, r_idx) = idx.split_at_mut(mid);
        let left = self.build(ds, l_idx, all_features, cfg, rng, depth + 1);
        let right = self.build(ds, r_idx, all_features, cfg, rng, depth + 1);
        self.nodes[me as usize] = Node::Split {
            feature: split.feature as u32,
            threshold: split.threshold,
            nan_left: split.nan_left,
            left,
            right,
        };
        me
    }

    /// Predict the class of a feature vector.
    pub fn predict(&self, x: &[f64]) -> bool {
        let mut cur = 0usize;
        loop {
            match &self.nodes[cur] {
                Node::Leaf { label, .. } => return *label,
                Node::Split { feature, threshold, nan_left, left, right } => {
                    let v = x[*feature as usize];
                    let go_left = if v.is_nan() { *nan_left } else { v <= *threshold };
                    cur = if go_left { *left as usize } else { *right as usize };
                }
            }
        }
    }

    /// The node arena (root at index 0). Exposed for rule extraction.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Leaf { .. }))
            .count()
    }

    /// Accumulate split-based feature importance into `acc` (indexed by
    /// feature): each split adds the number of training samples that
    /// passed through it, so early, high-traffic splits weigh more.
    pub fn accumulate_importance(&self, acc: &mut [f64]) {
        fn samples_below(nodes: &[Node], i: usize) -> u64 {
            match &nodes[i] {
                Node::Leaf { n_pos, n_neg, .. } => u64::from(*n_pos) + u64::from(*n_neg),
                Node::Split { left, right, .. } => {
                    samples_below(nodes, *left as usize) + samples_below(nodes, *right as usize)
                }
            }
        }
        fn rec(nodes: &[Node], i: usize, acc: &mut [f64]) {
            if let Node::Split { feature, left, right, .. } = &nodes[i] {
                acc[*feature as usize] += samples_below(nodes, i) as f64;
                rec(nodes, *left as usize, acc);
                rec(nodes, *right as usize, acc);
            }
        }
        rec(&self.nodes, 0, acc);
    }

    /// Maximum depth of any leaf (root = 0).
    pub fn depth(&self) -> usize {
        fn rec(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + rec(nodes, *left as usize).max(rec(nodes, *right as usize))
                }
            }
        }
        rec(&self.nodes, 0)
    }
}

/// Stable-ish in-place partition: moves elements satisfying `pred` to the
/// front, returns the count. (Order within halves is not specified.)
fn itertools_partition<T, F: FnMut(&T) -> bool>(xs: &mut [T], mut pred: F) -> usize {
    let mut store = 0;
    for i in 0..xs.len() {
        if pred(&xs[i]) {
            xs.swap(store, i);
            store += 1;
        }
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn xor_like() -> Dataset {
        // Two features; positive iff both above 0.5 — needs depth 2.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..10 {
            for j in 0..10 {
                let x = i as f64 / 10.0;
                let y = j as f64 / 10.0;
                rows.push(vec![x, y]);
                labels.push(x > 0.5 && y > 0.5);
            }
        }
        Dataset::from_rows(&rows, &labels)
    }

    #[test]
    fn learns_conjunction_perfectly() {
        let ds = xor_like();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let mut rng = StdRng::seed_from_u64(7);
        let t = DecisionTree::train(&ds, &idx, &TreeConfig::default(), &mut rng);
        for i in 0..ds.len() {
            assert_eq!(t.predict(ds.row(i)), ds.label(i), "row {i}");
        }
        assert!(t.depth() >= 2);
    }

    #[test]
    fn pure_input_yields_single_leaf() {
        let ds = Dataset::from_rows(&[vec![0.1], vec![0.9]], &[true, true]);
        let mut rng = StdRng::seed_from_u64(0);
        let t = DecisionTree::train(&ds, &[0, 1], &TreeConfig::default(), &mut rng);
        assert_eq!(t.n_leaves(), 1);
        assert!(t.predict(&[0.5]));
    }

    #[test]
    fn max_depth_respected() {
        let ds = xor_like();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = TreeConfig { max_depth: 1, ..TreeConfig::default() };
        let t = DecisionTree::train(&ds, &idx, &cfg, &mut rng);
        assert!(t.depth() <= 1);
    }

    #[test]
    fn nan_at_prediction_follows_learned_routing() {
        // Feature 0 missing for positives at train time → NaN routes to the
        // positive side.
        let ds = Dataset::from_rows(
            &[
                vec![0.1, 0.0],
                vec![0.2, 0.0],
                vec![f64::NAN, 1.0],
                vec![f64::NAN, 1.0],
                vec![0.9, 1.0],
            ],
            &[false, false, true, true, true],
        );
        let mut rng = StdRng::seed_from_u64(2);
        let t = DecisionTree::train(&ds, &[0, 1, 2, 3, 4], &TreeConfig::default(), &mut rng);
        assert!(t.predict(&[f64::NAN, 1.0]));
    }

    #[test]
    fn leaf_tiebreak_is_negative() {
        let ds = Dataset::from_rows(&[vec![0.5], vec![0.5]], &[true, false]);
        let mut rng = StdRng::seed_from_u64(3);
        let t = DecisionTree::train(&ds, &[0, 1], &TreeConfig::default(), &mut rng);
        assert!(!t.predict(&[0.5]));
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_training_panics() {
        let ds = Dataset::new(1);
        let mut rng = StdRng::seed_from_u64(0);
        DecisionTree::train(&ds, &[], &TreeConfig::default(), &mut rng);
    }

    #[test]
    fn partition_helper() {
        let mut xs = vec![3, 1, 4, 1, 5, 9, 2, 6];
        let mid = itertools_partition(&mut xs, |&x| x < 4);
        assert_eq!(mid, 4);
        assert!(xs[..mid].iter().all(|&x| x < 4));
        assert!(xs[mid..].iter().all(|&x| x >= 4));
    }
}
