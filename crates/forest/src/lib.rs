#![forbid(unsafe_code)]
//! # forest — decision trees, random forests, and rule extraction
//!
//! A from-scratch implementation of the learning substrate Corleone builds
//! on (paper §5.1): an ensemble-of-decision-trees classifier configured like
//! Weka's `RandomForest` defaults the paper uses — `k = 10` trees, each
//! trained on a random 60% portion of the training data, with
//! `m = log2(n) + 1` random candidate features per node.
//!
//! Beyond train/predict, the crate exposes the two capabilities Corleone's
//! crowd modules need and off-the-shelf ML crates do not provide:
//!
//! * **Ensemble disagreement** ([`RandomForest::entropy`],
//!   [`RandomForest::confidence`]): the entropy of the trees' votes (paper
//!   Eq. 1) drives active-learning example selection and the stopping rules.
//! * **Rule extraction** ([`rules`]): every root→leaf path of every tree is
//!   a conjunctive rule; paths to "no" leaves are *negative rules* usable as
//!   blocking/reduction rules, paths to "yes" leaves are *positive rules*
//!   (paper §4.1 step 4, Fig. 2).
//!
//! Feature vectors are `f64` slices; `NaN` encodes a missing value and is
//! routed at each split to the branch that was better during training.
//!
//! ```
//! use forest::{Dataset, ForestConfig, RandomForest, negative_rules};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! // Toy task: positive iff feature 0 is high.
//! let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
//! let labels: Vec<bool> = (0..100).map(|i| i >= 50).collect();
//! let ds = Dataset::from_rows(&rows, &labels);
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let forest = RandomForest::train_all(&ds, &ForestConfig::default(), &mut rng);
//! assert!(forest.predict(&[0.9]));
//! assert!(!forest.predict(&[0.1]));
//!
//! // Every "no" leaf is a candidate blocking rule.
//! let blocking_candidates = negative_rules(&forest);
//! assert!(blocking_candidates.iter().all(|r| !r.label));
//! ```

pub mod data;
pub mod forest;
pub mod linear;
pub mod rules;
pub mod split;
pub mod tree;

pub use crate::forest::{ForestConfig, RandomForest};
pub use data::Dataset;
pub use linear::{LogRegConfig, LogisticRegression};
pub use rules::{extract_rules, negative_rules, positive_rules, Op, Predicate, Rule};
pub use tree::DecisionTree;
