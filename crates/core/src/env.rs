//! Shared execution resources for one engine run.
//!
//! A [`RunEnv`] bundles the two things every phase of the pipeline needs
//! but no phase should own: the parallelism budget and the (optional)
//! shared [`FeatureCache`]. The engine constructs one per run from the
//! session settings and threads it through the Blocker, Matcher,
//! Accuracy Estimator, and Difficult Pairs' Locator, so a pair
//! vectorized in one phase is never re-vectorized in another.

use crate::cache::FeatureCache;
use crate::task::MatchTask;
use crowd::PairKey;
pub use exec::Threads;

/// Per-run execution context: thread budget plus shared feature cache.
#[derive(Debug, Clone, Copy)]
pub struct RunEnv<'c> {
    /// Parallelism budget for every hot loop in this run.
    pub threads: Threads,
    /// Shared feature-vector cache, if the run owns one.
    pub cache: Option<&'c FeatureCache>,
}

impl<'c> RunEnv<'c> {
    /// An environment with the given budget and no cache.
    pub fn with_threads(threads: Threads) -> Self {
        RunEnv { threads, cache: None }
    }

    /// Single-threaded, uncached — the conservative default for
    /// standalone phase calls outside an engine run.
    pub fn serial() -> Self {
        RunEnv { threads: Threads::new(1), cache: None }
    }

    /// Attach a shared feature cache.
    pub fn with_cache(mut self, cache: &'c FeatureCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Vectorize one pair through the cache when one is attached.
    pub fn vectorize(&self, task: &MatchTask, key: PairKey) -> Vec<f64> {
        match self.cache {
            Some(c) => c.get_or_compute(key, || task.vectorize(key)).as_ref().clone(),
            None => task.vectorize(key),
        }
    }
}

impl Default for RunEnv<'_> {
    fn default() -> Self {
        RunEnv { threads: Threads::auto(), cache: None }
    }
}
