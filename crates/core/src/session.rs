//! The session-based run API.
//!
//! A [`RunSession`] is a builder for one engine run — the sole entry
//! point since the deprecated `Engine::run` shim was removed. It
//! separates two kinds of settings the old positional signature
//! conflated with the algorithmic configuration:
//!
//! * **collaborators** — the crowd platform, the truth oracle, and an
//!   optional gold standard for experiment metrics;
//! * **execution settings** — worker threads, feature-cache capacity,
//!   and the RNG seed. These affect how fast a run goes, never what it
//!   computes, so they live on the session rather than on
//!   [`CorleoneConfig`](crate::config::CorleoneConfig).
//!
//! ```no_run
//! # use corleone::{Engine, CorleoneConfig, MatchTask};
//! # use crowd::{CrowdConfig, CrowdPlatform, GoldOracle, WorkerPool};
//! # fn get_task() -> (MatchTask, GoldOracle) { unimplemented!() }
//! let (task, oracle) = get_task();
//! let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
//! let report = Engine::new(CorleoneConfig::default())
//!     .session(&task)
//!     .platform(&mut platform)
//!     .oracle(&oracle)
//!     .threads(8)
//!     .run();
//! ```

use crate::cache::{FeatureCache, DEFAULT_CACHE_CAPACITY};
use crate::engine::{CheckpointPlan, Engine, RunReport};
use crate::error::CorleoneError;
use crate::snapshot::RunSnapshot;
use crate::task::MatchTask;
use crowd::{CrowdPlatform, PairKey, TruthOracle};
use exec::Threads;
use std::collections::HashSet;
use std::path::PathBuf;
use store::Snapshotter;

impl Engine {
    /// Start configuring a run of this engine over `task`.
    ///
    /// The returned builder needs [`RunSession::platform`] and
    /// [`RunSession::oracle`] before [`RunSession::run`]; everything else
    /// has defaults (auto threads, default cache capacity, the engine's
    /// seed).
    pub fn session<'s>(&'s self, task: &'s MatchTask) -> RunSession<'s> {
        RunSession {
            engine: self,
            task,
            platform: None,
            oracle: None,
            gold: None,
            threads: Threads::auto(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            seed: None,
            checkpoint_dir: None,
            checkpoint_every: 1,
            checkpoint_keep: store::DEFAULT_KEEP_LAST,
            resume_from: None,
        }
    }
}

/// Builder for one engine run; see the [module docs](self).
pub struct RunSession<'s> {
    engine: &'s Engine,
    task: &'s MatchTask,
    platform: Option<&'s mut CrowdPlatform>,
    oracle: Option<&'s dyn TruthOracle>,
    gold: Option<&'s HashSet<PairKey>>,
    threads: Threads,
    cache_capacity: usize,
    seed: Option<u64>,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: usize,
    checkpoint_keep: usize,
    resume_from: Option<PathBuf>,
}

impl<'s> RunSession<'s> {
    /// The crowd platform to label pairs with (required).
    pub fn platform(mut self, platform: &'s mut CrowdPlatform) -> Self {
        self.platform = Some(platform);
        self
    }

    /// The truth oracle the simulated crowd consults (required).
    pub fn oracle(mut self, oracle: &'s dyn TruthOracle) -> Self {
        self.oracle = Some(oracle);
        self
    }

    /// Gold matches, used only to fill the `true_*` report fields for
    /// experiments. Omit in production.
    pub fn gold(mut self, gold: &'s HashSet<PairKey>) -> Self {
        self.gold = Some(gold);
        self
    }

    /// Worker-thread budget for every parallel loop in the run.
    /// Defaults to the machine's available parallelism; results are
    /// identical at every thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Threads::new(n);
        self
    }

    /// Entry capacity of the run's shared feature-vector cache.
    /// `0` disables the cache entirely.
    pub fn cache_capacity(mut self, entries: usize) -> Self {
        self.cache_capacity = entries;
        self
    }

    /// Override the engine's RNG seed for this run only.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Write crash-safe run snapshots into `dir` at iteration boundaries
    /// (created if missing). Snapshots are versioned, checksummed, written
    /// atomically, and pruned to the [`Self::checkpoint_keep`] newest.
    /// See [`RunSnapshot`](crate::snapshot::RunSnapshot) for what is
    /// captured.
    pub fn checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Snapshot every `n` completed iterations (default 1 — every
    /// boundary). The post-blocking snapshot 0 is always written. `0`
    /// writes only snapshot 0.
    pub fn checkpoint_every(mut self, n: usize) -> Self {
        self.checkpoint_every = n;
        self
    }

    /// Retain only the newest `k` snapshots (default
    /// [`store::DEFAULT_KEEP_LAST`]); `0` keeps everything.
    pub fn checkpoint_keep(mut self, k: usize) -> Self {
        self.checkpoint_keep = k;
        self
    }

    /// Continue a previous run from the snapshot at `path` instead of
    /// starting from scratch.
    ///
    /// The session's platform is overwritten with the snapshot's platform
    /// state, the engine RNG continues from its recorded stream position,
    /// the feature cache is warm-started from the snapshot (the
    /// [`Self::cache_capacity`] setting is ignored), and the run proceeds
    /// from the iteration after the snapshot. With the same engine
    /// configuration and task, the final report is byte-identical
    /// (`deterministic_json`) to the uninterrupted run's at any thread
    /// count. Raising the engine budget before resuming lets a
    /// `BudgetExhausted` run continue and converge.
    ///
    /// Failures — missing file, corrupted checksum, schema-version
    /// mismatch, or a snapshot from a different task — surface as
    /// [`CorleoneError::Store`].
    pub fn resume_from(mut self, path: impl Into<PathBuf>) -> Self {
        self.resume_from = Some(path.into());
        self
    }

    /// Execute the run, panicking on any failure.
    ///
    /// This is a thin wrapper over [`Self::try_run`] for callers that
    /// treat every run failure — a misconfigured session, an empty
    /// candidate set, a crowd that could not finish labeling — as a bug.
    /// Production callers should prefer `try_run`.
    ///
    /// # Panics
    /// Panics if [`RunSession::platform`] or [`RunSession::oracle`] was
    /// not provided, or if the run fails (see [`CorleoneError`]).
    pub fn run(self) -> RunReport {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Execute the run, surfacing failures as [`CorleoneError`] instead
    /// of panicking. Note that a run on a faulty platform that *finishes*
    /// with labels missing is not an `Err` — it returns `Ok` with
    /// [`RunReport::termination`](crate::engine::RunReport) set to
    /// [`Termination::Degraded`](crate::engine::Termination::Degraded).
    pub fn try_run(self) -> Result<RunReport, CorleoneError> {
        let platform = self.platform.ok_or(CorleoneError::MissingPlatform)?;
        let oracle = self.oracle.ok_or(CorleoneError::MissingOracle)?;
        // Fingerprint of the run configuration + feature schema +
        // platform: stamped into every snapshot this run writes, and
        // demanded of every snapshot it resumes — a resume under a
        // different engine config or task schema refuses with a typed
        // `StoreError::FingerprintMismatch` instead of silently
        // diverging from the interrupted run.
        let fingerprint = self.engine.run_fingerprint(self.task)?;
        let resume: Option<Box<RunSnapshot>> = match &self.resume_from {
            Some(path) => {
                Some(Box::new(store::read_snapshot_checked(path, Some(&fingerprint))?))
            }
            None => None,
        };
        // A resumed run continues the snapshot's cache (warm entries and
        // counters); a fresh run builds an empty one per the capacity knob.
        let cache = match &resume {
            Some(snap) => snap.cache.as_ref().map(FeatureCache::restore),
            None => (self.cache_capacity > 0)
                .then(|| FeatureCache::with_capacity(self.cache_capacity)),
        };
        let snapshotter = match &self.checkpoint_dir {
            Some(dir) => Some(
                Snapshotter::create(dir.clone())?
                    .keep_last(self.checkpoint_keep)
                    .with_fingerprint(fingerprint.clone()),
            ),
            None => None,
        };
        self.engine.try_run_inner(
            self.task,
            platform,
            oracle,
            self.gold,
            self.threads,
            cache.as_ref(),
            self.seed.unwrap_or(self.engine.seed),
            CheckpointPlan { snapshotter, every: self.checkpoint_every, resume },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorleoneConfig;
    use crate::task::task_from_parts;
    use crowd::{CrowdConfig, GoldOracle, WorkerPool};
    use similarity::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    fn toy() -> (MatchTask, GoldOracle) {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::Text(format!("session test row {i}"))])
            .collect();
        let a = Table::new("a", schema.clone(), rows.clone());
        let b = Table::new("b", schema, rows);
        let task = task_from_parts(a, b, "same?", [(0, 0), (1, 1)], [(0, 19), (2, 17)]);
        let gold = GoldOracle::from_pairs((0..20).map(|i| (i, i)));
        (task, gold)
    }

    #[test]
    #[should_panic(expected = "without a platform")]
    fn run_without_platform_panics() {
        let (task, _) = toy();
        let engine = Engine::new(CorleoneConfig::small());
        engine.session(&task).run();
    }

    #[test]
    #[should_panic(expected = "without an oracle")]
    fn run_without_oracle_panics() {
        let (task, _) = toy();
        let engine = Engine::new(CorleoneConfig::small());
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
        engine.session(&task).platform(&mut platform).run();
    }

    #[test]
    fn try_run_returns_typed_errors_for_missing_collaborators() {
        let (task, gold) = toy();
        let engine = Engine::new(CorleoneConfig::small());
        assert_eq!(
            engine.session(&task).try_run().unwrap_err(),
            CorleoneError::MissingPlatform
        );
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
        assert_eq!(
            engine.session(&task).platform(&mut platform).try_run().unwrap_err(),
            CorleoneError::MissingOracle
        );
        let _ = gold;
    }

    #[test]
    fn try_run_matches_run_on_success() {
        let (task, gold) = toy();
        let engine = Engine::new(CorleoneConfig::small()).with_seed(9);
        let mut p1 = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
        let via_try = engine
            .session(&task)
            .platform(&mut p1)
            .oracle(&gold)
            .try_run()
            .expect("clean run succeeds");
        let mut p2 = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
        let via_run = engine.session(&task).platform(&mut p2).oracle(&gold).run();
        assert_eq!(via_try.deterministic_json(), via_run.deterministic_json());
    }

    #[test]
    fn session_seed_overrides_engine_seed() {
        let (task, gold) = toy();
        let engine = Engine::new(CorleoneConfig::small()).with_seed(1);
        let run_with = |seed: Option<u64>| {
            let mut platform =
                CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
            let mut s = engine.session(&task).platform(&mut platform).oracle(&gold);
            if let Some(v) = seed {
                s = s.seed(v);
            }
            s.run()
        };
        let default_seed = run_with(None);
        let same_engine_seed = run_with(Some(1));
        assert_eq!(
            default_seed.deterministic_json(),
            same_engine_seed.deterministic_json()
        );
    }

    #[test]
    fn zero_cache_capacity_disables_cache() {
        let (task, gold) = toy();
        let engine = Engine::new(CorleoneConfig::small()).with_seed(2);
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
        let report = engine
            .session(&task)
            .platform(&mut platform)
            .oracle(&gold)
            .cache_capacity(0)
            .run();
        let c = report.perf.cache;
        assert_eq!((c.hits, c.misses, c.entries, c.capacity), (0, 0, 0, 0));
    }
}
