//! All of Corleone's knobs, with the paper's defaults (§4–§7, §9.4).

use crowd::Scheme;
use forest::ForestConfig;
use serde::{Deserialize, Serialize};

/// Blocker parameters (paper §4).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BlockerConfig {
    /// Blocking threshold `t_B`: blocking triggers when `|A × B|` exceeds
    /// this, and aims to reduce the candidate set to at most this many
    /// pairs. The paper sets 3 million (the feature vectors that fit the
    /// authors' machine); the default here is laptop-scale.
    pub t_b: u64,
    /// Number of candidate rules `k` sent to crowd evaluation (§4.2).
    pub k_rules: usize,
    /// Examples labeled per rule-evaluation round `b` (§4.2).
    pub eval_batch: usize,
    /// Minimum acceptable rule precision `P_min` (§4.2).
    pub p_min: f64,
    /// Maximum acceptable precision error margin `ε_max` (§4.2).
    pub eps_max: f64,
    /// Confidence level `δ` for precision intervals (§4.2).
    pub confidence: f64,
}

impl Default for BlockerConfig {
    fn default() -> Self {
        BlockerConfig {
            t_b: 200_000,
            k_rules: 20,
            eval_batch: 20,
            p_min: 0.95,
            eps_max: 0.05,
            confidence: 0.95,
        }
    }
}

/// Stopping-rule parameters for active learning (paper §5.3).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StoppingConfig {
    /// Smoothing window `w` over per-iteration confidence values.
    pub window: usize,
    /// Tolerance `ε` shared by the three patterns.
    pub eps: f64,
    /// Iterations of stability for the *converged confidence* pattern.
    pub n_converged: usize,
    /// Iterations at `≥ 1 − ε` for the *near-absolute confidence* pattern.
    pub n_high: usize,
    /// Window size of the *degrading confidence* pattern.
    pub n_degrade: usize,
    /// Never stop before this many AL iterations. Guards against the
    /// near-absolute pattern firing on an undertrained matcher when the
    /// monitoring set is dominated by trivially negative pairs (extreme
    /// EM skew makes `conf(V)` start high).
    pub min_iterations: usize,
}

impl Default for StoppingConfig {
    fn default() -> Self {
        StoppingConfig {
            window: 5,
            eps: 0.01,
            n_converged: 20,
            n_high: 3,
            n_degrade: 15,
            min_iterations: 10,
        }
    }
}

/// Active-learning matcher parameters (paper §5).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MatcherConfig {
    /// Examples labeled per iteration `q` (§5.2).
    pub batch_size: usize,
    /// Entropy pool size `p`: the batch is weight-sampled from the `p`
    /// highest-entropy candidates (§5.2).
    pub pool_size: usize,
    /// Fraction of the candidate set held out as the monitoring set `V`
    /// (§5.3).
    pub monitor_fraction: f64,
    /// Hard cap on active-learning iterations (safety net; the paper's
    /// stopping rules normally fire well before).
    pub max_iterations: usize,
    /// Stopping rules.
    pub stopping: StoppingConfig,
    /// Random-forest hyper-parameters.
    pub forest: ForestConfig,
    /// Absolute platform-ledger spend (in cents) at which the learning
    /// loop stops soliciting labels. Set by the engine when the user
    /// configured a monetary budget; `None` means unlimited.
    pub budget_cents_cap: Option<f64>,
}

impl Default for MatcherConfig {
    fn default() -> Self {
        MatcherConfig {
            batch_size: 20,
            pool_size: 100,
            monitor_fraction: 0.03,
            max_iterations: 120,
            stopping: StoppingConfig::default(),
            forest: ForestConfig::default(),
            budget_cents_cap: None,
        }
    }
}

/// Accuracy-estimator parameters (paper §6).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// Probe sample size `b` per round (§6.2, currently 50 in the paper).
    pub probe_batch: usize,
    /// Target error margin `ε_max` on both precision and recall.
    pub eps_max: f64,
    /// Confidence level `δ`.
    pub confidence: f64,
    /// Number of candidate reduction rules considered (top `k`).
    pub k_rules: usize,
    /// Hard cap on probe-eval-reduce rounds (safety net).
    pub max_rounds: usize,
    /// Hard cap on examples the estimator may label before giving up on
    /// reaching `eps_max` (keeps worst-case spend bounded).
    pub max_labels: usize,
    /// Absolute platform-ledger spend (in cents) at which the estimator
    /// stops. Set by the engine under a monetary budget; `None` means
    /// unlimited.
    pub budget_cents_cap: Option<f64>,
    /// Voting scheme for estimation labels. The paper's hybrid scheme is
    /// the default; exposed for the voting-scheme ablation.
    pub scheme: Scheme,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            probe_batch: 50,
            eps_max: 0.05,
            confidence: 0.95,
            k_rules: 20,
            max_rounds: 60,
            max_labels: 3000,
            budget_cents_cap: None,
            scheme: Scheme::Hybrid,
        }
    }
}

/// Difficult Pairs' Locator parameters (paper §7).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LocatorConfig {
    /// Top-`k` precise negative and positive rules to use.
    pub k_rules: usize,
    /// Stop iterating when the difficult set is smaller than this (§7:
    /// "less than 200 examples").
    pub min_difficult: usize,
    /// Stop iterating when no significant reduction happens (§7:
    /// `|C′| ≥ 0.9 · |C|`).
    pub max_keep_ratio: f64,
}

impl Default for LocatorConfig {
    fn default() -> Self {
        LocatorConfig { k_rules: 20, min_difficult: 200, max_keep_ratio: 0.9 }
    }
}

/// Engine-level parameters (paper §3).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Hard cap on matching iterations (the paper needs 1–2).
    pub max_iterations: usize,
    /// Optional crowd budget in cents; the engine stops starting new
    /// phases once spend reaches it ("run until a budget has been
    /// exhausted", §3).
    pub budget_cents: Option<f64>,
    /// Optional per-phase allocation of the budget (§10 future work);
    /// ignored without `budget_cents`. Unspent allocations roll over to
    /// later phases.
    pub budget_split: Option<crate::budget::BudgetSplit>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { max_iterations: 4, budget_cents: None, budget_split: None }
    }
}

/// The complete configuration.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct CorleoneConfig {
    /// Blocker (§4).
    pub blocker: BlockerConfig,
    /// Matcher (§5).
    pub matcher: MatcherConfig,
    /// Estimator (§6).
    pub estimator: EstimatorConfig,
    /// Locator (§7).
    pub locator: LocatorConfig,
    /// Engine (§3).
    pub engine: EngineConfig,
}

impl CorleoneConfig {
    /// A configuration scaled down for small tasks and tests: smaller
    /// blocking threshold, fewer AL iterations, looser margins.
    pub fn small() -> Self {
        CorleoneConfig {
            blocker: BlockerConfig { t_b: 5_000, ..Default::default() },
            matcher: MatcherConfig {
                max_iterations: 40,
                stopping: StoppingConfig {
                    n_converged: 10,
                    n_degrade: 8,
                    ..Default::default()
                },
                ..Default::default()
            },
            estimator: EstimatorConfig {
                eps_max: 0.1,
                max_rounds: 20,
                max_labels: 600,
                ..Default::default()
            },
            locator: LocatorConfig { min_difficult: 50, ..Default::default() },
            engine: EngineConfig::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CorleoneConfig::default();
        assert_eq!(c.blocker.k_rules, 20);
        assert_eq!(c.blocker.eval_batch, 20);
        assert_eq!(c.blocker.p_min, 0.95);
        assert_eq!(c.blocker.eps_max, 0.05);
        assert_eq!(c.matcher.batch_size, 20);
        assert_eq!(c.matcher.pool_size, 100);
        assert!((c.matcher.monitor_fraction - 0.03).abs() < 1e-12);
        assert_eq!(c.matcher.stopping.window, 5);
        assert_eq!(c.matcher.stopping.n_converged, 20);
        assert_eq!(c.matcher.stopping.n_high, 3);
        assert_eq!(c.matcher.stopping.n_degrade, 15);
        assert_eq!(c.estimator.probe_batch, 50);
        assert_eq!(c.locator.min_difficult, 200);
        assert_eq!(c.matcher.forest.n_trees, 10);
    }

    #[test]
    fn small_config_is_tighter() {
        let s = CorleoneConfig::small();
        assert!(s.blocker.t_b < CorleoneConfig::default().blocker.t_b);
        assert!(s.matcher.max_iterations <= 40);
    }
}
