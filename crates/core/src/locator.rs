//! The Difficult Pairs' Locator (paper §7).
//!
//! After an iteration, Corleone "zooms in" on the pairs the current
//! matcher has likely gotten wrong. The idea: extract the *precise*
//! positive and negative rules from the matcher's forest (validated with
//! the crowd to the same `P_min` standard as blocking rules) and remove
//! every pair they cover — those pairs are easy, because a precise rule
//! already decides them. Whatever remains is the difficult set `C′`,
//! which the next iteration trains a dedicated matcher on.

use crate::candidates::CandidateSet;
use crate::config::LocatorConfig;
use crate::env::RunEnv;
use crate::ruleeval::{evaluate_rules_jointly, select_top_rules, RuleEvalConfig};
use crowd::{CrowdPlatform, TruthOracle};
use forest::{negative_rules, positive_rules, RandomForest};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Locator result.
#[derive(Debug, Clone)]
pub struct LocatorOutcome {
    /// Indices (into the candidate set) of the difficult pairs, or `None`
    /// when iteration should stop (difficult set too small, or no
    /// significant reduction happened).
    pub difficult: Option<Vec<usize>>,
    /// Reporting data.
    pub report: LocatorReport,
}

/// What the Locator did.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocatorReport {
    /// Precise negative rules kept and applied.
    pub negative_rules_used: usize,
    /// Precise positive rules kept and applied.
    pub positive_rules_used: usize,
    /// Size of the difficult set `C′`.
    pub difficult_size: usize,
    /// Size of the input set `C`.
    pub input_size: usize,
    /// Why iteration stops, if it does.
    pub termination: Option<String>,
    /// Pairs labeled by the crowd during locating.
    pub pairs_labeled: u64,
    /// Crowd spend in cents.
    pub cost_cents: f64,
}

/// Run the Locator over the candidate indices `within` of `cand`.
///
/// `known_labels` are crowd labels from earlier phases, reused for rule
/// upper bounds and free cache hits.
#[allow(clippy::too_many_arguments)]
pub fn locate_difficult_pairs(
    cand: &CandidateSet,
    within: &[usize],
    matcher_forest: &RandomForest,
    known_labels: &HashMap<usize, bool>,
    platform: &mut CrowdPlatform,
    oracle: &dyn TruthOracle,
    cfg: &LocatorConfig,
    eval_cfg: &RuleEvalConfig,
    rng: &mut StdRng,
    env: &RunEnv<'_>,
) -> LocatorOutcome {
    let ledger_start = *platform.ledger();
    let known_pos: HashSet<usize> = known_labels
        .iter() // lint:allow(D2): order-free map-to-set projection used only for membership tests
        .filter_map(|(&i, &l)| l.then_some(i))
        .collect();
    let known_neg: HashSet<usize> = known_labels
        .iter() // lint:allow(D2): order-free map-to-set projection used only for membership tests
        .filter_map(|(&i, &l)| (!l).then_some(i))
        .collect();

    // 1. Top-k precise negative and positive rules (§7 step 1), each
    //    validated by the crowd like blocking rules.
    let mut label_pool: HashMap<usize, bool> = known_labels.clone();
    let neg_scored = select_top_rules(
        negative_rules(matcher_forest),
        cand,
        Some(within),
        &known_pos,
        cfg.k_rules,
        env.threads,
    );
    let pos_scored = select_top_rules(
        positive_rules(matcher_forest),
        cand,
        Some(within),
        &known_neg,
        cfg.k_rules,
        env.threads,
    );
    let neg_eval = evaluate_rules_jointly(
        neg_scored, cand, platform, oracle, eval_cfg, rng, &mut label_pool,
    );
    let pos_eval = evaluate_rules_jointly(
        pos_scored, cand, platform, oracle, eval_cfg, rng, &mut label_pool,
    );

    // 2. Remove everything covered by a kept rule (§7 step 2).
    let mut covered: HashSet<usize> = HashSet::new();
    let mut n_neg_used = 0usize;
    let mut n_pos_used = 0usize;
    for er in neg_eval.iter().filter(|e| e.kept) {
        n_neg_used += 1;
        covered.extend(er.coverage.iter().copied());
    }
    for er in pos_eval.iter().filter(|e| e.kept) {
        n_pos_used += 1;
        covered.extend(er.coverage.iter().copied());
    }
    let difficult: Vec<usize> = within
        .iter()
        .copied()
        .filter(|i| !covered.contains(i))
        .collect();

    // 3. Termination tests (§7 step 3).
    let termination = if difficult.len() < cfg.min_difficult {
        Some(format!(
            "difficult set too small ({} < {})",
            difficult.len(),
            cfg.min_difficult
        ))
    } else if (difficult.len() as f64) >= cfg.max_keep_ratio * within.len() as f64 {
        Some(format!(
            "no significant reduction ({} of {})",
            difficult.len(),
            within.len()
        ))
    } else {
        None
    };

    let ledger_end = *platform.ledger();
    let report = LocatorReport {
        negative_rules_used: n_neg_used,
        positive_rules_used: n_pos_used,
        difficult_size: difficult.len(),
        input_size: within.len(),
        termination: termination.clone(),
        pairs_labeled: ledger_end.pairs_labeled - ledger_start.pairs_labeled,
        cost_cents: ledger_end.total_cents - ledger_start.total_cents,
    };
    LocatorOutcome {
        difficult: if termination.is_none() { Some(difficult) } else { None },
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatcherConfig;
    use crate::learner::run_active_learning;
    use crate::task::task_from_parts;
    use crowd::{CrowdConfig, GoldOracle, WorkerPool};
    use rand::SeedableRng;
    use similarity::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    fn setup() -> (CandidateSet, RandomForest, HashMap<usize, bool>, GoldOracle, CrowdPlatform)
    {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let a_rows: Vec<Vec<Value>> = (0..30)
            .map(|i| vec![Value::Text(format!("thing variant {i}"))])
            .collect();
        let b_rows: Vec<Vec<Value>> = (0..30)
            .map(|i| vec![Value::Text(format!("thing variant {i}"))])
            .collect();
        let a = Table::new("a", schema.clone(), a_rows);
        let b = Table::new("b", schema, b_rows);
        let task = task_from_parts(a, b, "same?", [(0, 0), (1, 1)], [(0, 29), (2, 27)]);
        let gold = GoldOracle::from_pairs((0..30).map(|i| (i, i)));
        let cand = CandidateSet::full_cartesian(&task);
        let seeds: Vec<(Vec<f64>, bool)> = task
            .seeds
            .iter()
            .map(|&(k, l)| (task.vectorize(k), l))
            .collect();
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let mut rng = StdRng::seed_from_u64(31);
        let mcfg = MatcherConfig {
            max_iterations: 20,
            stopping: crate::config::StoppingConfig {
                n_converged: 8,
                n_degrade: 6,
                ..Default::default()
            },
            ..Default::default()
        };
        let learn = run_active_learning(
            &cand,
            &seeds,
            &mut platform,
            &gold,
            &mcfg,
            &mut rng,
            exec::Threads::new(2),
        );
        let known: HashMap<usize, bool> = learn.crowd_labels().collect();
        (cand, learn.forest, known, gold, platform)
    }

    #[test]
    fn well_learned_task_terminates_iteration() {
        // On an easy task the forest's precise rules cover nearly
        // everything, so the difficult set falls under min_difficult.
        let (cand, forest, known, gold, mut platform) = setup();
        let within: Vec<usize> = (0..cand.len()).collect();
        let mut rng = StdRng::seed_from_u64(9);
        let out = locate_difficult_pairs(
            &cand,
            &within,
            &forest,
            &known,
            &mut platform,
            &gold,
            &LocatorConfig { min_difficult: 50, ..Default::default() },
            &RuleEvalConfig::default(),
            &mut rng,
            &RunEnv::default(),
        );
        assert!(
            out.report.negative_rules_used + out.report.positive_rules_used > 0,
            "some precise rules must survive"
        );
        assert!(
            out.report.difficult_size < out.report.input_size,
            "rules must cover something"
        );
    }

    #[test]
    fn strict_threshold_forces_termination_reason() {
        let (cand, forest, known, gold, mut platform) = setup();
        let within: Vec<usize> = (0..cand.len()).collect();
        let mut rng = StdRng::seed_from_u64(10);
        // min_difficult larger than the input forces the "too small" exit
        // whenever any reduction happens, or "no significant reduction".
        let out = locate_difficult_pairs(
            &cand,
            &within,
            &forest,
            &known,
            &mut platform,
            &gold,
            &LocatorConfig { min_difficult: cand.len() + 1, ..Default::default() },
            &RuleEvalConfig::default(),
            &mut rng,
            &RunEnv::default(),
        );
        assert!(out.difficult.is_none());
        assert!(out.report.termination.is_some());
    }

    #[test]
    fn difficult_indices_subset_of_within() {
        let (cand, forest, known, gold, mut platform) = setup();
        let within: Vec<usize> = (0..cand.len() / 2).collect();
        let mut rng = StdRng::seed_from_u64(11);
        let out = locate_difficult_pairs(
            &cand,
            &within,
            &forest,
            &known,
            &mut platform,
            &gold,
            &LocatorConfig { min_difficult: 1, max_keep_ratio: 1.1, ..Default::default() },
            &RuleEvalConfig::default(),
            &mut rng,
            &RunEnv::default(),
        );
        if let Some(d) = out.difficult {
            let within_set: HashSet<usize> = within.iter().copied().collect();
            assert!(d.iter().all(|i| within_set.contains(i)));
        }
    }
}
