//! The Blocker (paper §4): crowdsourced generation, evaluation, and
//! application of blocking rules.
//!
//! Pipeline: decide whether `|A × B|` exceeds `t_B` → sample `S` (random
//! `t_B/|A|` B-tuples × all of A, plus the four seeds) → crowdsourced
//! active learning on `S` → extract negative rules from the learned forest
//! → select the top `k` by precision upper bound → evaluate them jointly
//! with the crowd → greedily pick a subset to execute (by precision,
//! coverage, and feature cost) → apply the subset to the full Cartesian
//! product in parallel, computing only the features each rule mentions.

use crate::candidates::CandidateSet;
use crate::config::{BlockerConfig, MatcherConfig};
use crate::env::RunEnv;
use crate::learner::{run_active_learning, LearnOutcome};
use crate::ruleeval::{
    coverage_of, evaluate_rules_jointly, select_top_rules, EvaluatedRule, RuleEvalConfig,
};
use crate::source::{plan_blocking_source, CandidateSource, CartesianScan};
use crate::task::MatchTask;
use crowd::{CrowdPlatform, PairKey, TruthOracle};
use exec::Threads;
use forest::{negative_rules, Rule};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// What the Blocker did, for reporting (paper Table 3).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct BlockerReport {
    /// Whether blocking was triggered (`|A × B| > t_B`).
    pub triggered: bool,
    /// `|A × B|`.
    pub cartesian: u64,
    /// Size of the sample `S` (0 when not triggered).
    pub sample_size: usize,
    /// Active-learning iterations on `S`.
    pub al_iterations: usize,
    /// Negative rules extracted from the learned forest.
    pub rules_extracted: usize,
    /// Rules sent to crowd evaluation (top `k`).
    pub rules_evaluated: usize,
    /// Rules that passed evaluation.
    pub rules_kept: usize,
    /// Rules actually executed against `A × B`, rendered with feature
    /// names, with their estimated precisions.
    pub rules_applied: Vec<(String, f64)>,
    /// Size of the umbrella set (pairs surviving blocking).
    pub umbrella_size: usize,
    /// Pairs labeled by the crowd during blocking.
    pub pairs_labeled: u64,
    /// Crowd spend during blocking, in cents.
    pub cost_cents: f64,
    /// How the umbrella set was generated (the planner's
    /// [`CandidateSource`] choice): `"cartesian_scan"` or
    /// `"indexed_join[...]"` with the probe list.
    pub source: String,
}

/// Outcome: the candidate set `C` passed to the Matcher, plus the report.
pub struct BlockerOutcome {
    /// The umbrella set with materialized feature vectors.
    pub candidates: CandidateSet,
    /// Reporting data.
    pub report: BlockerReport,
    /// The rule objects that were executed (for audits; empty when
    /// blocking was not triggered).
    pub applied_rules: Vec<Rule>,
}

/// Run the Blocker. `env` carries the run's thread budget and shared
/// feature cache (use `RunEnv::default()` for a standalone call).
pub fn run_blocker(
    task: &MatchTask,
    platform: &mut CrowdPlatform,
    oracle: &dyn TruthOracle,
    cfg: &BlockerConfig,
    matcher_cfg: &MatcherConfig,
    rng: &mut StdRng,
    env: &RunEnv<'_>,
) -> BlockerOutcome {
    let cartesian = task.cartesian_size();
    let ledger_start = *platform.ledger();

    // 1. Decide whether to block (§4.1 step 1). No rules to apply, so
    //    the scan source streams every pair.
    if cartesian <= cfg.t_b {
        let source = CartesianScan::new(task, Vec::new());
        let candidates = CandidateSet::from_source(task, &source, env.threads, env.cache);
        let umbrella_size = candidates.len();
        return BlockerOutcome {
            candidates,
            applied_rules: Vec::new(),
            report: BlockerReport {
                triggered: false,
                cartesian,
                sample_size: 0,
                al_iterations: 0,
                rules_extracted: 0,
                rules_evaluated: 0,
                rules_kept: 0,
                rules_applied: Vec::new(),
                umbrella_size,
                pairs_labeled: 0,
                cost_cents: 0.0,
                source: source.describe(),
            },
        };
    }

    // 2. Sample S: t_B/|A| random B-tuples × all of A, plus seeds (§4.1
    //    step 2). A is the smaller table by convention.
    let n_a = task.table_a.len();
    let n_b_sample = usize::try_from(cfg.t_b.div_ceil(n_a as u64))
        .unwrap_or(usize::MAX)
        .min(task.table_b.len());
    let mut b_ids: Vec<u32> = (0..task.table_b.len() as u32).collect();
    b_ids.shuffle(rng);
    b_ids.truncate(n_b_sample);
    let mut sample_pairs: Vec<PairKey> = Vec::with_capacity(n_a * n_b_sample + 4);
    for a in 0..n_a as u32 {
        for &b in &b_ids {
            sample_pairs.push(PairKey::new(a, b));
        }
    }
    for &(seed, _) in &task.seeds {
        if !sample_pairs.contains(&seed) {
            sample_pairs.push(seed);
        }
    }
    let sample = CandidateSet::build_with(task, sample_pairs, env.threads, env.cache);

    // 3. Crowdsourced active learning on S (§4.1 step 3).
    let seed_vectors: Vec<(Vec<f64>, bool)> = task
        .seeds
        .iter()
        .map(|&(k, l)| (env.vectorize(task, k), l))
        .collect();
    let learn: LearnOutcome = run_active_learning(
        &sample,
        &seed_vectors,
        platform,
        oracle,
        matcher_cfg,
        rng,
        env.threads,
    );

    // 4. Extract candidate blocking rules (§4.1 step 4) and select top k
    //    by the precision upper bound (§4.2 step 1), with T = examples the
    //    crowd labeled positive during active learning.
    let candidates_rules = negative_rules(&learn.forest);
    let rules_extracted = candidates_rules.len();
    let known_pos: HashSet<usize> = learn.crowd_positives.iter().copied().collect();
    let scored = select_top_rules(
        candidates_rules,
        &sample,
        None,
        &known_pos,
        cfg.k_rules,
        env.threads,
    );
    let rules_evaluated = scored.len();

    // 5. Crowd evaluation (§4.2 step 2), seeded with the labels gathered
    //    during active learning so they are reused for free.
    let mut label_pool: HashMap<usize, bool> = learn.crowd_labels().collect();
    let eval_cfg = RuleEvalConfig {
        batch: cfg.eval_batch,
        p_min: cfg.p_min,
        eps_max: cfg.eps_max,
        confidence: cfg.confidence,
        ..Default::default()
    };
    let evaluated = evaluate_rules_jointly(
        scored,
        &sample,
        platform,
        oracle,
        &eval_cfg,
        rng,
        &mut label_pool,
    );
    let mut kept: Vec<EvaluatedRule> = evaluated.iter().filter(|e| e.kept).cloned().collect();
    let rules_kept = kept.len();
    if kept.is_empty() {
        // Fallback: without any passing rule blocking would be impossible
        // and the Cartesian product may not fit in memory; execute the
        // single most precise evaluated rule instead.
        if let Some(best) = evaluated
            .iter()
            .max_by(|a, b| a.est_precision.total_cmp(&b.est_precision))
        {
            kept.push(best.clone());
        }
    }

    // 6. Greedy rule-subset selection on S (§4.3): repeatedly pick the
    //    best remaining rule by precision × coverage / cost, apply it to
    //    shrink S, and re-rank, until S is reduced proportionally to t_B.
    //
    //    One guard on top of the paper's ranking: under extreme skew the
    //    sampled precision of a rule covering *everything* (matches
    //    included) is still ≥ 99.9%, so precision alone cannot veto
    //    match-destroying rules. We do know something stronger: the pairs
    //    the crowd already labeled positive. A rule covering a witnessed
    //    positive provably blocks a real match, so such rules are only
    //    applied when no clean rule remains.
    let known_pos_set: HashSet<usize> = label_pool
        .iter() // lint:allow(D2): order-free map-to-set projection used only for membership tests
        .filter_map(|(&i, &l)| l.then_some(i))
        .collect();
    let costs = task.feature_costs();
    let target = sample.len() as f64 * (cfg.t_b as f64 / cartesian as f64);
    let mut current: Vec<usize> = (0..sample.len()).collect();
    let mut remaining = kept;
    let mut applied: Vec<EvaluatedRule> = Vec::new();
    while current.len() as f64 > target && !remaining.is_empty() {
        // Score every remaining rule on the current residue of S; each
        // rule's coverage scan is independent, so fan out across rules.
        let scored: Vec<(usize, f64, Vec<usize>)> =
            exec::indexed_par_map(env.threads, remaining.len(), |i| {
                let er = &remaining[i];
                let cov = coverage_of(&er.rule, &sample, Some(&current));
                if cov.is_empty() {
                    return None;
                }
                let cov_frac = cov.len() as f64 / current.len() as f64;
                let cost = er.rule.eval_cost(&costs);
                let score = er.est_precision * cov_frac / (1.0 + cost / 10.0);
                Some((i, score, cov))
            })
            .into_iter()
            .flatten()
            .collect();
        if scored.is_empty() {
            break;
        }
        // §4.3's greedy: take the best-ranked rule outright, re-estimate
        // on the residue, repeat until the sample is reduced to the
        // target. Each blocking rule has large coverage, so this selects
        // the 1–3 rules the paper reports rather than piling up many
        // small rules whose recall losses would compound. Rules covering
        // a crowd-witnessed positive are only used as a last resort.
        let pick_best = |rs: &[&(usize, f64, Vec<usize>)]| {
            rs.iter()
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .map(|r| (*r).clone())
        };
        let clean: Vec<&(usize, f64, Vec<usize>)> = scored
            .iter()
            .filter(|(_, _, cov)| !cov.iter().any(|i| known_pos_set.contains(i)))
            .collect();
        let all: Vec<&(usize, f64, Vec<usize>)> = scored.iter().collect();
        let (i, _, cov) = pick_best(&clean)
            .or_else(|| pick_best(&all))
            .expect("non-empty");
        let covered: HashSet<usize> = cov.into_iter().collect();
        current.retain(|idx| !covered.contains(idx));
        applied.push(remaining.swap_remove(i));
    }

    // 7. Apply the selected rules to A × B in parallel (§4.3). A pair is
    //    blocked as soon as any selected rule fires; features are computed
    //    lazily and memoized per pair.
    let rules: Vec<Rule> = applied.iter().map(|e| e.rule.clone()).collect();
    if std::env::var("CORLEONE_DEBUG_BLOCKER").is_ok() {
        eprintln!(
            "[blocker] |S|={} target={:.0} |S'|={} rules_applied={} kept={}",
            sample.len(), target, current.len(), applied.len(), rules_kept
        );
        let names = task.feature_names();
        for er in &applied {
            eprintln!("[blocker]   prec={:.3} cov_on_S={} rule={}",
                er.est_precision, er.coverage.len(), er.rule.display_with(&names));
        }
    }
    let source = plan_blocking_source(task, &rules);
    let candidates = CandidateSet::from_source(task, &source, env.threads, env.cache);
    let umbrella_size = candidates.len();

    let names = task.feature_names();
    let ledger_end = *platform.ledger();
    BlockerOutcome {
        candidates,
        applied_rules: rules,
        report: BlockerReport {
            triggered: true,
            cartesian,
            sample_size: sample.len(),
            al_iterations: learn.iterations,
            rules_extracted,
            rules_evaluated,
            rules_kept,
            rules_applied: applied
                .iter()
                .map(|e| (e.rule.display_with(&names), e.est_precision))
                .collect(),
            umbrella_size,
            pairs_labeled: ledger_end.pairs_labeled - ledger_start.pairs_labeled,
            cost_cents: ledger_end.total_cents - ledger_start.total_cents,
            source: source.describe(),
        },
    }
}

/// Apply blocking rules over the full Cartesian product on the machine's
/// available parallelism.
#[deprecated(
    since = "0.6.0",
    note = "use `CartesianScan::new(task, rules.to_vec()).generate(Threads::auto())` or let \
            `plan_blocking_source` pick the indexed path (see `corleone::source`)"
)]
pub fn apply_rules_parallel(task: &MatchTask, rules: &[Rule]) -> Vec<PairKey> {
    CartesianScan::new(task, rules.to_vec()).generate(Threads::auto())
}

/// Apply blocking rules over the full Cartesian product with an explicit
/// thread budget. Returns the surviving pairs, in row-major order.
#[deprecated(
    since = "0.6.0",
    note = "use `CartesianScan::new(task, rules.to_vec()).generate(threads)` or let \
            `plan_blocking_source` pick the indexed path (see `corleone::source`)"
)]
pub fn apply_rules_with(task: &MatchTask, rules: &[Rule], threads: Threads) -> Vec<PairKey> {
    CartesianScan::new(task, rules.to_vec()).generate(threads)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StoppingConfig;
    use crate::task::task_from_parts;
    use crowd::{CrowdConfig, GoldOracle, WorkerPool};
    use forest::{Op, Predicate};
    use rand::SeedableRng;
    use similarity::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    fn toy_task(n: usize) -> (MatchTask, GoldOracle) {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let a_rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Text(format!("product item {i}"))])
            .collect();
        let b_rows: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Text(format!("product item {i}"))])
            .collect();
        let a = Table::new("a", schema.clone(), a_rows);
        let b = Table::new("b", schema, b_rows);
        let task = task_from_parts(
            a,
            b,
            "same?",
            [(0, 0), (1, 1)],
            [(0, (n - 1) as u32), (2, (n - 3) as u32)],
        );
        let gold = GoldOracle::from_pairs((0..n as u32).map(|i| (i, i)));
        (task, gold)
    }

    fn small_matcher_cfg() -> MatcherConfig {
        MatcherConfig {
            max_iterations: 25,
            stopping: StoppingConfig { n_converged: 8, n_degrade: 6, ..Default::default() },
            ..Default::default()
        }
    }

    #[test]
    fn small_cartesian_skips_blocking() {
        let (task, gold) = toy_task(10);
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = BlockerConfig { t_b: 1000, ..Default::default() };
        let out = run_blocker(
            &task,
            &mut platform,
            &gold,
            &cfg,
            &small_matcher_cfg(),
            &mut rng,
            &RunEnv::default(),
        );
        assert!(!out.report.triggered);
        assert_eq!(out.candidates.len(), 100);
        assert_eq!(out.report.cost_cents, 0.0);
    }

    #[test]
    fn large_cartesian_triggers_blocking_and_keeps_matches() {
        let (task, gold) = toy_task(40); // cartesian 1600
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let cfg = BlockerConfig { t_b: 400, ..Default::default() };
        let out = run_blocker(
            &task,
            &mut platform,
            &gold,
            &cfg,
            &small_matcher_cfg(),
            &mut rng,
            &RunEnv::default(),
        );
        assert!(out.report.triggered);
        assert!(out.report.sample_size >= 400);
        assert!(out.report.rules_extracted > 0);
        assert!(
            out.candidates.len() < 1600,
            "blocking must reduce the Cartesian product"
        );
        // Recall of the umbrella set should be high: the diagonal pairs
        // are trivially similar.
        let umbrella: HashSet<PairKey> = out.candidates.pairs().iter().copied().collect();
        let kept_gold = gold
            .matches()
            .iter()
            .filter(|p| umbrella.contains(p))
            .count();
        assert!(
            kept_gold as f64 / gold.n_matches() as f64 > 0.85,
            "blocking recall too low: {kept_gold}/40"
        );
        assert!(out.report.cost_cents > 0.0);
        assert!(out.report.pairs_labeled > 0);
    }

    #[test]
    fn scan_source_no_rules_returns_all() {
        let (task, _) = toy_task(6);
        let all = CartesianScan::new(&task, Vec::new()).generate(Threads::auto());
        assert_eq!(all.len(), 36);
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_delegate_to_scan_source() {
        let (task, _) = toy_task(5);
        let via_wrapper = apply_rules_with(&task, &[], Threads::new(2));
        let via_source = CartesianScan::new(&task, Vec::new()).generate(Threads::new(2));
        assert_eq!(via_wrapper, via_source);
        assert_eq!(apply_rules_parallel(&task, &[]), via_source);
    }

    #[test]
    fn scan_source_matches_sequential_semantics() {
        let (task, _) = toy_task(8);
        let f = task
            .feature_names()
            .iter()
            .position(|n| n == "name_exact")
            .unwrap();
        let rule = Rule {
            predicates: vec![Predicate {
                feature: f,
                op: Op::Le,
                threshold: 0.5,
                nan_satisfies: true,
            }],
            label: false,
            tree: 0,
            n_pos: 0,
            n_neg: 0,
        };
        let survivors =
            CartesianScan::new(&task, vec![rule.clone()]).generate(Threads::auto());
        // Sequential reference.
        let mut expected = Vec::new();
        for a in 0..8u32 {
            for b in 0..8u32 {
                let pair = PairKey::new(a, b);
                let x = task.vectorize(pair);
                if !rule.matches(&x) {
                    expected.push(pair);
                }
            }
        }
        let mut got = survivors.clone();
        got.sort();
        expected.sort();
        assert_eq!(got, expected);
        assert_eq!(got.len(), 8, "only the diagonal survives an exact-match block");
    }
}
