//! Hands-off crowdsourced joins — the paper's §10 RDBMS extension.
//!
//! > "Consider for example crowdsourced joins, which lie at the heart of
//! > recently proposed crowdsourced RDBMSs. Many such joins in essence do
//! > EM. In such cases our solution can potentially be adapted to run as
//! > hands-off crowdsourced joins."
//!
//! [`hands_off_join`] is that adaptation: an equi-join-by-entity operator
//! `A ⋈crowd B` that returns materialized joined rows instead of pair
//! ids, so a crowdsourced query processor can drop it in as a join
//! implementation with no developer writing match logic.

use crate::engine::{Engine, RunReport};
use crate::task::MatchTask;
use crowd::{CrowdPlatform, TruthOracle};
use similarity::Record;

/// One joined output row.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinedRow {
    /// The row from table A.
    pub left: Record,
    /// The matching row from table B.
    pub right: Record,
}

/// The join result: rows plus the full provenance report (cost, estimated
/// accuracy of the join predicate, per-iteration details).
#[derive(Debug, Clone)]
pub struct JoinResult {
    /// Joined rows, ordered by `(left.id, right.id)`.
    pub rows: Vec<JoinedRow>,
    /// The underlying Corleone run report.
    pub report: RunReport,
}

impl JoinResult {
    /// Estimated precision of the join predicate (fraction of emitted
    /// rows that truly join), when the engine produced an estimate.
    pub fn estimated_precision(&self) -> Option<f64> {
        self.report.final_estimate.as_ref().map(|e| e.precision)
    }

    /// Estimated recall (fraction of truly joining rows emitted).
    pub fn estimated_recall(&self) -> Option<f64> {
        self.report.final_estimate.as_ref().map(|e| e.recall)
    }
}

/// Execute a hands-off crowdsourced join of the task's two tables.
pub fn hands_off_join(
    engine: &Engine,
    task: &MatchTask,
    platform: &mut CrowdPlatform,
    oracle: &dyn TruthOracle,
) -> JoinResult {
    let report = engine.session(task).platform(platform).oracle(oracle).run();
    let rows = report
        .predicted_matches
        .iter()
        .map(|p| JoinedRow {
            left: task.table_a.record(p.a).clone(),
            right: task.table_b.record(p.b).clone(),
        })
        .collect();
    JoinResult { rows, report }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorleoneConfig;
    use crate::task::task_from_parts;
    use crowd::{CrowdConfig, GoldOracle, WorkerPool};
    use similarity::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    #[test]
    fn join_emits_matching_rows_with_provenance() {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|i| vec![Value::Text(format!("customer record {i}"))])
            .collect();
        let a = Table::new("crm", schema.clone(), rows.clone());
        let b = Table::new("billing", schema, rows);
        let task = task_from_parts(a, b, "same customer", [(0, 0), (1, 1)], [(0, 19), (2, 17)]);
        let gold = GoldOracle::from_pairs((0..20).map(|i| (i, i)));
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let engine = Engine::new(CorleoneConfig::small()).with_seed(2);

        let result = hands_off_join(&engine, &task, &mut platform, &gold);
        assert!(!result.rows.is_empty());
        // Joined rows carry the actual record contents, not just ids.
        let first = &result.rows[0];
        assert_eq!(first.left.value(0), first.right.value(0));
        assert!(result.estimated_precision().is_some());
        assert!(result.estimated_recall().is_some());
        // Mostly the diagonal.
        let diagonal = result
            .rows
            .iter()
            .filter(|r| r.left.id == r.right.id)
            .count();
        assert!(diagonal as f64 / result.rows.len() as f64 > 0.9);
    }
}
