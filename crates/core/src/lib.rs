//! # corleone — hands-off crowdsourced entity matching
//!
//! A from-scratch Rust implementation of **Corleone** (Gokhale et al.,
//! SIGMOD 2014): the first *hands-off crowdsourcing* (HOC) system for
//! entity matching. Given two tables, a one-paragraph matching
//! instruction, and four seed examples, Corleone executes the entire EM
//! workflow with a paid, noisy crowd and **no developer in the loop**:
//!
//! * [`blocker`] (§4) — learns machine-readable blocking rules from the
//!   crowd by extracting negative rules from a random forest trained with
//!   crowdsourced active learning on a sample of `A × B`, evaluates their
//!   precision with the crowd, and applies the best subset in parallel.
//! * [`learner`] (§5) — the crowdsourced active-learning matcher, with the
//!   vote-entropy batch selection and the three confidence-based stopping
//!   patterns of [`stopping`].
//! * [`estimator`] (§6) — estimates precision/recall to a target margin
//!   with a probe–eval–reduce loop that uses crowd-validated *reduction
//!   rules* to densify the skewed positive class.
//! * [`locator`] (§7) — finds difficult-to-match pairs by removing
//!   everything covered by crowd-validated precise positive/negative
//!   rules, so the next iteration can train a dedicated matcher.
//! * [`engine`] (§3) — orchestrates iterations until the estimated
//!   accuracy stops improving, routing each pair to the matcher trained
//!   on its region.
//!
//! ## Quick start
//!
//! ```no_run
//! use corleone::{Engine, CorleoneConfig, MatchTask};
//! use crowd::{CrowdConfig, CrowdPlatform, GoldOracle, WorkerPool};
//!
//! # fn get_task() -> (MatchTask, GoldOracle) { unimplemented!() }
//! let (task, oracle) = get_task(); // tables + instruction + 4 seeds
//! let workers = WorkerPool::uniform(50, 0.05);       // simulated crowd
//! let mut platform = CrowdPlatform::new(workers, CrowdConfig::default());
//! let report = Engine::new(CorleoneConfig::default())
//!     .run(&task, &mut platform, &oracle, None);
//! println!("estimated F1: {:?}", report.final_estimate);
//! ```

pub mod blocker;
pub mod budget;
pub mod candidates;
pub mod cleaner;
pub mod config;
pub mod engine;
pub mod estimator;
pub mod join;
pub mod learner;
pub mod locator;
pub mod metrics;
pub mod report;
pub mod ruleeval;
pub mod stopping;
pub mod task;

pub use blocker::{run_blocker, BlockerOutcome, BlockerReport};
pub use budget::{BudgetPlan, BudgetSplit};
pub use cleaner::{clean_forest, CleanedForest, CleanerConfig, CleaningReport};
pub use candidates::CandidateSet;
pub use config::{
    BlockerConfig, CorleoneConfig, EngineConfig, EstimatorConfig, LocatorConfig, MatcherConfig,
    StoppingConfig,
};
pub use engine::{Engine, IterationReport, RunReport};
pub use estimator::{estimate_accuracy, AccuracyEstimate};
pub use join::{hands_off_join, JoinResult, JoinedRow};
pub use learner::{run_active_learning, LearnOutcome, StopReason};
pub use locator::{locate_difficult_pairs, LocatorOutcome};
pub use metrics::{evaluate, Prf};
pub use task::MatchTask;
