#![forbid(unsafe_code)]
//! # corleone — hands-off crowdsourced entity matching
//!
//! A from-scratch Rust implementation of **Corleone** (Gokhale et al.,
//! SIGMOD 2014): the first *hands-off crowdsourcing* (HOC) system for
//! entity matching. Given two tables, a one-paragraph matching
//! instruction, and four seed examples, Corleone executes the entire EM
//! workflow with a paid, noisy crowd and **no developer in the loop**:
//!
//! * [`blocker`] (§4) — learns machine-readable blocking rules from the
//!   crowd by extracting negative rules from a random forest trained with
//!   crowdsourced active learning on a sample of `A × B`, evaluates their
//!   precision with the crowd, and applies the best subset in parallel.
//! * [`learner`] (§5) — the crowdsourced active-learning matcher, with the
//!   vote-entropy batch selection and the three confidence-based stopping
//!   patterns of [`stopping`].
//! * [`estimator`] (§6) — estimates precision/recall to a target margin
//!   with a probe–eval–reduce loop that uses crowd-validated *reduction
//!   rules* to densify the skewed positive class.
//! * [`locator`] (§7) — finds difficult-to-match pairs by removing
//!   everything covered by crowd-validated precise positive/negative
//!   rules, so the next iteration can train a dedicated matcher.
//! * [`engine`] (§3) — orchestrates iterations until the estimated
//!   accuracy stops improving, routing each pair to the matcher trained
//!   on its region.
//!
//! Every hot loop — vectorization, rule application over `A × B`, forest
//! training and prediction, entropy scans — runs on the shared [`exec`]
//! work-stealing core, and each run owns a sharded
//! [`FeatureCache`](cache::FeatureCache) so no pair is vectorized twice.
//!
//! ## Quick start
//!
//! ```no_run
//! use corleone::prelude::*;
//!
//! # fn get_task() -> (MatchTask, GoldOracle) { unimplemented!() }
//! let (task, oracle) = get_task(); // tables + instruction + 4 seeds
//! let workers = WorkerPool::uniform(50, 0.05);       // simulated crowd
//! let mut platform = CrowdPlatform::new(workers, CrowdConfig::default());
//! let report = Engine::new(CorleoneConfig::default())
//!     .session(&task)
//!     .platform(&mut platform)
//!     .oracle(&oracle)
//!     .threads(8)
//!     .run();
//! println!("estimated F1: {:?}", report.final_estimate);
//! println!("cache hit rate: {:.1}%", report.perf.cache.hit_rate() * 100.0);
//! ```
//!
//! ## Naming convention
//!
//! Phase results come in two shapes, named consistently:
//!
//! * `*Outcome` — in-memory result of a phase, carrying live objects the
//!   next phase consumes (candidate sets, forests, index lists). Not
//!   serializable. [`BlockerOutcome`], [`LearnOutcome`],
//!   [`LocatorOutcome`].
//! * `*Report` — the serializable record of what a phase did, embedded in
//!   the run's [`RunReport`]. [`BlockerReport`], [`LocatorReport`],
//!   [`IterationReport`], [`PerfReport`].

pub mod blocker;
pub mod budget;
pub mod cache;
pub mod candidates;
pub mod cleaner;
pub mod config;
pub mod engine;
pub mod env;
pub mod error;
pub mod estimator;
pub mod join;
pub mod learner;
pub mod locator;
pub mod metrics;
pub mod report;
pub mod ruleeval;
pub mod session;
pub mod snapshot;
pub mod source;
pub mod stopping;
pub mod task;

pub use blocker::{run_blocker, BlockerOutcome, BlockerReport};
pub use budget::{BudgetPlan, BudgetSplit};
pub use cache::{CacheStats, FeatureCache};
pub use cleaner::{clean_forest, CleanedForest, CleanerConfig, CleaningReport};
pub use candidates::CandidateSet;
pub use config::{
    BlockerConfig, CorleoneConfig, EngineConfig, EstimatorConfig, LocatorConfig, MatcherConfig,
    StoppingConfig,
};
pub use engine::{
    CheckpointPlan, Engine, IterationReport, PerfReport, PhaseTiming, RunReport, RunState,
    StepOutcome, Termination,
};
pub use env::{RunEnv, Threads};
pub use error::CorleoneError;
pub use estimator::{estimate_accuracy, AccuracyEstimate};
pub use join::{hands_off_join, JoinResult, JoinedRow};
pub use learner::{run_active_learning, LearnOutcome, StopReason};
pub use locator::{locate_difficult_pairs, LocatorOutcome, LocatorReport};
pub use metrics::{evaluate, Prf};
pub use session::RunSession;
pub use snapshot::RunSnapshot;
pub use source::{
    plan_blocking_source, CandidateSource, CartesianScan, IndexedJoin, PlannedSource,
};
pub use task::MatchTask;

/// Everything needed to configure and launch a hands-off matching run.
///
/// ```
/// use corleone::prelude::*;
/// ```
pub mod prelude {
    pub use crate::cache::{CacheStats, FeatureCache};
    pub use crate::config::CorleoneConfig;
    pub use crate::engine::{Engine, RunReport, Termination};
    pub use crate::env::{RunEnv, Threads};
    pub use crate::error::CorleoneError;
    pub use crate::session::RunSession;
    pub use crate::source::{
        plan_blocking_source, CandidateSource, CartesianScan, IndexedJoin, PlannedSource,
    };
    pub use crate::task::{task_from_parts, MatchTask};
    pub use crowd::{
        CrowdConfig, CrowdPlatform, GoldOracle, PairKey, TruthOracle, WorkerPool,
    };
}
