//! The Corleone engine (paper §3, Fig. 1): Blocker → (Matcher → Accuracy
//! Estimator → Difficult Pairs' Locator)* until the estimated accuracy
//! stops improving.
//!
//! Iteration `i` trains matcher `Mᵢ` on its region (the whole candidate
//! set for `i = 0`, the difficult pairs located at the end of iteration
//! `i−1` otherwise). Final predictions route each pair to the most recent
//! matcher whose region contains it (§7 step 3). The default stopping
//! policy is the paper's — stop when estimated accuracy no longer improves
//! — with an optional monetary budget ("run until a budget has been
//! exhausted", §3).

// lint:allow-module(D3): perf-timing module — Instant::now feeds only RunReport.perf phase timings, which deterministic_json zeroes; no timing value reaches report bytes or control flow
use crate::blocker::{run_blocker, BlockerReport};
use crate::budget::BudgetPlan;
use crate::cache::{CacheStats, FeatureCache};
use crate::candidates::CandidateSet;
use crate::config::CorleoneConfig;
use crate::env::RunEnv;
use crate::error::CorleoneError;
use crate::estimator::{estimate_accuracy, AccuracyEstimate};
use crate::learner::{run_active_learning, StopReason};
use crate::locator::{locate_difficult_pairs, LocatorReport};
use crate::metrics::{blocking_recall, evaluate, Prf};
use crate::ruleeval::RuleEvalConfig;
use crate::snapshot::RunSnapshot;
use crate::task::{KernelCounters, MatchTask};
use crowd::{CrowdPlatform, FaultStats, Ledger, PairKey, TruthOracle};
use exec::Threads;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::time::Instant;
use store::{Snapshotter, StoreError};

/// Per-iteration record (paper Table 4 rows).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationReport {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Size of the region this iteration's matcher was trained on.
    pub region_size: usize,
    /// Active-learning iterations of the matcher.
    pub matcher_al_iterations: usize,
    /// Why the matcher stopped.
    pub matcher_stop: String,
    /// Pairs labeled by the crowd while training the matcher.
    pub matcher_pairs_labeled: u64,
    /// Crowd spend while training the matcher, in cents.
    pub matcher_cost_cents: f64,
    /// Raw per-iteration confidence series (for Fig. 3-style plots).
    pub conf_history: Vec<f64>,
    /// The matcher's five most important features (name, normalized
    /// split importance) — what the learned model actually looks at.
    pub top_features: Vec<(String, f64)>,
    /// The estimator's output for the combined predictions.
    pub estimate: AccuracyEstimate,
    /// True accuracy of the combined predictions, when a gold standard
    /// was supplied (experiments only).
    pub true_prf: Option<Prf>,
    /// The locator's report (absent when the iteration cap or budget
    /// stopped the run first).
    pub locator: Option<LocatorReport>,
}

/// Wall-clock spent in one pipeline phase, summed over iterations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PhaseTiming {
    /// Phase name: `blocker`, `matcher`, `estimator`, or `locator`.
    pub phase: String,
    /// Total wall-clock milliseconds spent in the phase.
    pub millis: f64,
}

/// Execution telemetry for one run: thread budget, feature-cache
/// counters, and per-phase wall-clock.
///
/// Everything here depends on the machine and scheduling, never on the
/// matching outcome — [`RunReport::deterministic_json`] zeroes this block
/// so the rest of the report can be compared byte-for-byte across runs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PerfReport {
    /// Worker threads the run was given.
    pub threads: usize,
    /// Feature-cache hit/miss/occupancy counters.
    pub cache: CacheStats,
    /// Per-phase wall-clock, in pipeline order.
    pub phases: Vec<PhaseTiming>,
    /// Injected crowd faults and the recovery work they caused during
    /// this run (all zero on a fault-free platform). Unlike the rest of
    /// this block these counters are seed-deterministic at any thread
    /// count; they live here because they describe execution, not the
    /// matching outcome.
    pub faults: FaultStats,
    /// Checkpoint snapshots written, cumulative across a resume chain
    /// (0 when checkpointing is off). Lives in `perf` — not the report
    /// body — so a resumed run stays byte-identical to an uninterrupted
    /// one under [`RunReport::deterministic_json`].
    pub snapshots_written: u64,
    /// The completed-iteration count of the snapshot this run resumed
    /// from (`Some(0)` = resumed right after blocking), or `None` for a
    /// run started from scratch.
    pub resumed_from_iteration: Option<usize>,
    /// Record-analysis build time and feature-kernel counters.
    pub kernels: KernelPerf,
}

/// Telemetry for the precomputed record-analysis layer and the similarity
/// kernels it feeds (see `similarity::analysis`).
///
/// `cache.hits` counts pairs served without computing anything;
/// `features_pre` counts features actually computed through the
/// precomputed kernels (cache misses and uncached paths), so cache hits
/// and precompute hits are separately attributable.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct KernelPerf {
    /// Wall-clock to build the task's record-analysis layer, in
    /// milliseconds (0 when another run of the same task already built it).
    pub analysis_build_ms: f64,
    /// Pairs fully vectorized during this run (cache misses + uncached).
    pub pairs_vectorized: u64,
    /// Single-feature evaluations (the blocker's lazy rule path).
    pub single_features: u64,
    /// Feature values computed via the precomputed-analysis kernels.
    pub features_pre: u64,
    /// Feature values computed via the string-based reference kernels.
    pub features_string: u64,
    /// Memory telemetry of the arena-packed analysis layer.
    pub analysis_memory: AnalysisMemory,
}

/// Resident-byte telemetry of the arena-packed analysis layer (see
/// `similarity::analysis`): one field per slab segment, the dense header
/// array, their total, and the modeled bytes of the retired per-value
/// owned-`Vec` layout so the repack's before/after stays observable.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AnalysisMemory {
    /// `u32` id slabs (token/gram/soundex/char-id/offset runs).
    pub id_bytes: u64,
    /// `f64` TF/IDF weight slabs.
    pub weight_bytes: u64,
    /// `i16` narrowed-char slabs.
    pub narrow_bytes: u64,
    /// `char` prefix slabs.
    pub char_bytes: u64,
    /// Collapsed-string slabs.
    pub text_bytes: u64,
    /// Dense row-major header arrays.
    pub header_bytes: u64,
    /// Total resident bytes (sum of the six above).
    pub resident_bytes: u64,
    /// Modeled bytes under the pre-arena owned-`Vec` layout.
    pub owned_layout_bytes: u64,
}

impl AnalysisMemory {
    /// Snapshot the byte fields of a built analysis' stats.
    pub fn from_stats(s: &similarity::AnalysisStats) -> AnalysisMemory {
        AnalysisMemory {
            id_bytes: s.id_bytes as u64,
            weight_bytes: s.weight_bytes as u64,
            narrow_bytes: s.narrow_bytes as u64,
            char_bytes: s.char_bytes as u64,
            text_bytes: s.text_bytes as u64,
            header_bytes: s.header_bytes as u64,
            resident_bytes: s.resident_bytes as u64,
            owned_layout_bytes: s.owned_layout_bytes as u64,
        }
    }
}

/// Why a run ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Termination {
    /// The paper's stopping rule fired: estimated accuracy stopped
    /// improving (or no difficult region remained to iterate on).
    Converged,
    /// The configured iteration cap stopped the run first.
    MaxIterations,
    /// The monetary budget ran out before the stopping rule fired.
    BudgetExhausted,
    /// The run completed, but injected crowd faults exhausted at least
    /// one HIT's retry budget — some requested labels were never
    /// obtained, so the result may be weaker than the estimate suggests.
    /// Inspect `perf.faults` for the damage.
    Degraded,
}

/// Full run record.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// What the Blocker did (paper Table 3 row).
    pub blocker: BlockerReport,
    /// Blocking recall vs. gold, when supplied.
    pub blocking_recall: Option<f64>,
    /// Per-iteration records.
    pub iterations: Vec<IterationReport>,
    /// The estimate accompanying the returned matching result.
    pub final_estimate: Option<AccuracyEstimate>,
    /// True accuracy of the returned result, when gold was supplied.
    pub final_true: Option<Prf>,
    /// The predicted matching pairs returned to the user.
    pub predicted_matches: Vec<PairKey>,
    /// Total crowd spend in cents.
    pub total_cost_cents: f64,
    /// Total distinct pairs labeled by the crowd.
    pub total_pairs_labeled: u64,
    /// Why the run ended (see [`Termination`]).
    pub termination: Termination,
    /// Execution telemetry (threads, cache counters, phase wall-clock,
    /// fault counters).
    pub perf: PerfReport,
}

impl RunReport {
    /// Total crowd spend in dollars.
    pub fn total_cost_dollars(&self) -> f64 {
        self.total_cost_cents / 100.0
    }

    /// JSON with the machine-dependent [`PerfReport`] zeroed out.
    ///
    /// Two same-seed runs produce byte-identical output from this method
    /// regardless of thread count or cache configuration; plain
    /// `serde_json::to_string` output differs in the `perf` block.
    ///
    /// # Panics
    /// Panics if the report fails to serialize; use
    /// [`Self::try_deterministic_json`] to handle that as an error.
    pub fn deterministic_json(&self) -> String {
        self.try_deterministic_json().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Self::deterministic_json`].
    pub fn try_deterministic_json(&self) -> Result<String, CorleoneError> {
        let mut stripped = self.clone();
        stripped.perf = PerfReport::default();
        serde_json::to_string(&stripped).map_err(|e| CorleoneError::Serialization(e.to_string()))
    }
}

/// The hands-off EM engine.
#[derive(Debug, Clone)]
pub struct Engine {
    pub(crate) cfg: CorleoneConfig,
    pub(crate) seed: u64,
}

impl Engine {
    /// Create an engine with the given configuration.
    pub fn new(cfg: CorleoneConfig) -> Self {
        Engine { cfg, seed: 0x5EED }
    }

    /// Override the engine's RNG seed (sampling, bagging, batch draws).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Fingerprint of everything a checkpoint needs held fixed to resume
    /// safely: the engine configuration, the task's feature schema, and
    /// the platform architecture. Two knobs are deliberately excluded:
    /// the RNG seed (a resume continues the snapshot's recorded stream
    /// position, so the seed cannot diverge a resumed run) and the
    /// monetary budget (topping up the budget to continue a
    /// `BudgetExhausted` run is a supported operation).
    ///
    /// Stamped into snapshot envelopes by
    /// [`RunSession`](crate::session::RunSession) and the service layer;
    /// a resume under a different fingerprint refuses with
    /// [`StoreError::FingerprintMismatch`] instead of silently diverging.
    pub fn run_fingerprint(&self, task: &MatchTask) -> Result<String, CorleoneError> {
        let mut cfg = self.cfg;
        cfg.engine.budget_cents = None;
        cfg.engine.budget_split = None;
        let cfg_json = serde_json::to_string(&cfg)
            .map_err(|e| CorleoneError::Serialization(e.to_string()))?;
        let material = format!(
            "{cfg_json}\0{}\0{}",
            task.feature_names().join(","),
            std::env::consts::ARCH
        );
        Ok(store::fingerprint64(material.as_bytes()))
    }

    /// Execute one full run. All session knobs arrive resolved: the
    /// thread budget, the shared feature cache (`None` disables caching),
    /// the RNG seed, and the checkpoint/resume plan.
    ///
    /// Composed from the stepping API so a driver that interleaves many
    /// runs ([`MatchService`-style](crate::engine::RunState)) exercises
    /// exactly the code path a solo run does.
    #[allow(clippy::too_many_arguments)] // internal; callers go through RunSession
    pub(crate) fn try_run_inner(
        &self,
        task: &MatchTask,
        platform: &mut CrowdPlatform,
        oracle: &dyn TruthOracle,
        gold: Option<&HashSet<PairKey>>,
        threads: Threads,
        cache: Option<&FeatureCache>,
        seed: u64,
        ckpt: CheckpointPlan,
    ) -> Result<RunReport, CorleoneError> {
        let mut state = self.start_run(task, platform, oracle, gold, threads, cache, seed, ckpt)?;
        while !state.is_done() {
            self.step_run(&mut state, task, platform, oracle, gold, threads, cache)?;
        }
        Ok(self.finish_run(state, task, platform, gold, threads, cache))
    }

    /// Stepping API, part 1 of 3: run everything up to the first
    /// iteration boundary — the record-analysis build, the Blocker (or a
    /// snapshot restore), candidate vectorization, and snapshot 0 — and
    /// return the loop state.
    ///
    /// Drive the returned [`RunState`] with [`Self::step_run`] until it
    /// reports done, then assemble the report with [`Self::finish_run`].
    /// The collaborators (`task`, `platform`, `oracle`, `gold`) and the
    /// execution knobs (`threads`, `cache`) must be the same objects on
    /// every call for one run; `RunState` holds no borrows so a scheduler
    /// can interleave many runs' states over one thread pool.
    #[allow(clippy::too_many_arguments)]
    pub fn start_run(
        &self,
        task: &MatchTask,
        platform: &mut CrowdPlatform,
        oracle: &dyn TruthOracle,
        gold: Option<&HashSet<PairKey>>,
        threads: Threads,
        cache: Option<&FeatureCache>,
        seed: u64,
        ckpt: CheckpointPlan,
    ) -> Result<RunState, CorleoneError> {
        let CheckpointPlan { snapshotter, every, resume } = ckpt;
        let env = RunEnv { threads, cache };
        let resumed_from_iteration = resume.as_ref().map(|s| s.completed_iterations);

        // Build the record-analysis layer up front (a no-op when a prior
        // run of the same task already built it) so every downstream
        // phase — blocking, candidate vectorization, estimator rule
        // evaluation — runs through the precomputed kernels.
        let kernels_start = task.kernel_counters();
        let t0 = Instant::now();
        let analysis_prebuilt = task.analysis.get().is_some();
        task.ensure_analysis(threads);
        let analysis_build_ms = if analysis_prebuilt {
            0.0
        } else {
            t0.elapsed().as_secs_f64() * 1000.0
        };

        // Per-phase cumulative caps when a budget split is configured
        // (§10 budget-allocation extension).
        let plan = match (self.cfg.engine.budget_cents, self.cfg.engine.budget_split) {
            (Some(b), Some(split)) => {
                Some(split.try_plan(b).map_err(CorleoneError::InvalidBudgetSplit)?)
            }
            _ => None,
        };

        // ---- Establish the loop state: run the Blocker (§4), or restore
        // everything a completed snapshot captured and skip straight to
        // the iteration after it.
        let mut rng;
        let ledger_start;
        let fault_start;
        let t_blocker;
        let t_matcher;
        let t_estimator;
        let t_locator;
        let cand: CandidateSet;
        let blocker_report;
        let predictions: Vec<bool>;
        let known_labels: HashMap<usize, bool>;
        let region: Vec<usize>;
        let iterations: Vec<IterationReport>;
        let best: Option<(AccuracyEstimate, Vec<bool>)>;
        let start_iter;
        let seed_hex;
        let mut snapshots_written;

        match resume {
            Some(snap) => {
                let snap = *snap;
                if snap.n_features != task.n_features() {
                    return Err(CorleoneError::Store(StoreError::Decode {
                        path: String::new(),
                        message: format!(
                            "snapshot captured a task with {} features, this task has {}",
                            snap.n_features,
                            task.n_features()
                        ),
                    }));
                }
                if snap.predictions.len() != snap.cand_pairs.len() {
                    return Err(CorleoneError::Store(StoreError::Decode {
                        path: String::new(),
                        message: format!(
                            "snapshot is inconsistent: {} predictions for {} candidates",
                            snap.predictions.len(),
                            snap.cand_pairs.len()
                        ),
                    }));
                }
                // The caller's platform is overwritten wholesale: ledger,
                // label cache, worker pool, fault counters, and both RNG
                // stream positions continue exactly where the snapshot
                // left them.
                *platform = CrowdPlatform::import_state(&snap.platform)?;
                rng = StdRng::from_state(store::decode_rng_state(&snap.rng_state)?);
                ledger_start = snap.ledger_start;
                fault_start = snap.fault_start;
                // Vectorization is pure, so rebuilding the feature matrix
                // from the stored pair keys (through the restored warm
                // cache) reproduces it bit-for-bit. Billed as blocker
                // time: the rebuild stands in for blocking on this path.
                let t0 = Instant::now();
                cand = CandidateSet::build_with(task, snap.cand_pairs, threads, cache);
                t_blocker = snap.timings_ms[0] + t0.elapsed().as_secs_f64() * 1000.0;
                t_matcher = snap.timings_ms[1];
                t_estimator = snap.timings_ms[2];
                t_locator = snap.timings_ms[3];
                blocker_report = snap.blocker_report;
                predictions = snap.predictions;
                known_labels = snap.known_labels.into_iter().collect();
                region = snap.region;
                iterations = snap.iterations;
                best = snap.best;
                start_iter = snap.completed_iterations + 1;
                seed_hex = snap.seed_hex;
                snapshots_written = snap.snapshots_written;
            }
            None => {
                rng = StdRng::seed_from_u64(seed);
                ledger_start = *platform.ledger();
                fault_start = *platform.fault_stats();
                let mut blocker_matcher_cfg = self.cfg.matcher;
                if let Some(p) = &plan {
                    blocker_matcher_cfg.budget_cents_cap =
                        Some(ledger_start.total_cents + p.after_blocking);
                }
                let t0 = Instant::now();
                let blocked = run_blocker(
                    task,
                    platform,
                    oracle,
                    &self.cfg.blocker,
                    &blocker_matcher_cfg,
                    &mut rng,
                    &env,
                );
                t_blocker = t0.elapsed().as_secs_f64() * 1000.0;
                t_matcher = 0.0;
                t_estimator = 0.0;
                t_locator = 0.0;
                cand = blocked.candidates;
                blocker_report = blocked.report;
                predictions = vec![false; cand.len()];
                known_labels = HashMap::new();
                region = (0..cand.len()).collect();
                iterations = Vec::new();
                best = None;
                start_iter = 1;
                seed_hex = store::encode_u64(seed);
                snapshots_written = 0;
            }
        }

        let blocking_rec = gold.map(|g| {
            let umbrella: HashSet<PairKey> = cand.pairs().iter().copied().collect();
            blocking_recall(&umbrella, g)
        });

        if cand.is_empty() {
            return Err(CorleoneError::EmptyCandidates);
        }

        let seed_vectors: Vec<(Vec<f64>, bool)> = task
            .seeds
            .iter()
            .map(|&(k, l)| (env.vectorize(task, k), l))
            .collect();

        // Snapshot 0: the post-blocking boundary. A resume from here
        // skips the (expensive, crowd-labeled) blocking phase entirely.
        if let Some(sn) = &snapshotter {
            if resumed_from_iteration.is_none() {
                let snap = RunSnapshot {
                    seed_hex: seed_hex.clone(),
                    completed_iterations: 0,
                    rng_state: store::encode_rng_state(rng.state()),
                    ledger_start,
                    fault_start,
                    cand_pairs: cand.pairs().to_vec(),
                    n_features: cand.n_features(),
                    blocker_report: blocker_report.clone(),
                    predictions: predictions.clone(),
                    known_labels: sorted_labels(&known_labels),
                    region: region.clone(),
                    iterations: iterations.clone(),
                    best: best.clone(),
                    timings_ms: [t_blocker, t_matcher, t_estimator, t_locator],
                    forest_json: None,
                    platform: platform.export_state(),
                    cache: cache.map(FeatureCache::dump),
                    snapshots_written: snapshots_written + 1,
                };
                sn.write(0, &snap)?;
                snapshots_written += 1;
            }
        }

        Ok(RunState {
            rng,
            ledger_start,
            fault_start,
            t_blocker,
            t_matcher,
            t_estimator,
            t_locator,
            cand,
            blocker_report,
            blocking_rec,
            predictions,
            known_labels,
            region,
            iterations,
            best,
            next_iter: start_iter,
            seed_hex,
            snapshots_written,
            resumed_from_iteration,
            seed_vectors,
            plan,
            kernels_start,
            analysis_build_ms,
            termination: Termination::Converged,
            done: false,
            snapshotter,
            every,
        })
    }

    fn budget_left(&self, platform: &CrowdPlatform, ledger_start: &Ledger) -> bool {
        self.cfg.engine.budget_cents.is_none_or(|b| {
            platform.ledger().total_cents - ledger_start.total_cents < b
        })
    }

    /// Stepping API, part 2 of 3: run exactly one pipeline iteration —
    /// matcher, estimator, stopping checks, locator, and the
    /// iteration-boundary checkpoint — mutating `st` in place. Calling
    /// it on a finished state is a no-op reporting `finished`.
    ///
    /// A scheduler interleaving many runs calls this with each run's own
    /// state and collaborators; because the state is mutated only here,
    /// the interleaving order across runs cannot affect any single run's
    /// bytes.
    #[allow(clippy::too_many_arguments)]
    pub fn step_run(
        &self,
        st: &mut RunState,
        task: &MatchTask,
        platform: &mut CrowdPlatform,
        oracle: &dyn TruthOracle,
        gold: Option<&HashSet<PairKey>>,
        threads: Threads,
        cache: Option<&FeatureCache>,
    ) -> Result<StepOutcome, CorleoneError> {
        let mut out = StepOutcome { iterated: false, checkpointed: false, finished: false };
        if st.done {
            out.finished = true;
            return Ok(out);
        }
        let env = RunEnv { threads, cache };
        let iter_no = st.next_iter;
        if iter_no > self.cfg.engine.max_iterations || st.region.is_empty() {
            st.done = true;
            out.finished = true;
            return Ok(out);
        }
        if !self.budget_left(platform, &st.ledger_start) {
            st.termination = Termination::BudgetExhausted;
            st.done = true;
            out.finished = true;
            return Ok(out);
        }
        // ---- Matcher (§5) on this iteration's region.
        let sub = st.cand.subset(&st.region);
        let ledger_m = *platform.ledger();
        let mut matcher_cfg = self.cfg.matcher;
        if let Some(budget) = self.cfg.engine.budget_cents {
            matcher_cfg.budget_cents_cap = Some(st.ledger_start.total_cents + budget);
        }
        if let Some(p) = &st.plan {
            matcher_cfg.budget_cents_cap =
                Some(st.ledger_start.total_cents + p.after_matching);
        }
        let t0 = Instant::now();
        let learn = run_active_learning(
            &sub,
            &st.seed_vectors,
            platform,
            oracle,
            &matcher_cfg,
            &mut st.rng,
            env.threads,
        );
        let ledger_m_end = *platform.ledger();
        for (sub_idx, label) in learn.crowd_labels() {
            st.known_labels.insert(st.region[sub_idx], label);
        }
        let region_preds =
            learn
                .forest
                .predict_batch(sub.matrix(), sub.n_features(), env.threads);
        for (j, &global) in st.region.iter().enumerate() {
            st.predictions[global] = region_preds[j];
        }
        st.t_matcher += t0.elapsed().as_secs_f64() * 1000.0;

        // ---- Accuracy Estimator (§6) over the combined predictions.
        // Under a monetary budget, cap the estimator's label budget by
        // what is left, using the observed average cost per labeled
        // pair so far.
        let mut est_cfg = self.cfg.estimator;
        if let Some(budget) = self.cfg.engine.budget_cents {
            let ledger = platform.ledger();
            let spent = ledger.total_cents - st.ledger_start.total_cents;
            let per_label = if ledger.pairs_labeled > 0 {
                (ledger.total_cents / ledger.pairs_labeled as f64).max(0.1)
            } else {
                3.0
            };
            let remaining = (budget - spent).max(0.0);
            est_cfg.max_labels = est_cfg
                .max_labels
                .min((remaining / per_label) as usize)
                .max(est_cfg.probe_batch);
            est_cfg.budget_cents_cap = Some(
                st.ledger_start.total_cents
                    + st.plan.as_ref().map_or(budget, |p| p.after_estimation),
            );
        }
        let t0 = Instant::now();
        let estimate = estimate_accuracy(
            &st.cand,
            &st.predictions,
            &learn.forest,
            &st.known_labels,
            platform,
            oracle,
            &est_cfg,
            &mut st.rng,
            &env,
        );
        st.t_estimator += t0.elapsed().as_secs_f64() * 1000.0;
        // Fold the estimator's uniform sample back into the shared
        // label pool (it is cached crowd knowledge either way).

        let true_prf = gold.map(|g| {
            let pred: HashSet<PairKey> = predicted_pairs(&st.cand, &st.predictions);
            evaluate(&pred, g)
        });

        let feature_names = task.feature_names();
        let mut importance: Vec<(String, f64)> = learn
            .forest
            .feature_importance(task.n_features())
            .into_iter()
            .enumerate()
            .map(|(i, v)| (feature_names[i].clone(), v))
            .collect();
        // total_cmp: a NaN importance (zero-variance feature on a
        // degenerate sample) must sort, not panic mid-run.
        importance.sort_by(|a, b| b.1.total_cmp(&a.1));
        importance.truncate(5);

        let mut report = IterationReport {
            iteration: iter_no,
            region_size: st.region.len(),
            matcher_al_iterations: learn.iterations,
            matcher_stop: stop_label(learn.stop),
            matcher_pairs_labeled: ledger_m_end.pairs_labeled - ledger_m.pairs_labeled,
            matcher_cost_cents: ledger_m_end.total_cents - ledger_m.total_cents,
            conf_history: learn.conf_history.clone(),
            top_features: importance,
            estimate: estimate.clone(),
            true_prf,
            locator: None,
        };
        st.next_iter = iter_no + 1;
        out.iterated = true;

        // ---- Continue? (§3: stop when estimated accuracy no longer
        // improves; keep the previous iteration's result.)
        let improved = st.best
            .as_ref()
            .is_none_or(|(b, _)| estimate.f1 > b.f1);
        if improved {
            st.best = Some((estimate.clone(), st.predictions.clone()));
        } else {
            // Roll back to the better previous result and stop.
            if let Some((_, ref snap)) = st.best {
                st.predictions.clone_from(snap);
            }
            st.iterations.push(report);
            st.done = true;
            out.finished = true;
            return Ok(out);
        }
        if iter_no == self.cfg.engine.max_iterations {
            st.termination = Termination::MaxIterations;
            st.iterations.push(report);
            st.done = true;
            out.finished = true;
            return Ok(out);
        }
        if !self.budget_left(platform, &st.ledger_start) {
            st.termination = Termination::BudgetExhausted;
            st.iterations.push(report);
            st.done = true;
            out.finished = true;
            return Ok(out);
        }

        // ---- Difficult Pairs' Locator (§7). Locating is the last
        // phase, so its cap is the whole budget.
        let eval_cfg = RuleEvalConfig {
            batch: self.cfg.blocker.eval_batch,
            p_min: self.cfg.blocker.p_min,
            eps_max: self.cfg.blocker.eps_max,
            confidence: self.cfg.blocker.confidence,
            budget_cents_cap: self
                .cfg
                .engine
                .budget_cents
                .map(|b| st.ledger_start.total_cents + b),
            ..Default::default()
        };
        let t0 = Instant::now();
        let located = locate_difficult_pairs(
            &st.cand,
            &st.region,
            &learn.forest,
            &st.known_labels,
            platform,
            oracle,
            &self.cfg.locator,
            &eval_cfg,
            &mut st.rng,
            &env,
        );
        st.t_locator += t0.elapsed().as_secs_f64() * 1000.0;
        report.locator = Some(located.report.clone());
        st.iterations.push(report);
        match located.difficult {
            Some(next) => st.region = next,
            None => {
                st.done = true;
                out.finished = true;
                return Ok(out);
            }
        }

        // ---- Iteration boundary: the narrowest point of the loop.
        // No phase is mid-flight, so the state closure is complete —
        // checkpoint it.
        if let Some(sn) = &st.snapshotter {
            if st.every > 0 && iter_no.is_multiple_of(st.every) {
                let snap = RunSnapshot {
                    seed_hex: st.seed_hex.clone(),
                    completed_iterations: iter_no,
                    rng_state: store::encode_rng_state(st.rng.state()),
                    ledger_start: st.ledger_start,
                    fault_start: st.fault_start,
                    cand_pairs: st.cand.pairs().to_vec(),
                    n_features: st.cand.n_features(),
                    blocker_report: st.blocker_report.clone(),
                    predictions: st.predictions.clone(),
                    known_labels: sorted_labels(&st.known_labels),
                    region: st.region.clone(),
                    iterations: st.iterations.clone(),
                    best: st.best.clone(),
                    timings_ms: [st.t_blocker, st.t_matcher, st.t_estimator, st.t_locator],
                    forest_json: Some(learn.forest.to_json()),
                    platform: platform.export_state(),
                    cache: cache.map(FeatureCache::dump),
                    snapshots_written: st.snapshots_written + 1,
                };
                sn.write(iter_no as u64, &snap)?;
                st.snapshots_written += 1;
                out.checkpointed = true;
            }
        }
        Ok(out)
    }

    /// Stepping API, part 3 of 3: assemble the final [`RunReport`] from a
    /// finished (or deliberately abandoned) state.
    pub fn finish_run(
        &self,
        st: RunState,
        task: &MatchTask,
        platform: &mut CrowdPlatform,
        gold: Option<&HashSet<PairKey>>,
        threads: Threads,
        cache: Option<&FeatureCache>,
    ) -> RunReport {
        let RunState {
            ledger_start,
            fault_start,
            t_blocker,
            t_matcher,
            t_estimator,
            t_locator,
            cand,
            blocker_report,
            blocking_rec,
            mut predictions,
            iterations,
            best,
            snapshots_written,
            resumed_from_iteration,
            kernels_start,
            analysis_build_ms,
            mut termination,
            ..
        } = st;
        let ledger_end = *platform.ledger();
        let final_estimate = best.as_ref().map(|(e, _)| e.clone());
        if let Some((_, snap)) = best {
            predictions = snap;
        }
        let predicted: HashSet<PairKey> = predicted_pairs(&cand, &predictions);
        let final_true = gold.map(|g| evaluate(&predicted, g));
        let mut predicted_matches: Vec<PairKey> = predicted.into_iter().collect(); // lint:allow(D2): sorted on the next line before any use
        predicted_matches.sort();

        // A HIT that exhausted its retry budget means some requested
        // labels never arrived: the run finished, but degraded. This
        // outranks the other labels — a "converged" verdict reached on
        // missing data is not trustworthy.
        let fault_delta = platform.fault_stats().delta(&fault_start);
        if fault_delta.hits_failed > 0 {
            termination = Termination::Degraded;
        }

        let phase = |name: &str, millis: f64| PhaseTiming { phase: name.to_string(), millis };
        RunReport {
            blocker: blocker_report,
            blocking_recall: blocking_rec,
            iterations,
            final_estimate,
            final_true,
            predicted_matches,
            total_cost_cents: ledger_end.total_cents - ledger_start.total_cents,
            total_pairs_labeled: ledger_end.pairs_labeled - ledger_start.pairs_labeled,
            termination,
            perf: PerfReport {
                threads: threads.get(),
                cache: cache.map(FeatureCache::stats).unwrap_or_default(),
                phases: vec![
                    phase("blocker", t_blocker),
                    phase("matcher", t_matcher),
                    phase("estimator", t_estimator),
                    phase("locator", t_locator),
                ],
                faults: fault_delta,
                snapshots_written,
                resumed_from_iteration,
                kernels: {
                    let d = task.kernel_counters().delta(&kernels_start);
                    KernelPerf {
                        analysis_build_ms,
                        pairs_vectorized: d.pairs_vectorized,
                        single_features: d.single_features,
                        features_pre: d.features_pre,
                        features_string: d.features_string,
                        analysis_memory: task
                            .analysis
                            .get()
                            .map(|an| AnalysisMemory::from_stats(&an.stats))
                            .unwrap_or_default(),
                    }
                },
            },
        }
    }
}

/// Checkpoint/resume controls for one run, resolved by
/// [`RunSession`](crate::session::RunSession) from its builder settings
/// or built directly by a multi-run driver (the service layer gives each
/// tenant a registry-scoped snapshotter).
pub struct CheckpointPlan {
    /// Where to write snapshots; `None` disables checkpointing.
    pub snapshotter: Option<Snapshotter>,
    /// Write a snapshot every N completed iterations (snapshot 0, right
    /// after blocking, is always written when checkpointing is on).
    pub every: usize,
    /// A decoded snapshot to continue from instead of starting fresh.
    pub resume: Option<Box<RunSnapshot>>,
}

impl CheckpointPlan {
    /// No checkpointing, no resume: a plain in-memory run.
    pub fn none() -> Self {
        CheckpointPlan { snapshotter: None, every: 1, resume: None }
    }
}

/// The complete between-iterations state of one engine run, produced by
/// [`Engine::start_run`] and advanced by [`Engine::step_run`].
///
/// Holds no borrows — collaborators are passed to every call — so a
/// scheduler can own many `RunState`s and interleave their iterations in
/// any order over one shared thread pool. All state a step mutates lives
/// either here or in the run's own collaborators, which is why
/// interleaving cannot change any single run's bytes.
pub struct RunState {
    rng: StdRng,
    ledger_start: Ledger,
    fault_start: FaultStats,
    t_blocker: f64,
    t_matcher: f64,
    t_estimator: f64,
    t_locator: f64,
    cand: CandidateSet,
    blocker_report: BlockerReport,
    blocking_rec: Option<f64>,
    predictions: Vec<bool>,
    known_labels: HashMap<usize, bool>,
    region: Vec<usize>,
    iterations: Vec<IterationReport>,
    best: Option<(AccuracyEstimate, Vec<bool>)>,
    next_iter: usize,
    seed_hex: String,
    snapshots_written: u64,
    resumed_from_iteration: Option<usize>,
    seed_vectors: Vec<(Vec<f64>, bool)>,
    plan: Option<BudgetPlan>,
    kernels_start: KernelCounters,
    analysis_build_ms: f64,
    termination: Termination,
    done: bool,
    snapshotter: Option<Snapshotter>,
    every: usize,
}

impl RunState {
    /// Has the run reached a terminal condition? Once true, only
    /// [`Engine::finish_run`] does anything useful with this state.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Completed pipeline iterations so far (including any restored from
    /// a resumed snapshot).
    pub fn completed_iterations(&self) -> usize {
        self.next_iter - 1
    }

    /// Per-iteration records so far — `last()` carries the most recent
    /// interim accuracy estimate, which is what a progress API streams.
    pub fn iterations(&self) -> &[IterationReport] {
        &self.iterations
    }

    /// Candidate pairs that survived blocking.
    pub fn candidates(&self) -> usize {
        self.cand.len()
    }

    /// Snapshots written so far, cumulative across a resume chain.
    pub fn snapshots_written(&self) -> u64 {
        self.snapshots_written
    }

    /// The iteration count of the snapshot this state resumed from, or
    /// `None` for a fresh start.
    pub fn resumed_from_iteration(&self) -> Option<usize> {
        self.resumed_from_iteration
    }
}

/// What one [`Engine::step_run`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// A pipeline iteration completed (a new [`IterationReport`] was
    /// recorded).
    pub iterated: bool,
    /// A checkpoint snapshot was written at this iteration boundary.
    pub checkpointed: bool,
    /// The run reached a terminal condition during this step.
    pub finished: bool,
}

/// Crowd-labeled candidate indices in ascending order, for snapshot
/// payloads whose bytes must not depend on hash-map iteration order.
fn sorted_labels(labels: &HashMap<usize, bool>) -> Vec<(usize, bool)> {
    let mut v: Vec<(usize, bool)> = labels.iter().map(|(&i, &l)| (i, l)).collect(); // lint:allow(D2): this IS the sanctioned collect+sort helper; sorted on the next line
    v.sort_unstable_by_key(|&(i, _)| i);
    v
}

fn predicted_pairs(cand: &CandidateSet, predictions: &[bool]) -> HashSet<PairKey> {
    predictions
        .iter()
        .enumerate()
        .filter(|&(_, &p)| p)
        .map(|(i, _)| cand.pair(i))
        .collect()
}

fn stop_label(stop: StopReason) -> String {
    match stop {
        StopReason::Pattern(d) => format!("{d:?}"),
        StopReason::Exhausted => "Exhausted".to_string(),
        StopReason::MaxIterations => "MaxIterations".to_string(),
        StopReason::Budget => "Budget".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::task_from_parts;
    use crowd::{CrowdConfig, GoldOracle, WorkerPool};
    use similarity::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    fn toy() -> (MatchTask, GoldOracle) {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let a_rows: Vec<Vec<Value>> = (0..25)
            .map(|i| vec![Value::Text(format!("acme part number {i}"))])
            .collect();
        let mut b_rows: Vec<Vec<Value>> = (0..25)
            .map(|i| vec![Value::Text(format!("acme part number {i}"))])
            .collect();
        b_rows.extend((0..8).map(|i| vec![Value::Text(format!("globex unit {i}"))]));
        let a = Table::new("a", schema.clone(), a_rows);
        let b = Table::new("b", schema, b_rows);
        let task = task_from_parts(a, b, "same part", [(0, 0), (1, 1)], [(0, 30), (2, 28)]);
        let gold = GoldOracle::from_pairs((0..25).map(|i| (i, i)));
        (task, gold)
    }

    #[test]
    fn full_run_matches_well_and_reports() {
        let (task, gold) = toy();
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let engine = Engine::new(CorleoneConfig::small()).with_seed(3);
        let report = engine
            .session(&task)
            .platform(&mut platform)
            .oracle(&gold)
            .gold(gold.matches())
            .run();
        assert!(!report.iterations.is_empty());
        let f1 = report.final_true.expect("gold supplied").f1;
        assert!(f1 > 0.85, "final F1 {f1}");
        assert!(report.total_cost_cents > 0.0);
        assert!(report.total_pairs_labeled > 0);
        assert!(!report.predicted_matches.is_empty());
        // Estimate should be in the ballpark of the truth.
        let est = report
            .final_estimate
            .as_ref()
            .expect("a run with at least one completed iteration always carries a final estimate");
        assert!((est.f1 - f1).abs() < 0.25, "est {} vs true {}", est.f1, f1);
        // Telemetry is populated: phase timings exist, the cache saw
        // traffic (seed pairs alone guarantee lookups).
        assert_eq!(report.perf.phases.len(), 4);
        assert!(report.perf.threads >= 1);
        let c = report.perf.cache;
        assert!(c.hits + c.misses > 0, "cache must have been consulted");
    }

    #[test]
    fn budget_limits_spend() {
        let (task, gold) = toy();
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let mut cfg = CorleoneConfig::small();
        cfg.engine.budget_cents = Some(50.0);
        let engine = Engine::new(cfg).with_seed(4);
        let report = engine
            .session(&task)
            .platform(&mut platform)
            .oracle(&gold)
            .gold(gold.matches())
            .run();
        // One in-flight phase can overshoot, but not by orders of
        // magnitude.
        assert!(
            report.total_cost_cents < 50.0 + 500.0,
            "spent {}",
            report.total_cost_cents
        );
    }

    #[test]
    fn run_without_gold_has_no_true_metrics() {
        let (task, gold) = toy();
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let engine = Engine::new(CorleoneConfig::small()).with_seed(5);
        let report = engine
            .session(&task)
            .platform(&mut platform)
            .oracle(&gold)
            .run();
        assert!(report.final_true.is_none());
        assert!(report.blocking_recall.is_none());
        assert!(report.final_estimate.is_some());
    }

    #[test]
    fn deterministic_given_seeds() {
        let (task, gold) = toy();
        let run = |seed| {
            let mut platform =
                CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
            Engine::new(CorleoneConfig::small())
                .with_seed(seed)
                .session(&task)
                .platform(&mut platform)
                .oracle(&gold)
                .gold(gold.matches())
                .run()
        };
        let r1 = run(7);
        let r2 = run(7);
        assert_eq!(r1.predicted_matches, r2.predicted_matches);
        assert_eq!(r1.total_cost_cents, r2.total_cost_cents);
        assert_eq!(r1.deterministic_json(), r2.deterministic_json());
    }

    #[test]
    fn checkpointed_run_resumes_byte_identically_from_every_snapshot() {
        let (task, gold) = toy();
        let dir = std::env::temp_dir().join(format!("corleone-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let engine = Engine::new(CorleoneConfig::small()).with_seed(3);

        let mut p1 = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let reference = engine
            .session(&task)
            .platform(&mut p1)
            .oracle(&gold)
            .gold(gold.matches())
            .run();

        // Checkpointing must not perturb the run itself.
        let mut p2 = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let checkpointed = engine
            .session(&task)
            .platform(&mut p2)
            .oracle(&gold)
            .gold(gold.matches())
            .checkpoint_dir(&dir)
            .checkpoint_keep(0)
            .run();
        assert_eq!(checkpointed.deterministic_json(), reference.deterministic_json());
        assert!(checkpointed.perf.snapshots_written > 0);
        assert_eq!(checkpointed.perf.resumed_from_iteration, None);

        // Every retained snapshot resumes to the identical final report.
        let snaps = store::Snapshotter::create(&dir).expect("open").list().expect("list");
        assert!(!snaps.is_empty());
        for snap in &snaps {
            let mut p3 = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
            let resumed = engine
                .session(&task)
                .platform(&mut p3)
                .oracle(&gold)
                .gold(gold.matches())
                .resume_from(snap)
                .run();
            assert_eq!(
                resumed.deterministic_json(),
                reference.deterministic_json(),
                "resume from {snap:?} diverged"
            );
            assert!(resumed.perf.resumed_from_iteration.is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn constant_feature_task_survives_importance_sort() {
        // Regression: every record identical → zero-variance features, so
        // the forest's split importances can be 0/0 = NaN. The importance
        // sort used `partial_cmp(..).expect(..)` and panicked mid-run;
        // total_cmp must order NaNs instead.
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let rows: Vec<Vec<Value>> = (0..20)
            .map(|_| vec![Value::Text("identical widget".to_string())])
            .collect();
        let a = Table::new("a", schema.clone(), rows.clone());
        let b = Table::new("b", schema, rows);
        let task = task_from_parts(a, b, "same?", [(0, 0), (1, 1)], [(2, 3), (4, 5)]);
        let gold = GoldOracle::from_pairs((0..20).map(|i| (i, i)));
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
        let report = Engine::new(CorleoneConfig::small())
            .with_seed(8)
            .session(&task)
            .platform(&mut platform)
            .oracle(&gold)
            .run();
        assert!(!report.iterations.is_empty(), "run must complete, not panic");
        for it in &report.iterations {
            assert!(it.top_features.len() <= 5);
        }
    }

    #[test]
    fn termination_is_converged_on_a_clean_run() {
        let (task, gold) = toy();
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let report = Engine::new(CorleoneConfig::small())
            .with_seed(3)
            .session(&task)
            .platform(&mut platform)
            .oracle(&gold)
            .run();
        assert!(
            matches!(report.termination, Termination::Converged | Termination::MaxIterations),
            "clean run ended {:?}",
            report.termination
        );
        assert_eq!(report.perf.faults, crowd::FaultStats::default());
    }

    #[test]
    fn tiny_budget_is_labeled_budget_exhausted() {
        let (task, gold) = toy();
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let mut cfg = CorleoneConfig::small();
        cfg.engine.budget_cents = Some(30.0);
        let report = Engine::new(cfg)
            .with_seed(4)
            .session(&task)
            .platform(&mut platform)
            .oracle(&gold)
            .run();
        assert_eq!(report.termination, Termination::BudgetExhausted);
    }

    #[test]
    fn invalid_budget_split_is_a_typed_error() {
        use crate::budget::BudgetSplit;
        use crate::error::CorleoneError;
        let (task, gold) = toy();
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let mut cfg = CorleoneConfig::small();
        cfg.engine.budget_cents = Some(100.0);
        cfg.engine.budget_split =
            Some(BudgetSplit { blocking: 0.5, matching: 0.5, estimation: 0.5, locating: 0.0 });
        let err = Engine::new(cfg)
            .session(&task)
            .platform(&mut platform)
            .oracle(&gold)
            .try_run()
            .unwrap_err();
        match err {
            CorleoneError::InvalidBudgetSplit(msg) => assert!(msg.contains("sum to 1")),
            other => panic!("expected InvalidBudgetSplit, got {other:?}"),
        }
    }

    #[test]
    fn session_api_runs_are_reproducible() {
        // Successor of the removed `Engine::run` shim-parity test: two
        // independent session-API runs with identical inputs must be
        // byte-identical under the determinism contract.
        let (task, gold) = toy();
        let engine = Engine::new(CorleoneConfig::small()).with_seed(6);
        let mut p1 = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let first = engine
            .session(&task)
            .platform(&mut p1)
            .oracle(&gold)
            .gold(gold.matches())
            .run();
        let mut p2 = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let second = engine
            .session(&task)
            .platform(&mut p2)
            .oracle(&gold)
            .gold(gold.matches())
            .run();
        assert_eq!(first.deterministic_json(), second.deterministic_json());
    }
}
