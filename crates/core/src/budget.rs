//! Budget allocation across workflow phases — the §10 future-work
//! direction: "given a monetary budget constraint, how to best allocate
//! it among the blocking, matching, and accuracy estimation step?"
//!
//! A [`BudgetSplit`] divides the engine budget into per-phase shares. The
//! engine enforces them as *cumulative* ledger caps, so money a phase
//! does not spend rolls over to the next phase instead of being wasted —
//! the natural semantics when phases execute in sequence.

use serde::{Deserialize, Serialize};

/// Fractional budget shares per phase. They must sum to 1 (±1e-6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetSplit {
    /// Share for the Blocker (sample labeling + rule evaluation).
    pub blocking: f64,
    /// Share for matcher active learning (across all iterations).
    pub matching: f64,
    /// Share for accuracy estimation.
    pub estimation: f64,
    /// Share for locating difficult pairs.
    pub locating: f64,
}

impl Default for BudgetSplit {
    /// Shares mirroring the paper's observed cost structure (Table 3/4:
    /// blocking is cheap, matching dominates, estimation is substantial,
    /// reduction is "a modest fraction (3-10%) of the overall cost").
    fn default() -> Self {
        BudgetSplit { blocking: 0.15, matching: 0.50, estimation: 0.25, locating: 0.10 }
    }
}

/// Cumulative ledger caps (cents relative to the run's starting ledger).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BudgetPlan {
    /// Ledger cap while blocking.
    pub after_blocking: f64,
    /// Ledger cap while training matchers.
    pub after_matching: f64,
    /// Ledger cap while estimating.
    pub after_estimation: f64,
    /// Total budget (cap while locating).
    pub total: f64,
}

impl BudgetSplit {
    /// Validate and turn the split into cumulative caps for a budget.
    ///
    /// # Panics
    /// Panics if any share is negative or the shares do not sum to 1.
    /// The engine's run path uses [`Self::try_plan`] instead.
    pub fn plan(&self, total_cents: f64) -> BudgetPlan {
        self.try_plan(total_cents).unwrap_or_else(|msg| panic!("{msg}"))
    }

    /// Fallible form of [`Self::plan`]: returns the validation failure as
    /// a message instead of panicking.
    pub fn try_plan(&self, total_cents: f64) -> Result<BudgetPlan, String> {
        let shares = [self.blocking, self.matching, self.estimation, self.locating];
        if shares.iter().any(|s| s.is_nan() || *s < 0.0) {
            return Err("budget shares must be non-negative".to_string());
        }
        let sum: f64 = shares.iter().sum();
        if (sum - 1.0).abs() >= 1e-6 || !sum.is_finite() {
            return Err(format!("budget shares must sum to 1, got {sum}"));
        }
        if total_cents < 0.0 || total_cents.is_nan() {
            return Err("budget must be non-negative".to_string());
        }
        Ok(BudgetPlan {
            after_blocking: total_cents * self.blocking,
            after_matching: total_cents * (self.blocking + self.matching),
            after_estimation: total_cents * (self.blocking + self.matching + self.estimation),
            total: total_cents,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_split_sums_to_one() {
        let s = BudgetSplit::default();
        let sum = s.blocking + s.matching + s.estimation + s.locating;
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn plan_is_cumulative_and_monotone() {
        let p = BudgetSplit::default().plan(1000.0);
        assert_eq!(p.after_blocking, 150.0);
        assert_eq!(p.after_matching, 650.0);
        assert_eq!(p.after_estimation, 900.0);
        assert_eq!(p.total, 1000.0);
        assert!(p.after_blocking <= p.after_matching);
        assert!(p.after_matching <= p.after_estimation);
        assert!(p.after_estimation <= p.total);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn bad_split_rejected() {
        BudgetSplit { blocking: 0.5, matching: 0.5, estimation: 0.5, locating: 0.0 }
            .plan(100.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_share_rejected() {
        BudgetSplit { blocking: -0.1, matching: 0.6, estimation: 0.3, locating: 0.2 }
            .plan(100.0);
    }
}
