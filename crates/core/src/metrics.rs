//! Matching-quality metrics against a gold standard.

use crowd::PairKey;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prf {
    /// Precision in `[0, 1]`.
    pub precision: f64,
    /// Recall in `[0, 1]`.
    pub recall: f64,
    /// F1 (harmonic mean), 0 when both are 0.
    pub f1: f64,
}

impl Prf {
    /// Build from precision and recall.
    pub fn new(precision: f64, recall: f64) -> Self {
        let f1 = if precision + recall > 0.0 {
            2.0 * precision * recall / (precision + recall)
        } else {
            0.0
        };
        Prf { precision, recall, f1 }
    }

    /// Build from counts: true positives, predicted positives, actual
    /// positives. Empty denominators give 0.
    pub fn from_counts(tp: usize, predicted_pos: usize, actual_pos: usize) -> Self {
        let p = if predicted_pos > 0 { tp as f64 / predicted_pos as f64 } else { 0.0 };
        let r = if actual_pos > 0 { tp as f64 / actual_pos as f64 } else { 0.0 };
        Prf::new(p, r)
    }
}

/// Evaluate a set of predicted matching pairs against the gold set.
/// Pairs not predicted are treated as predicted non-matches, so recall is
/// over the *entire* gold set — blocking losses count against recall.
pub fn evaluate(predicted: &HashSet<PairKey>, gold: &HashSet<PairKey>) -> Prf {
    let tp = predicted.intersection(gold).count();
    Prf::from_counts(tp, predicted.len(), gold.len())
}

/// Blocking recall (paper Table 3): the fraction of gold matches retained
/// in the umbrella set.
pub fn blocking_recall(umbrella: &HashSet<PairKey>, gold: &HashSet<PairKey>) -> f64 {
    if gold.is_empty() {
        return 1.0;
    }
    gold.iter().filter(|p| umbrella.contains(p)).count() as f64 / gold.len() as f64 // lint:allow(D2): order-free count; the division happens once after iteration
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(pairs: &[(u32, u32)]) -> HashSet<PairKey> {
        pairs.iter().map(|&(a, b)| PairKey::new(a, b)).collect()
    }

    #[test]
    fn perfect_prediction() {
        let gold = keys(&[(0, 0), (1, 1)]);
        let m = evaluate(&gold.clone(), &gold);
        assert_eq!(m.precision, 1.0);
        assert_eq!(m.recall, 1.0);
        assert_eq!(m.f1, 1.0);
    }

    #[test]
    fn half_precision_full_recall() {
        let gold = keys(&[(0, 0)]);
        let pred = keys(&[(0, 0), (1, 1)]);
        let m = evaluate(&pred, &gold);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 1.0);
        assert!((m.f1 - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_prediction_is_zero() {
        let gold = keys(&[(0, 0)]);
        let m = evaluate(&HashSet::new(), &gold);
        assert_eq!(m.precision, 0.0);
        assert_eq!(m.recall, 0.0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn from_counts_handles_zero_denominators() {
        let m = Prf::from_counts(0, 0, 0);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn blocking_recall_counts_retained_gold() {
        let gold = keys(&[(0, 0), (1, 1), (2, 2), (3, 3)]);
        let umbrella = keys(&[(0, 0), (1, 1), (2, 2), (9, 9)]);
        assert_eq!(blocking_recall(&umbrella, &gold), 0.75);
        assert_eq!(blocking_recall(&umbrella, &HashSet::new()), 1.0);
    }
}
