//! The Accuracy Estimator (paper §6): crowd-based estimation of the
//! matcher's precision and recall to a target error margin.
//!
//! Naive random sampling breaks down on skewed EM universes — estimating
//! recall to ±0.025 needs ~984 *actual positives* in the sample (§6.1),
//! which at a 0.06% positive density means labeling hundreds of thousands
//! of pairs. The estimator instead runs a **probe–eval–reduce** loop
//! (§6.2): sample a little; if the margins are still too wide, consider
//! executing *reduction rules* (crowd-validated negative rules extracted
//! from the matcher's own forest) that shrink the population and raise its
//! positive density; re-optimize after every partial execution, exactly
//! like mid-query re-optimization in an RDBMS.
//!
//! ## Accounting for reduction
//!
//! Reduction rules are assumed (and crowd-verified to be ≥ `P_min`)
//! precise, so examples they remove are *actual negatives*:
//!
//! * recall over the reduced set equals overall recall (no actual
//!   positives are removed);
//! * predicted positives that get removed are *certain false positives*,
//!   so overall precision is the in-set precision scaled by
//!   `pp_active / pp_total`.

use crate::candidates::CandidateSet;
use crate::config::EstimatorConfig;
use crate::env::RunEnv;
use crate::metrics::Prf;
use crate::ruleeval::{evaluate_rules_jointly, select_top_rules, RuleEvalConfig, ScoredRule};
use crowd::stats::{fpc_margin, required_sample_size, z_for_confidence};
use crowd::{CrowdPlatform, PairKey, TruthOracle};
use forest::{negative_rules, RandomForest};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The estimator's output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyEstimate {
    /// Estimated precision over the full candidate set.
    pub precision: f64,
    /// Estimated recall.
    pub recall: f64,
    /// F1 of the two estimates.
    pub f1: f64,
    /// Error margin on precision.
    pub eps_p: f64,
    /// Error margin on recall.
    pub eps_r: f64,
    /// Reduction rules executed (kept by crowd evaluation).
    pub rules_used: usize,
    /// Probe-eval-reduce rounds executed.
    pub rounds: usize,
    /// Uniform sample labels consumed (|X|).
    pub sample_labels: usize,
    /// Pairs labeled by the crowd during estimation (ledger delta).
    pub pairs_labeled: u64,
    /// Crowd spend during estimation, in cents.
    pub cost_cents: f64,
    /// Whether both margins reached `ε_max`.
    pub converged: bool,
}

impl AccuracyEstimate {
    /// The `(P, R, F1)` triple.
    pub fn prf(&self) -> Prf {
        Prf::new(self.precision, self.recall)
    }
}

struct SampleStats {
    n: usize,
    n_pp: usize,
    n_tp: usize,
    n_ap: usize,
}

fn sample_stats(x: &HashMap<usize, bool>, predictions: &[bool]) -> SampleStats {
    let mut s = SampleStats { n: 0, n_pp: 0, n_tp: 0, n_ap: 0 };
    for (&i, &label) in x { // lint:allow(D2): order-free integer counting; no float accumulation, no serialization

        s.n += 1;
        if predictions[i] {
            s.n_pp += 1;
            if label {
                s.n_tp += 1;
            }
        }
        if label {
            s.n_ap += 1;
        }
    }
    s
}

/// Estimate the accuracy of `predictions` over `cand` (paper §6.2).
///
/// * `matcher_forest` — the trained matcher, source of the candidate
///   reduction rules.
/// * `known_labels` — crowd labels already gathered by earlier phases
///   (active learning, rule evaluation). They are *not* mixed into the
///   uniform estimation sample (they were selected non-uniformly) but are
///   used for the rules' precision upper bounds, and make cache hits free.
#[allow(clippy::too_many_arguments)]
pub fn estimate_accuracy(
    cand: &CandidateSet,
    predictions: &[bool],
    matcher_forest: &RandomForest,
    known_labels: &HashMap<usize, bool>,
    platform: &mut CrowdPlatform,
    oracle: &dyn TruthOracle,
    cfg: &EstimatorConfig,
    rng: &mut StdRng,
    env: &RunEnv<'_>,
) -> AccuracyEstimate {
    assert_eq!(predictions.len(), cand.len(), "one prediction per candidate");
    let z = z_for_confidence(cfg.confidence);
    let ledger_start = *platform.ledger();
    let pp_total = predictions.iter().filter(|&&p| p).count();

    // Degenerate matcher: nothing predicted positive ⇒ precision is
    // vacuous and recall is exactly 0 (no sampling needed).
    if pp_total == 0 {
        return AccuracyEstimate {
            precision: 0.0,
            recall: 0.0,
            f1: 0.0,
            eps_p: 0.0,
            eps_r: 0.0,
            rules_used: 0,
            rounds: 0,
            sample_labels: 0,
            pairs_labeled: 0,
            cost_cents: 0.0,
            converged: true,
        };
    }

    // Candidate reduction rules: top-k negative rules of the matcher's
    // forest by precision upper bound (§6.2 step 1) — *not* yet evaluated.
    let known_pos: HashSet<usize> = known_labels
        .iter() // lint:allow(D2): order-free map-to-set projection used only for membership tests
        .filter_map(|(&i, &l)| l.then_some(i))
        .collect();
    let mut remaining: Vec<ScoredRule> = select_top_rules(
        negative_rules(matcher_forest),
        cand,
        None,
        &known_pos,
        cfg.k_rules,
        env.threads,
    );

    let mut active: Vec<usize> = (0..cand.len()).collect();
    let mut active_set: HashSet<usize> = active.iter().copied().collect();
    let mut x: HashMap<usize, bool> = HashMap::new();
    let key_to_idx: HashMap<PairKey, usize> = cand
        .pairs()
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i))
        .collect();

    let mut rules_used = 0usize;
    let mut rounds = 0usize;
    let mut converged = false;
    let mut final_p = 0.0;
    let mut final_r = 0.0;
    let mut final_eps_p = f64::INFINITY;
    let mut final_eps_r = f64::INFINITY;

    while rounds < cfg.max_rounds {
        rounds += 1;
        if let Some(cap) = cfg.budget_cents_cap {
            if platform.ledger().total_cents >= cap {
                break;
            }
        }

        // --- Probe: extend the uniform sample over the active set.
        let mut unsampled: Vec<usize> = active
            .iter()
            .copied()
            .filter(|i| !x.contains_key(i))
            .collect();
        if !unsampled.is_empty() {
            unsampled.shuffle(rng);
            unsampled.truncate(cfg.probe_batch);
            let keys: Vec<PairKey> = unsampled.iter().map(|&i| cand.pair(i)).collect();
            for (key, label) in platform.label_batch(oracle, &keys, cfg.scheme) {
                x.insert(key_to_idx[&key], label);
            }
        }

        // --- Estimate with the current sample.
        let pp_active = active.iter().filter(|&&i| predictions[i]).count();
        let s = sample_stats(&x, predictions);
        let scale = pp_active as f64 / pp_total as f64;
        // Margins use Laplace-smoothed proportions: at p̂ ∈ {0, 1} the
        // plain normal margin is 0 and a single lucky sample would
        // "converge" the estimate.
        let (p_in, eps_p_in) = if s.n_pp > 0 {
            let p = s.n_tp as f64 / s.n_pp as f64;
            let p_s = (s.n_tp as f64 + 1.0) / (s.n_pp as f64 + 2.0);
            (p, fpc_margin(p_s, s.n_pp, pp_active, z))
        } else {
            (0.0, f64::INFINITY)
        };
        let (r, eps_r) = if s.n_ap > 0 {
            let r = s.n_tp as f64 / s.n_ap as f64;
            let r_s = (s.n_tp as f64 + 1.0) / (s.n_ap as f64 + 2.0);
            let d_hat = s.n_ap as f64 / s.n as f64;
            let ap_active_est = ((d_hat * active.len() as f64).round() as usize).max(s.n_ap);
            (r, fpc_margin(r_s, s.n_ap, ap_active_est, z))
        } else {
            (0.0, f64::INFINITY)
        };
        final_p = p_in * scale;
        final_eps_p = eps_p_in * scale;
        final_r = r;
        final_eps_r = eps_r;

        if final_eps_p <= cfg.eps_max && final_eps_r <= cfg.eps_max && s.n_pp > 0 && s.n_ap > 0
        {
            converged = true;
            break;
        }
        if x.len() >= active.len() {
            // Sample exhausted the population: estimates are exact.
            converged = true;
            break;
        }
        if x.len() >= cfg.max_labels {
            break;
        }

        // --- Enumerate options: execute the first j of the ranked
        // remaining rules (j = 0 means "just keep sampling"), choosing the
        // cheapest by (rule evaluation labels) + (projected sampling
        // labels) (§6.2 step 2).
        let d_hat = if s.n > 0 && s.n_ap > 0 {
            s.n_ap as f64 / s.n as f64
        } else {
            // No positives observed yet: assume extreme skew.
            1.0 / (active.len() as f64).max(2.0)
        };
        let r_guess = if s.n_ap > 0 { r.clamp(0.1, 0.9) } else { 0.5 };
        let p_guess = if s.n_pp > 0 { p_in.clamp(0.1, 0.9) } else { 0.5 };

        let coverages: Vec<Vec<usize>> = exec::par_map(env.threads, &remaining, |sr| {
            sr.coverage
                .iter()
                .copied()
                .filter(|i| active_set.contains(i))
                .collect()
        });

        let sampling_labels = |active_len: usize, pp_len: usize, ap_est: f64, have: usize| {
            if active_len == 0 {
                return usize::MAX / 4;
            }
            let d = (ap_est / active_len as f64).clamp(1e-9, 1.0);
            let n_ap_needed = required_sample_size(r_guess, ap_est.round().max(1.0) as usize, z, cfg.eps_max);
            let labels_for_recall = (n_ap_needed as f64 / d).ceil() as usize;
            let pp_frac = (pp_len as f64 / active_len as f64).clamp(1e-9, 1.0);
            let n_pp_needed = required_sample_size(p_guess, pp_len.max(1), z, cfg.eps_max);
            let labels_for_precision = (n_pp_needed as f64 / pp_frac).ceil() as usize;
            labels_for_recall
                .max(labels_for_precision)
                .saturating_sub(have)
                .min(active_len)
        };

        let ap_active_est = (d_hat * active.len() as f64).max(1.0);
        let mut best_j = 0usize;
        let mut best_cost =
            sampling_labels(active.len(), pp_active, ap_active_est, x.len()) as f64;
        let mut eval_cost_acc = 0.0;
        let mut removed_union: HashSet<usize> = HashSet::new();
        for j in 1..=remaining.len() {
            let sr = &remaining[j - 1];
            let cov = &coverages[j - 1];
            // Cost of evaluating this rule's precision to ε_max.
            eval_cost_acc +=
                required_sample_size(cfg.p_min(), cov.len().max(1), z, cfg.eps_max) as f64;
            removed_union.extend(cov.iter().copied());
            let _ = sr;
            let active_after = active.len().saturating_sub(removed_union.len());
            let pp_after = active
                .iter()
                .filter(|&&i| predictions[i] && !removed_union.contains(&i))
                .count();
            let have_after = x.keys().filter(|i| !removed_union.contains(i)).count(); // lint:allow(D2): order-free count; no floats touched during iteration
            // Assuming precise rules, all actual positives stay.
            let cost = eval_cost_acc
                + sampling_labels(active_after, pp_after, ap_active_est, have_after) as f64;
            if cost < best_cost {
                best_cost = cost;
                best_j = j;
            }
        }

        if best_j == 0 || remaining.is_empty() {
            continue; // keep sampling
        }

        // --- Partially evaluate the selected option: crowd-evaluate the
        // chosen rules, execute the good ones, then re-optimize (§6.2
        // step 3).
        let chosen: Vec<ScoredRule> = remaining
            .drain(..best_j)
            .map(|sr| ScoredRule {
                coverage: sr
                    .coverage
                    .iter()
                    .copied()
                    .filter(|i| active_set.contains(i))
                    .collect(),
                ..sr
            })
            .filter(|sr| !sr.coverage.is_empty())
            .collect();
        let mut eval_pool: HashMap<usize, bool> = known_labels.clone();
        eval_pool.extend(x.iter().map(|(&i, &l)| (i, l))); // lint:allow(D2): order-free map-to-map merge; insertion order does not affect map contents
        let eval_cfg = RuleEvalConfig {
            eps_max: cfg.eps_max,
            confidence: cfg.confidence,
            scheme: cfg.scheme,
            // Rule evaluation is part of the estimation phase: it must
            // honor the same cumulative ledger cap, or it can spend far
            // past the phase budget in a single call.
            budget_cents_cap: cfg.budget_cents_cap,
            ..Default::default()
        };
        let evaluated = evaluate_rules_jointly(
            chosen, cand, platform, oracle, &eval_cfg, rng, &mut eval_pool,
        );
        for er in evaluated.iter().filter(|e| e.kept) {
            rules_used += 1;
            for &i in &er.coverage {
                active_set.remove(&i);
            }
        }
        active.retain(|i| active_set.contains(i));
        // Keep the uniform sample consistent with the reduced population:
        // conditioning a uniform sample on membership stays uniform.
        x.retain(|i, _| active_set.contains(i)); // lint:allow(D2): pure membership predicate; retain outcome is order-independent
        if active.is_empty() {
            break;
        }
    }

    let ledger_end = *platform.ledger();
    AccuracyEstimate {
        precision: final_p,
        recall: final_r,
        f1: Prf::new(final_p, final_r).f1,
        eps_p: final_eps_p,
        eps_r: final_eps_r,
        rules_used,
        rounds,
        sample_labels: x.len(),
        pairs_labeled: ledger_end.pairs_labeled - ledger_start.pairs_labeled,
        cost_cents: ledger_end.total_cents - ledger_start.total_cents,
        converged,
    }
}

impl EstimatorConfig {
    /// Minimum precision for reduction rules (same standard as blocking
    /// rules, §4.2).
    fn p_min(&self) -> f64 {
        0.95
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MatcherConfig;
    use crate::learner::run_active_learning;
    use crate::task::{task_from_parts, MatchTask};
    use crate::CandidateSet;
    use crowd::{CrowdConfig, GoldOracle, WorkerPool};
    use rand::SeedableRng;
    use similarity::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    /// 40×50 task, diagonal matches; matcher trained by AL.
    fn setup() -> (MatchTask, GoldOracle, CandidateSet, RandomForest, Vec<bool>, HashMap<usize, bool>, CrowdPlatform)
    {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let a_rows: Vec<Vec<Value>> = (0..40)
            .map(|i| vec![Value::Text(format!("gadget model {i}"))])
            .collect();
        let mut b_rows: Vec<Vec<Value>> = (0..40)
            .map(|i| vec![Value::Text(format!("gadget model {i}"))])
            .collect();
        b_rows.extend((0..10).map(|i| vec![Value::Text(format!("doohickey mk {i}"))]));
        let a = Table::new("a", schema.clone(), a_rows);
        let b = Table::new("b", schema, b_rows);
        let task = task_from_parts(a, b, "same?", [(0, 0), (1, 1)], [(0, 45), (2, 47)]);
        let gold = GoldOracle::from_pairs((0..40).map(|i| (i, i)));
        let cand = CandidateSet::full_cartesian(&task);
        let seeds: Vec<(Vec<f64>, bool)> = task
            .seeds
            .iter()
            .map(|&(k, l)| (task.vectorize(k), l))
            .collect();
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let mut rng = StdRng::seed_from_u64(21);
        let mcfg = MatcherConfig {
            max_iterations: 25,
            stopping: crate::config::StoppingConfig {
                n_converged: 8,
                n_degrade: 6,
                ..Default::default()
            },
            ..Default::default()
        };
        let learn = run_active_learning(
            &cand,
            &seeds,
            &mut platform,
            &gold,
            &mcfg,
            &mut rng,
            exec::Threads::new(2),
        );
        let predictions: Vec<bool> =
            (0..cand.len()).map(|i| learn.forest.predict(cand.row(i))).collect();
        let known: HashMap<usize, bool> = learn.crowd_labels().collect();
        (task, gold, cand, learn.forest, predictions, known, platform)
    }

    #[test]
    fn estimate_tracks_true_accuracy() {
        let (_, gold, cand, forest, predictions, known, mut platform) = setup();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = EstimatorConfig { eps_max: 0.1, ..Default::default() };
        let est = estimate_accuracy(
            &cand,
            &predictions,
            &forest,
            &known,
            &mut platform,
            &gold,
            &cfg,
            &mut rng,
            &RunEnv::default(),
        );
        // True metrics.
        let mut tp = 0;
        let mut pp = 0;
        for (i, &pred) in predictions.iter().enumerate() {
            if pred {
                pp += 1;
                if gold.true_label(cand.pair(i)) {
                    tp += 1;
                }
            }
        }
        let true_p = tp as f64 / pp.max(1) as f64;
        let true_r = tp as f64 / 40.0;
        assert!(
            (est.precision - true_p).abs() <= 0.15,
            "estimated P {} vs true {}",
            est.precision,
            true_p
        );
        assert!(
            (est.recall - true_r).abs() <= 0.15,
            "estimated R {} vs true {}",
            est.recall,
            true_r
        );
        assert!(est.rounds > 0);
        assert!(est.cost_cents > 0.0);
    }

    #[test]
    fn no_positive_predictions_short_circuits() {
        let (_, gold, cand, forest, _, known, mut platform) = setup();
        let predictions = vec![false; cand.len()];
        let mut rng = StdRng::seed_from_u64(6);
        let est = estimate_accuracy(
            &cand,
            &predictions,
            &forest,
            &known,
            &mut platform,
            &gold,
            &EstimatorConfig::default(),
            &mut rng,
            &RunEnv::default(),
        );
        assert!(est.converged);
        assert_eq!(est.recall, 0.0);
        assert_eq!(est.cost_cents, 0.0);
    }

    #[test]
    fn estimator_uses_far_fewer_labels_than_population() {
        let (_, gold, cand, forest, predictions, known, mut platform) = setup();
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = EstimatorConfig { eps_max: 0.1, ..Default::default() };
        let est = estimate_accuracy(
            &cand,
            &predictions,
            &forest,
            &known,
            &mut platform,
            &gold,
            &cfg,
            &mut rng,
            &RunEnv::default(),
        );
        assert!(
            (est.sample_labels as f64) < 0.7 * cand.len() as f64,
            "sampled {} of {}",
            est.sample_labels,
            cand.len()
        );
    }

    #[test]
    fn respects_label_budget() {
        let (_, gold, cand, forest, predictions, known, mut platform) = setup();
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = EstimatorConfig {
            eps_max: 0.001, // unreachable margin
            max_labels: 120,
            max_rounds: 50,
            ..Default::default()
        };
        let est = estimate_accuracy(
            &cand,
            &predictions,
            &forest,
            &known,
            &mut platform,
            &gold,
            &cfg,
            &mut rng,
            &RunEnv::default(),
        );
        // Either the budget stopped the loop, or reduction shrank the
        // population enough for the sample to exhaust it — in both cases
        // the uniform sample stays bounded by budget + one probe batch.
        assert!(
            est.sample_labels <= 120 + cfg.probe_batch,
            "sampled {}",
            est.sample_labels
        );
    }
}
