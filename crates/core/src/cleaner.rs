//! Crowd-based model cleaning — the paper's §10 extension.
//!
//! > "Our work however raises the possibility that crowdsourcing can also
//! > help 'clean' learning models, such as finding and removing 'bad'
//! > positive/negative rules from a random forest."
//!
//! Every prediction a random forest makes is, per tree, the verdict of
//! exactly one root→leaf rule. If the crowd can certify rules (as the
//! Blocker already does), it can also *condemn* them: a rule whose
//! crowd-estimated precision is poor marks a region where its tree is
//! systematically wrong — usually the footprint of noisy training labels.
//!
//! [`clean_forest`] crowd-audits the most suspicious rules (lowest
//! precision upper bound first, among rules with non-trivial coverage)
//! and returns a [`CleanedForest`] in which a tree **abstains** whenever
//! the rule that would decide a pair has been condemned; the remaining
//! trees vote as usual. This is deliberately conservative: cleaning never
//! invents new structure, it only silences regions the crowd showed to be
//! wrong.

use crate::candidates::CandidateSet;
use crate::ruleeval::{evaluate_rules_jointly, RuleEvalConfig, ScoredRule};
use crowd::{CrowdPlatform, TruthOracle};
use forest::{rules::extract_tree_rules, RandomForest, Rule};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Configuration for model cleaning.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CleanerConfig {
    /// Maximum rules to audit (cheapest-first protection of the budget).
    pub k_rules: usize,
    /// Ignore rules covering fewer candidates than this — condemning a
    /// tiny-footprint rule cannot change predictions materially.
    pub min_coverage: usize,
    /// Precision/margin standards for the audit.
    pub eval: RuleEvalConfig,
}

impl Default for CleanerConfig {
    fn default() -> Self {
        CleanerConfig {
            k_rules: 20,
            min_coverage: 10,
            eval: RuleEvalConfig::default(),
        }
    }
}

/// What the cleaner did.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CleaningReport {
    /// Rules audited by the crowd.
    pub rules_audited: usize,
    /// Rules condemned (precision below the standard).
    pub rules_condemned: usize,
    /// Pairs labeled during the audit.
    pub pairs_labeled: u64,
    /// Crowd spend in cents.
    pub cost_cents: f64,
}

/// A forest with crowd-condemned rules disabled.
#[derive(Debug, Clone)]
pub struct CleanedForest {
    forest: RandomForest,
    /// Rules per tree, in [`extract_tree_rules`] order.
    tree_rules: Vec<Vec<Rule>>,
    /// Condemned `(tree, rule index)` pairs.
    condemned: HashSet<(usize, usize)>,
}

impl CleanedForest {
    /// Wrap a forest with no condemned rules (predicts identically).
    pub fn pristine(forest: RandomForest) -> Self {
        let tree_rules = forest
            .trees()
            .iter()
            .enumerate()
            .map(|(ti, t)| extract_tree_rules(t, ti))
            .collect();
        CleanedForest { forest, tree_rules, condemned: HashSet::new() }
    }

    /// Number of condemned rules.
    pub fn n_condemned(&self) -> usize {
        self.condemned.len()
    }

    /// The underlying forest.
    pub fn forest(&self) -> &RandomForest {
        &self.forest
    }

    /// Fraction of *non-abstaining* trees voting positive; `None` when
    /// every tree abstains.
    pub fn positive_fraction(&self, x: &[f64]) -> Option<f64> {
        let mut votes = 0usize;
        let mut pos = 0usize;
        for (ti, rules) in self.tree_rules.iter().enumerate() {
            let ri = rules
                .iter()
                .position(|r| r.matches(x))
                .expect("tree rules partition the feature space");
            if self.condemned.contains(&(ti, ri)) {
                continue;
            }
            votes += 1;
            if rules[ri].label {
                pos += 1;
            }
        }
        (votes > 0).then(|| pos as f64 / votes as f64)
    }

    /// Majority vote over non-abstaining trees; falls back to the raw
    /// forest when every tree abstains.
    pub fn predict(&self, x: &[f64]) -> bool {
        match self.positive_fraction(x) {
            Some(f) => f >= 0.5,
            None => self.forest.predict(x),
        }
    }
}

/// Crowd-audit the forest's most suspicious rules over `cand` and condemn
/// the bad ones (paper §10's "cleaning learning models").
///
/// `known_labels` are prior crowd labels (candidate index → label), used
/// both to rank suspicion (upper-bound precision) and as free evidence.
#[allow(clippy::too_many_arguments)]
pub fn clean_forest(
    forest: &RandomForest,
    cand: &CandidateSet,
    known_labels: &HashMap<usize, bool>,
    platform: &mut CrowdPlatform,
    oracle: &dyn TruthOracle,
    cfg: &CleanerConfig,
    rng: &mut StdRng,
) -> (CleanedForest, CleaningReport) {
    let ledger_start = *platform.ledger();
    let mut cleaned = CleanedForest::pristine(forest.clone());

    // Rank every sufficiently covering rule by upper-bound precision,
    // most suspicious (lowest bound) first.
    struct Suspect {
        tree: usize,
        rule_idx: usize,
        scored: ScoredRule,
    }
    let mut suspects: Vec<Suspect> = Vec::new();
    for (ti, rules) in cleaned.tree_rules.iter().enumerate() {
        for (ri, rule) in rules.iter().enumerate() {
            let coverage: Vec<usize> = (0..cand.len())
                .filter(|&i| rule.matches(cand.row(i)))
                .collect();
            if coverage.len() < cfg.min_coverage {
                continue;
            }
            let violations = coverage
                .iter()
                .filter(|i| known_labels.get(i).is_some_and(|&l| l != rule.label))
                .count();
            let ub = (coverage.len() - violations) as f64 / coverage.len() as f64;
            suspects.push(Suspect {
                tree: ti,
                rule_idx: ri,
                scored: ScoredRule { rule: rule.clone(), coverage, ub_precision: ub },
            });
        }
    }
    suspects.sort_by(|a, b| a.scored.ub_precision.total_cmp(&b.scored.ub_precision));
    suspects.truncate(cfg.k_rules);

    let mut label_pool = known_labels.clone();
    let scored: Vec<ScoredRule> = suspects.iter().map(|s| s.scored.clone()).collect();
    let evaluated = evaluate_rules_jointly(
        scored,
        cand,
        platform,
        oracle,
        &cfg.eval,
        rng,
        &mut label_pool,
    );
    let mut condemned = 0usize;
    for (suspect, eval) in suspects.iter().zip(&evaluated) {
        if !eval.kept {
            cleaned.condemned.insert((suspect.tree, suspect.rule_idx));
            condemned += 1;
        }
    }

    let ledger_end = *platform.ledger();
    let report = CleaningReport {
        rules_audited: evaluated.len(),
        rules_condemned: condemned,
        pairs_labeled: ledger_end.pairs_labeled - ledger_start.pairs_labeled,
        cost_cents: ledger_end.total_cents - ledger_start.total_cents,
    };
    (cleaned, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{task_from_parts, MatchTask};
    use crowd::{CrowdConfig, GoldOracle, WorkerPool};
    use forest::{Dataset, ForestConfig};
    use rand::{Rng, SeedableRng};
    use similarity::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    fn toy() -> (MatchTask, GoldOracle, CandidateSet) {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let rows: Vec<Vec<Value>> = (0..25)
            .map(|i| vec![Value::Text(format!("sensor unit {i}"))])
            .collect();
        let a = Table::new("a", schema.clone(), rows.clone());
        let b = Table::new("b", schema, rows);
        let task = task_from_parts(a, b, "same?", [(0, 0), (1, 1)], [(0, 24), (2, 20)]);
        let gold = GoldOracle::from_pairs((0..25).map(|i| (i, i)));
        let cand = CandidateSet::full_cartesian(&task);
        (task, gold, cand)
    }

    /// Train a forest on labels with injected noise so some leaves are
    /// systematically wrong.
    fn noisy_forest(cand: &CandidateSet, gold: &GoldOracle, flip: f64, seed: u64) -> RandomForest {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ds = Dataset::new(cand.n_features());
        for i in 0..cand.len() {
            let mut label = gold.true_label(cand.pair(i));
            // Flip positives with the given probability (one-sided noise
            // creates consistently bad "no" regions).
            if label && rng.gen_bool(flip) {
                label = false;
            }
            ds.push(cand.row(i), label);
        }
        RandomForest::train_all(&ds, &ForestConfig::default(), &mut rng)
    }

    #[test]
    fn pristine_wrapper_predicts_identically() {
        let (_, gold, cand) = toy();
        let forest = noisy_forest(&cand, &gold, 0.0, 1);
        let cleaned = CleanedForest::pristine(forest.clone());
        for i in 0..cand.len() {
            assert_eq!(cleaned.predict(cand.row(i)), forest.predict(cand.row(i)));
        }
        assert_eq!(cleaned.n_condemned(), 0);
    }

    #[test]
    fn cleaning_improves_a_model_trained_on_noisy_labels() {
        let (_, gold, cand) = toy();
        let forest = noisy_forest(&cand, &gold, 0.5, 3);
        let accuracy = |predict: &dyn Fn(&[f64]) -> bool| {
            (0..cand.len())
                .filter(|&i| predict(cand.row(i)) == gold.true_label(cand.pair(i)))
                .count() as f64
                / cand.len() as f64
        };
        let before = accuracy(&|x| forest.predict(x));

        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = CleanerConfig {
            min_coverage: 3,
            eval: RuleEvalConfig { p_min: 0.9, ..Default::default() },
            ..Default::default()
        };
        let (cleaned, report) = clean_forest(
            &forest,
            &cand,
            &HashMap::new(),
            &mut platform,
            &gold,
            &cfg,
            &mut rng,
        );
        let after = accuracy(&|x| cleaned.predict(x));
        assert!(report.rules_audited > 0);
        assert!(
            after >= before,
            "cleaning must not hurt: before {before}, after {after}"
        );
        assert!(report.cost_cents > 0.0);
    }

    #[test]
    fn clean_model_stays_untouched() {
        let (_, gold, cand) = toy();
        let forest = noisy_forest(&cand, &gold, 0.0, 5);
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let mut rng = StdRng::seed_from_u64(6);
        let (cleaned, report) = clean_forest(
            &forest,
            &cand,
            &HashMap::new(),
            &mut platform,
            &gold,
            &CleanerConfig { min_coverage: 3, ..Default::default() },
            &mut rng,
        );
        assert_eq!(
            report.rules_condemned, 0,
            "a noise-free model has no bad rules to condemn"
        );
        for i in (0..cand.len()).step_by(7) {
            assert_eq!(cleaned.predict(cand.row(i)), forest.predict(cand.row(i)));
        }
    }

    #[test]
    fn abstention_falls_back_to_forest() {
        let (_, gold, cand) = toy();
        let forest = noisy_forest(&cand, &gold, 0.0, 7);
        let mut cleaned = CleanedForest::pristine(forest.clone());
        // Condemn every rule of every tree manually.
        let all: Vec<(usize, usize)> = cleaned
            .tree_rules
            .iter()
            .enumerate()
            .flat_map(|(ti, rs)| (0..rs.len()).map(move |ri| (ti, ri)))
            .collect();
        cleaned.condemned.extend(all);
        let x = cand.row(0);
        assert!(cleaned.positive_fraction(x).is_none());
        assert_eq!(cleaned.predict(x), forest.predict(x));
    }
}
