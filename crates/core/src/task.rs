//! The hands-off task description: exactly what a Corleone user supplies
//! (paper §3) — two tables, a matching instruction, and four seed examples.

use crowd::PairKey;
use exec::Threads;
use serde::{Deserialize, Serialize};
use similarity::{FeatureVectorizer, Table, TaskAnalysis};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Snapshot of the task's feature-kernel counters (see [`AnalysisCell`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelCounters {
    /// Full pair vectorizations requested through [`MatchTask::vectorize`].
    pub pairs_vectorized: u64,
    /// Single-feature evaluations through [`MatchTask::feature`] (the
    /// blocker's lazy rule-application path).
    pub single_features: u64,
    /// Individual feature values computed via the precomputed-analysis
    /// kernels.
    pub features_pre: u64,
    /// Individual feature values computed via the string-based reference
    /// kernels (analysis not built yet).
    pub features_string: u64,
}

impl KernelCounters {
    /// Counter increments since `start` (for per-run reporting on a task
    /// that may be shared across runs).
    pub fn delta(&self, start: &KernelCounters) -> KernelCounters {
        KernelCounters {
            pairs_vectorized: self.pairs_vectorized - start.pairs_vectorized,
            single_features: self.single_features - start.single_features,
            features_pre: self.features_pre - start.features_pre,
            features_string: self.features_string - start.features_string,
        }
    }
}

/// Lazily-built, never-serialized holder of a task's precomputed
/// [`TaskAnalysis`] plus kernel counters.
///
/// The analysis is **derived state**: it is a pure function of the tables
/// and the fitted vectorizer, so snapshots must not carry it (it is
/// rebuilt on resume, like the feature matrix). The vendored serde derive
/// has no field-skipping, so this type implements `Serialize` as JSON
/// `null` and `Deserialize` as an empty cell by hand.
#[derive(Default)]
pub struct AnalysisCell {
    cell: OnceLock<Arc<TaskAnalysis>>,
    pairs_vectorized: AtomicU64,
    single_features: AtomicU64,
    features_pre: AtomicU64,
    features_string: AtomicU64,
}

impl AnalysisCell {
    /// The built analysis, if any.
    pub fn get(&self) -> Option<&TaskAnalysis> {
        self.cell.get().map(|a| a.as_ref())
    }

    /// Batched counter add for single-feature evaluations: hot loops
    /// count locally and flush one atomic add per work item instead of
    /// contending on the shared counters once per feature.
    pub fn note_single_features(&self, n_pre: u64, n_string: u64) {
        self.single_features.fetch_add(n_pre + n_string, Ordering::Relaxed);
        if n_pre > 0 {
            self.features_pre.fetch_add(n_pre, Ordering::Relaxed);
        }
        if n_string > 0 {
            self.features_string.fetch_add(n_string, Ordering::Relaxed);
        }
    }

    /// Install a prebuilt analysis handle (the shared-registry path:
    /// another task with the same content fingerprint already built it).
    /// Returns `false` — and changes nothing — if this cell was already
    /// populated.
    pub fn install(&self, analysis: Arc<TaskAnalysis>) -> bool {
        self.cell.set(analysis).is_ok()
    }

    /// The built analysis as a shareable handle, if any.
    pub fn shared(&self) -> Option<Arc<TaskAnalysis>> {
        self.cell.get().cloned()
    }

    /// Current counter values.
    pub fn counters(&self) -> KernelCounters {
        KernelCounters {
            pairs_vectorized: self.pairs_vectorized.load(Ordering::Relaxed),
            single_features: self.single_features.load(Ordering::Relaxed),
            features_pre: self.features_pre.load(Ordering::Relaxed),
            features_string: self.features_string.load(Ordering::Relaxed),
        }
    }
}

impl Clone for AnalysisCell {
    fn clone(&self) -> Self {
        let cell = OnceLock::new();
        if let Some(a) = self.cell.get() {
            let _ = cell.set(Arc::clone(a));
        }
        let c = self.counters();
        AnalysisCell {
            cell,
            pairs_vectorized: AtomicU64::new(c.pairs_vectorized),
            single_features: AtomicU64::new(c.single_features),
            features_pre: AtomicU64::new(c.features_pre),
            features_string: AtomicU64::new(c.features_string),
        }
    }
}

impl std::fmt::Debug for AnalysisCell {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisCell")
            .field("built", &self.cell.get().is_some())
            .field("counters", &self.counters())
            .finish()
    }
}

impl serde::Serialize for AnalysisCell {
    fn to_json_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

impl serde::Deserialize for AnalysisCell {
    fn from_json_value(_v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(AnalysisCell::default())
    }
}

/// A hands-off EM task. Constructing one fits the feature vectorizer
/// (feature library + per-attribute TF/IDF corpora) over both tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchTask {
    /// Table A (conventionally the smaller one).
    pub table_a: Table,
    /// Table B.
    pub table_b: Table,
    /// Short textual instruction to the crowd (§3 item 2).
    pub instruction: String,
    /// The four labeled seed examples (§3 item 3): two positive, two
    /// negative.
    pub seeds: Vec<(PairKey, bool)>,
    /// Fitted vectorizer for this task.
    pub vectorizer: FeatureVectorizer,
    /// Lazily-built record-analysis layer (derived state; serialized as
    /// `null` and rebuilt on demand after deserialization).
    pub analysis: AnalysisCell, // lint:allow(D9): derived cache, recomputed from records on first use after resume; counters are observability-only and never reach report bytes
}

impl MatchTask {
    /// Build a task. Fits the vectorizer over both tables.
    ///
    /// # Panics
    /// Panics if the tables do not share a schema or the seed examples are
    /// not two positive and two negative pairs within the tables.
    pub fn new(
        table_a: Table,
        table_b: Table,
        instruction: impl Into<String>,
        seeds: Vec<(PairKey, bool)>,
    ) -> Self {
        assert_eq!(
            seeds.iter().filter(|(_, l)| *l).count(),
            2,
            "need exactly two positive seed examples"
        );
        assert_eq!(
            seeds.iter().filter(|(_, l)| !*l).count(),
            2,
            "need exactly two negative seed examples"
        );
        for (p, _) in &seeds {
            assert!(
                (p.a as usize) < table_a.len() && (p.b as usize) < table_b.len(),
                "seed pair {p:?} out of range"
            );
        }
        let vectorizer = FeatureVectorizer::fit(&table_a, &table_b);
        MatchTask {
            table_a,
            table_b,
            instruction: instruction.into(),
            seeds,
            vectorizer,
            analysis: AnalysisCell::default(),
        }
    }

    /// Build (once) and return the precomputed record-analysis layer.
    /// Subsequent [`Self::vectorize`] / [`Self::feature`] calls route
    /// through the allocation-free kernels; results are bit-identical
    /// either way, so mixing paths is safe.
    pub fn ensure_analysis(&self, threads: Threads) -> &TaskAnalysis {
        self.analysis
            .cell
            .get_or_init(|| {
                Arc::new(self.vectorizer.analyze(&self.table_a, &self.table_b, threads))
            })
            .as_ref()
    }

    /// Current feature-kernel counters (cumulative over the task's life).
    pub fn kernel_counters(&self) -> KernelCounters {
        self.analysis.counters()
    }

    /// Content address of this task's record-analysis layer: a hash of
    /// both tables and the fitted vectorizer — exactly the inputs
    /// [`Self::ensure_analysis`] is a pure function of. Two tasks with
    /// equal fingerprints produce bit-identical [`TaskAnalysis`], so a
    /// cross-tenant registry can hand one build to all of them.
    pub fn analysis_fingerprint(&self) -> Result<String, String> {
        let material = serde_json::to_string(&(&self.table_a, &self.table_b, &self.vectorizer))
            .map_err(|e| e.to_string())?;
        Ok(store::fingerprint64(material.as_bytes()))
    }

    /// Adopt a prebuilt analysis from another task with the same
    /// [`Self::analysis_fingerprint`]. Returns `false` if this task had
    /// already built (or adopted) one.
    pub fn install_analysis(&self, analysis: Arc<TaskAnalysis>) -> bool {
        self.analysis.install(analysis)
    }

    /// This task's analysis as a shareable handle, if built.
    pub fn shared_analysis(&self) -> Option<Arc<TaskAnalysis>> {
        self.analysis.shared()
    }

    /// `|A × B|`.
    pub fn cartesian_size(&self) -> u64 {
        self.table_a.len() as u64 * self.table_b.len() as u64
    }

    /// Number of features per pair vector.
    pub fn n_features(&self) -> usize {
        self.vectorizer.n_features()
    }

    /// Compute the full feature vector of a pair, through the precomputed
    /// analysis when it has been built (bit-identical either way).
    pub fn vectorize(&self, pair: PairKey) -> Vec<f64> {
        let a = self.table_a.record(pair.a);
        let b = self.table_b.record(pair.b);
        let n = self.n_features() as u64;
        self.analysis.pairs_vectorized.fetch_add(1, Ordering::Relaxed);
        match self.analysis.get() {
            Some(an) => {
                self.analysis.features_pre.fetch_add(n, Ordering::Relaxed);
                self.vectorizer.vectorize_pre(a, b, an)
            }
            None => {
                self.analysis.features_string.fetch_add(n, Ordering::Relaxed);
                self.vectorizer.vectorize(a, b)
            }
        }
    }

    /// Compute one feature of a pair (lazy path for blocking-rule
    /// application over `A × B`), through the precomputed analysis when
    /// it has been built.
    pub fn feature(&self, idx: usize, pair: PairKey) -> f64 {
        let a = self.table_a.record(pair.a);
        let b = self.table_b.record(pair.b);
        self.analysis.single_features.fetch_add(1, Ordering::Relaxed);
        match self.analysis.get() {
            Some(an) => {
                self.analysis.features_pre.fetch_add(1, Ordering::Relaxed);
                self.vectorizer.feature_pre(idx, a, b, an)
            }
            None => {
                self.analysis.features_string.fetch_add(1, Ordering::Relaxed);
                self.vectorizer.feature(idx, a, b)
            }
        }
    }

    /// Per-feature unit costs (for rule ranking, §4.3).
    pub fn feature_costs(&self) -> Vec<f64> {
        self.vectorizer.library().defs.iter().map(|d| d.cost()).collect()
    }

    /// Feature names (for rule display).
    pub fn feature_names(&self) -> Vec<String> {
        self.vectorizer.library().names()
    }
}

/// Build a [`MatchTask`] from a generated dataset-like bundle. Kept here so
/// examples and benches don't repeat the glue.
pub fn task_from_parts(
    table_a: Table,
    table_b: Table,
    instruction: &str,
    positive: [(u32, u32); 2],
    negative: [(u32, u32); 2],
) -> MatchTask {
    let seeds = positive
        .iter()
        .map(|&(a, b)| (PairKey::new(a, b), true))
        .chain(negative.iter().map(|&(a, b)| (PairKey::new(a, b), false)))
        .collect();
    MatchTask::new(table_a, table_b, instruction, seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use similarity::{Attribute, Schema, Value};
    use std::sync::Arc;

    fn tiny_task() -> MatchTask {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let rows_a: Vec<Vec<Value>> =
            (0..6).map(|i| vec![Value::Text(format!("item {i}"))]).collect();
        let rows_b: Vec<Vec<Value>> =
            (0..6).map(|i| vec![Value::Text(format!("item {i}"))]).collect();
        let a = Table::new("a", schema.clone(), rows_a);
        let b = Table::new("b", schema, rows_b);
        task_from_parts(a, b, "match same item", [(0, 0), (1, 1)], [(0, 5), (2, 4)])
    }

    #[test]
    fn task_wiring() {
        let t = tiny_task();
        assert_eq!(t.cartesian_size(), 36);
        assert_eq!(t.seeds.len(), 4);
        assert!(t.n_features() > 0);
        let v = t.vectorize(PairKey::new(0, 0));
        assert_eq!(v.len(), t.n_features());
        assert_eq!(t.feature(0, PairKey::new(0, 0)), v[0]);
        assert_eq!(t.feature_costs().len(), t.n_features());
        assert_eq!(t.feature_names().len(), t.n_features());
    }

    #[test]
    #[should_panic(expected = "two positive seed")]
    fn rejects_wrong_seed_balance() {
        let t = tiny_task();
        MatchTask::new(
            t.table_a.clone(),
            t.table_b.clone(),
            "x",
            vec![
                (PairKey::new(0, 0), true),
                (PairKey::new(1, 1), false),
                (PairKey::new(2, 2), false),
                (PairKey::new(3, 3), false),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_seed() {
        let t = tiny_task();
        MatchTask::new(
            t.table_a.clone(),
            t.table_b.clone(),
            "x",
            vec![
                (PairKey::new(0, 0), true),
                (PairKey::new(99, 1), true),
                (PairKey::new(2, 2), false),
                (PairKey::new(3, 3), false),
            ],
        );
    }
}
