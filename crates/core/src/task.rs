//! The hands-off task description: exactly what a Corleone user supplies
//! (paper §3) — two tables, a matching instruction, and four seed examples.

use crowd::PairKey;
use serde::{Deserialize, Serialize};
use similarity::{FeatureVectorizer, Table};

/// A hands-off EM task. Constructing one fits the feature vectorizer
/// (feature library + per-attribute TF/IDF corpora) over both tables.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MatchTask {
    /// Table A (conventionally the smaller one).
    pub table_a: Table,
    /// Table B.
    pub table_b: Table,
    /// Short textual instruction to the crowd (§3 item 2).
    pub instruction: String,
    /// The four labeled seed examples (§3 item 3): two positive, two
    /// negative.
    pub seeds: Vec<(PairKey, bool)>,
    /// Fitted vectorizer for this task.
    pub vectorizer: FeatureVectorizer,
}

impl MatchTask {
    /// Build a task. Fits the vectorizer over both tables.
    ///
    /// # Panics
    /// Panics if the tables do not share a schema or the seed examples are
    /// not two positive and two negative pairs within the tables.
    pub fn new(
        table_a: Table,
        table_b: Table,
        instruction: impl Into<String>,
        seeds: Vec<(PairKey, bool)>,
    ) -> Self {
        assert_eq!(
            seeds.iter().filter(|(_, l)| *l).count(),
            2,
            "need exactly two positive seed examples"
        );
        assert_eq!(
            seeds.iter().filter(|(_, l)| !*l).count(),
            2,
            "need exactly two negative seed examples"
        );
        for (p, _) in &seeds {
            assert!(
                (p.a as usize) < table_a.len() && (p.b as usize) < table_b.len(),
                "seed pair {p:?} out of range"
            );
        }
        let vectorizer = FeatureVectorizer::fit(&table_a, &table_b);
        MatchTask { table_a, table_b, instruction: instruction.into(), seeds, vectorizer }
    }

    /// `|A × B|`.
    pub fn cartesian_size(&self) -> u64 {
        self.table_a.len() as u64 * self.table_b.len() as u64
    }

    /// Number of features per pair vector.
    pub fn n_features(&self) -> usize {
        self.vectorizer.n_features()
    }

    /// Compute the full feature vector of a pair.
    pub fn vectorize(&self, pair: PairKey) -> Vec<f64> {
        self.vectorizer.vectorize(
            self.table_a.record(pair.a),
            self.table_b.record(pair.b),
        )
    }

    /// Compute one feature of a pair (lazy path for blocking-rule
    /// application over `A × B`).
    pub fn feature(&self, idx: usize, pair: PairKey) -> f64 {
        self.vectorizer.feature(
            idx,
            self.table_a.record(pair.a),
            self.table_b.record(pair.b),
        )
    }

    /// Per-feature unit costs (for rule ranking, §4.3).
    pub fn feature_costs(&self) -> Vec<f64> {
        self.vectorizer.library().defs.iter().map(|d| d.cost()).collect()
    }

    /// Feature names (for rule display).
    pub fn feature_names(&self) -> Vec<String> {
        self.vectorizer.library().names()
    }
}

/// Build a [`MatchTask`] from a generated dataset-like bundle. Kept here so
/// examples and benches don't repeat the glue.
pub fn task_from_parts(
    table_a: Table,
    table_b: Table,
    instruction: &str,
    positive: [(u32, u32); 2],
    negative: [(u32, u32); 2],
) -> MatchTask {
    let seeds = positive
        .iter()
        .map(|&(a, b)| (PairKey::new(a, b), true))
        .chain(negative.iter().map(|&(a, b)| (PairKey::new(a, b), false)))
        .collect();
    MatchTask::new(table_a, table_b, instruction, seeds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use similarity::{Attribute, Schema, Value};
    use std::sync::Arc;

    fn tiny_task() -> MatchTask {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let rows_a: Vec<Vec<Value>> =
            (0..6).map(|i| vec![Value::Text(format!("item {i}"))]).collect();
        let rows_b: Vec<Vec<Value>> =
            (0..6).map(|i| vec![Value::Text(format!("item {i}"))]).collect();
        let a = Table::new("a", schema.clone(), rows_a);
        let b = Table::new("b", schema, rows_b);
        task_from_parts(a, b, "match same item", [(0, 0), (1, 1)], [(0, 5), (2, 4)])
    }

    #[test]
    fn task_wiring() {
        let t = tiny_task();
        assert_eq!(t.cartesian_size(), 36);
        assert_eq!(t.seeds.len(), 4);
        assert!(t.n_features() > 0);
        let v = t.vectorize(PairKey::new(0, 0));
        assert_eq!(v.len(), t.n_features());
        assert_eq!(t.feature(0, PairKey::new(0, 0)), v[0]);
        assert_eq!(t.feature_costs().len(), t.n_features());
        assert_eq!(t.feature_names().len(), t.n_features());
    }

    #[test]
    #[should_panic(expected = "two positive seed")]
    fn rejects_wrong_seed_balance() {
        let t = tiny_task();
        MatchTask::new(
            t.table_a.clone(),
            t.table_b.clone(),
            "x",
            vec![
                (PairKey::new(0, 0), true),
                (PairKey::new(1, 1), false),
                (PairKey::new(2, 2), false),
                (PairKey::new(3, 3), false),
            ],
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_seed() {
        let t = tiny_task();
        MatchTask::new(
            t.table_a.clone(),
            t.table_b.clone(),
            "x",
            vec![
                (PairKey::new(0, 0), true),
                (PairKey::new(99, 1), true),
                (PairKey::new(2, 2), false),
                (PairKey::new(3, 3), false),
            ],
        );
    }
}
