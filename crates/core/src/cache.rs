//! The shared feature-vector cache.
//!
//! Vectorizing a pair — computing every similarity feature over its two
//! records — is the dominant cost of blocking and candidate-set
//! construction, and the same pair is routinely vectorized more than once
//! in a run: the blocker's sample `S` overlaps the candidate set `C`, and
//! the four seed pairs are vectorized by both the blocker and the engine.
//! A [`FeatureCache`] owned by the engine run makes every repeat a cheap
//! `Arc` clone.
//!
//! The cache is sharded: a key hashes to one of a fixed number of
//! independently locked shards, so concurrent `get_or_compute` calls from
//! the parallel vectorization loops rarely contend. Vectorization itself
//! always happens *outside* any lock.
//!
//! Capacity is a bound on entries, enforced per shard by refusing new
//! inserts once a shard is full (no eviction): the computed vector is
//! still returned, it just isn't retained. This keeps memory bounded with
//! zero bookkeeping on the hot hit path.

use crowd::PairKey;
use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const N_SHARDS: usize = 16;

/// Default entry capacity for a session's feature cache (~262k vectors).
pub const DEFAULT_CACHE_CAPACITY: usize = 1 << 18;

/// Hit/miss/occupancy counters, surfaced in `RunReport`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to vectorize.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Maximum entries the cache will retain.
    pub capacity: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when there were none).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded, capacity-bounded, read-through cache from pair keys to
/// feature vectors.
pub struct FeatureCache {
    shards: Vec<RwLock<HashMap<PairKey, Arc<Vec<f64>>>>>,
    shard_capacity: usize,
    /// The capacity the caller asked for. Per-shard enforcement rounds up
    /// (`shard_capacity * N_SHARDS` may exceed this), but stats report the
    /// requested number.
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for FeatureCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("FeatureCache")
            .field("entries", &s.entries)
            .field("capacity", &s.capacity)
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .finish()
    }
}

impl FeatureCache {
    /// A cache retaining at most `capacity` feature vectors.
    pub fn with_capacity(capacity: usize) -> Self {
        FeatureCache {
            shards: (0..N_SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            shard_capacity: capacity.div_ceil(N_SHARDS),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard_of(key: PairKey) -> usize {
        // SplitMix64-style mix of the packed key; low bits pick the shard.
        let mut h = ((key.a as u64) << 32) | key.b as u64;
        h = (h ^ (h >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (h ^ (h >> 31)) as usize % N_SHARDS
    }

    /// Look up `key`, computing and (capacity permitting) retaining the
    /// vector on a miss. `compute` runs outside any lock.
    ///
    /// Hit/miss counters are exact when concurrent callers use distinct
    /// keys — which every parallel vectorization batch in this workspace
    /// does; concurrent lookups of the *same* absent key may each count a
    /// miss.
    pub fn get_or_compute(
        &self,
        key: PairKey,
        compute: impl FnOnce() -> Vec<f64>,
    ) -> Arc<Vec<f64>> {
        let shard = &self.shards[Self::shard_of(key)];
        if let Some(v) = shard.read().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(v);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = Arc::new(compute());
        let mut guard = shard.write();
        if let Some(existing) = guard.get(&key) {
            // Another thread computed it between our read and write; keep
            // the resident copy so all holders share one allocation.
            return Arc::clone(existing);
        }
        if guard.len() < self.shard_capacity {
            guard.insert(key, Arc::clone(&value));
        }
        value
    }

    /// The vector for `key`, if resident (does not touch the counters).
    pub fn peek(&self, key: PairKey) -> Option<Arc<Vec<f64>>> {
        self.shards[Self::shard_of(key)].read().get(&key).map(Arc::clone)
    }

    /// Current counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.shards.iter().map(|s| s.read().len()).sum(),
            capacity: self.capacity,
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    /// Capture the cache's full contents and counters for a checkpoint.
    /// Entries are sorted by key so the snapshot bytes are deterministic
    /// regardless of insertion order or thread interleaving.
    pub fn dump(&self) -> CacheSnapshot {
        let mut entries: Vec<(PairKey, Vec<f64>)> = Vec::new();
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                entries.push((*k, v.as_ref().clone()));
            }
        }
        entries.sort_by_key(|(k, _)| *k);
        CacheSnapshot {
            capacity: self.capacity,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries,
        }
    }

    /// Rebuild a cache from a [`CacheSnapshot`]. The restored cache serves
    /// the same hits a continued run would have seen (warm start) and its
    /// counters continue from the recorded values, so cumulative cache
    /// stats in a resumed run match the uninterrupted run's.
    pub fn restore(snapshot: &CacheSnapshot) -> Self {
        let cache = FeatureCache::with_capacity(snapshot.capacity);
        for (k, v) in &snapshot.entries {
            let shard = &cache.shards[Self::shard_of(*k)];
            let mut guard = shard.write();
            if guard.len() < cache.shard_capacity {
                guard.insert(*k, Arc::new(v.clone()));
            }
        }
        cache.hits.store(snapshot.hits, Ordering::Relaxed);
        cache.misses.store(snapshot.misses, Ordering::Relaxed);
        cache
    }
}

/// Serializable image of a [`FeatureCache`]: configured capacity, counter
/// values, and every resident `(pair, vector)` entry in key order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CacheSnapshot {
    /// Requested entry capacity of the dumped cache.
    pub capacity: usize,
    /// Cumulative hit counter at dump time.
    pub hits: u64,
    /// Cumulative miss counter at dump time.
    pub misses: u64,
    /// Resident entries, sorted by key.
    pub entries: Vec<(PairKey, Vec<f64>)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(a: u32, b: u32) -> PairKey {
        PairKey::new(a, b)
    }

    #[test]
    fn miss_then_hit() {
        let cache = FeatureCache::with_capacity(100);
        let v1 = cache.get_or_compute(key(1, 2), || vec![1.0, 2.0]);
        let v2 = cache.get_or_compute(key(1, 2), || panic!("must not recompute"));
        assert!(Arc::ptr_eq(&v1, &v2));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_bounds_retention_but_not_results() {
        let cache = FeatureCache::with_capacity(N_SHARDS); // 1 per shard
        for i in 0..1000u32 {
            let v = cache.get_or_compute(key(i, i), || vec![i as f64]);
            assert_eq!(*v, vec![i as f64], "value correct even when not retained");
        }
        let s = cache.stats();
        assert!(s.entries <= N_SHARDS, "entries {} over capacity", s.entries);
        assert_eq!(s.misses, 1000);
    }

    #[test]
    fn concurrent_distinct_keys_count_exactly() {
        let cache = FeatureCache::with_capacity(100_000);
        let keys: Vec<PairKey> = (0..4000u32).map(|i| key(i / 100, i % 100)).collect();
        std::thread::scope(|s| {
            let cache = &cache;
            for chunk in keys.chunks(500) {
                s.spawn(move || {
                    for &k in chunk {
                        let v = cache.get_or_compute(k, || vec![k.a as f64, k.b as f64]);
                        assert_eq!(v[0], k.a as f64);
                    }
                });
            }
        });
        let s = cache.stats();
        assert_eq!(s.misses, 4000, "each distinct key misses exactly once");
        assert_eq!(s.hits, 0);
        assert_eq!(s.entries, 4000);
        // Second pass from many threads: all hits.
        std::thread::scope(|scope| {
            let cache = &cache;
            for chunk in keys.chunks(500) {
                scope.spawn(move || {
                    for &k in chunk {
                        cache.get_or_compute(k, || panic!("resident key recomputed"));
                    }
                });
            }
        });
        assert_eq!(cache.stats().hits, 4000);
    }

    #[test]
    fn concurrent_same_key_returns_shared_value() {
        let cache = FeatureCache::with_capacity(100);
        let results: Vec<Arc<Vec<f64>>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| s.spawn(|| cache.get_or_compute(key(7, 7), || vec![7.0])))
                .collect();
            handles.into_iter().map(|h| h.join().expect("no panic")).collect()
        });
        for r in &results {
            assert_eq!(**r, vec![7.0]);
        }
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn stats_report_requested_capacity() {
        // Regression: per-shard rounding used to leak into stats —
        // with_capacity(100) reported ceil(100/16)*16 = 112.
        assert_eq!(FeatureCache::with_capacity(100).stats().capacity, 100);
        assert_eq!(FeatureCache::with_capacity(0).stats().capacity, 0);
        assert_eq!(
            FeatureCache::with_capacity(super::DEFAULT_CACHE_CAPACITY).stats().capacity,
            super::DEFAULT_CACHE_CAPACITY
        );
    }

    #[test]
    fn dump_restore_round_trips_entries_and_counters() {
        let cache = FeatureCache::with_capacity(1000);
        for i in 0..50u32 {
            cache.get_or_compute(key(i, i + 1), || vec![i as f64, 0.5]);
        }
        cache.get_or_compute(key(0, 1), || panic!("resident")); // one hit
        let snap = cache.dump();
        assert_eq!(snap.entries.len(), 50);
        assert!(snap.entries.windows(2).all(|w| w[0].0 < w[1].0), "sorted by key");

        let restored = FeatureCache::restore(&snap);
        let s = restored.stats();
        assert_eq!((s.hits, s.misses, s.entries, s.capacity), (1, 50, 50, 1000));
        for i in 0..50u32 {
            let v = restored.get_or_compute(key(i, i + 1), || panic!("must be warm"));
            assert_eq!(*v, vec![i as f64, 0.5]);
        }
        // Dumps of original and restored caches are byte-identical modulo
        // the hit counter we just advanced.
        let again = restored.dump();
        assert_eq!(again.entries, snap.entries);
    }

    #[test]
    fn restore_respects_capacity() {
        let mut snap = FeatureCache::with_capacity(N_SHARDS).dump();
        snap.entries = (0..500u32).map(|i| (key(i, i), vec![i as f64])).collect();
        let restored = FeatureCache::restore(&snap);
        assert!(restored.stats().entries <= N_SHARDS);
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let cache = FeatureCache::with_capacity(100);
        cache.get_or_compute(key(1, 1), || vec![1.0]);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().misses, 1);
        assert!(cache.peek(key(1, 1)).is_none());
    }
}
