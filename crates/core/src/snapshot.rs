//! Run-state snapshots: the payload the engine checkpoints through
//! [`store`] at iteration boundaries.
//!
//! A [`RunSnapshot`] is the *full state closure* of a run at the end of an
//! engine iteration — everything needed to continue the run as if it had
//! never stopped:
//!
//! * the labeled pair set and active-learning outputs accumulated so far
//!   (`predictions`, `known_labels`, per-iteration reports, the running
//!   best estimate);
//! * the current difficult region (the next iteration's training set);
//! * the surviving candidate set as pair keys (feature vectors are
//!   recomputed deterministically on resume — vectorization is pure);
//! * the last trained random-forest model, serialized;
//! * the crowd platform in full ([`crowd::PlatformState`]): ledger,
//!   label cache, worker pool (including attrition), fault counters, the
//!   simulated clock, and — critically — the exact stream positions of the
//!   worker RNG and the fault RNG;
//! * the engine RNG's stream position;
//! * the feature cache's contents and counters, for a warm restart;
//! * the run-start ledger/fault baselines that all budget math and fault
//!   deltas are computed against.
//!
//! ## Why RNG stream *positions*, not seeds
//!
//! Re-seeding on resume would restart every random stream from the top:
//! the crowd would answer differently, faults would fire at different
//! times, and the resumed run would diverge from the uninterrupted one.
//! Storing the xoshiro state words lets each stream continue mid-sequence,
//! which is what makes the resumed final report **byte-identical**
//! (`RunReport::deterministic_json`) to an uninterrupted run. The words
//! are hex strings because the vendored JSON layer cannot represent the
//! full `u64` range as numbers (see [`store::encode_rng_state`]).
//!
//! Snapshots are taken only at iteration boundaries — after the locator
//! has chosen the next region — because that is the narrowest point of
//! the engine loop: no phase is mid-flight, so the closure above is
//! complete and small.

use crate::blocker::BlockerReport;
use crate::cache::CacheSnapshot;
use crate::engine::IterationReport;
use crate::estimator::AccuracyEstimate;
use crowd::platform::PlatformState;
use crowd::{FaultStats, Ledger};
use serde::{Deserialize, Serialize};

/// Serializable state closure of an engine run at an iteration boundary.
/// Written by the engine's checkpoint hook; read back by
/// [`RunSession::resume_from`](crate::session::RunSession::resume_from).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSnapshot {
    /// The run's RNG seed, hex-encoded (provenance; the resumed run
    /// continues from `rng_state`, it does not re-seed).
    pub seed_hex: String,
    /// Engine iterations fully completed at capture time. Snapshot `0` is
    /// taken right after blocking, before the first iteration.
    pub completed_iterations: usize,
    /// Engine RNG stream position (hex words).
    pub rng_state: [String; 4],
    /// Platform ledger at run start — the baseline all budget arithmetic
    /// subtracts from.
    pub ledger_start: Ledger,
    /// Platform fault counters at run start — the baseline the final
    /// fault delta (and the `Degraded` verdict) is computed against.
    pub fault_start: FaultStats,
    /// Surviving candidate pairs, in candidate-set order. The feature
    /// matrix is rebuilt from these on resume.
    pub cand_pairs: Vec<crowd::PairKey>,
    /// Features per pair, to reject resuming against a different task.
    pub n_features: usize,
    /// The blocker's report (blocking is never re-run on resume).
    pub blocker_report: BlockerReport,
    /// Current combined predictions over the candidate set.
    pub predictions: Vec<bool>,
    /// Crowd-labeled candidate indices, sorted for deterministic bytes.
    pub known_labels: Vec<(usize, bool)>,
    /// The region the next iteration will train on.
    pub region: Vec<usize>,
    /// Per-iteration reports accumulated so far.
    pub iterations: Vec<IterationReport>,
    /// Best (estimate, predictions) seen so far — the pair the stopping
    /// rule compares against and rolls back to.
    pub best: Option<(AccuracyEstimate, Vec<bool>)>,
    /// Cumulative phase wall-clock so far, in ms:
    /// `[blocker, matcher, estimator, locator]`.
    pub timings_ms: [f64; 4],
    /// The most recently trained random-forest model, serialized with
    /// [`forest::RandomForest::to_json`]. `None` only for snapshot 0.
    pub forest_json: Option<String>,
    /// Complete crowd platform state (ledger, label cache, worker pool,
    /// fault layer, both RNG stream positions, simulated clock).
    pub platform: PlatformState,
    /// Feature-cache contents and counters (`None` when the run has no
    /// cache).
    pub cache: Option<CacheSnapshot>,
    /// Snapshots written by the run chain up to and including this one.
    pub snapshots_written: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd::PairKey;

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = RunSnapshot {
            seed_hex: store::encode_u64(0x5EED),
            completed_iterations: 2,
            rng_state: store::encode_rng_state([u64::MAX, 1, 2, 1 << 60]),
            ledger_start: Ledger::default(),
            fault_start: FaultStats::default(),
            cand_pairs: vec![PairKey::new(1, 2), PairKey::new(3, 4)],
            n_features: 7,
            blocker_report: BlockerReport::default(),
            predictions: vec![true, false],
            known_labels: vec![(0, true)],
            region: vec![1],
            iterations: Vec::new(),
            best: None,
            timings_ms: [1.0, 2.0, 3.0, 4.0],
            forest_json: None,
            platform: crowd::CrowdPlatform::new(
                crowd::WorkerPool::perfect(3),
                crowd::CrowdConfig::default(),
            )
            .export_state(),
            cache: None,
            snapshots_written: 3,
        };
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: RunSnapshot = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.completed_iterations, 2);
        assert_eq!(back.rng_state, snap.rng_state);
        assert_eq!(back.cand_pairs, snap.cand_pairs);
        assert_eq!(back.known_labels, snap.known_labels);
        assert_eq!(back.timings_ms, snap.timings_ms);
        assert_eq!(
            store::decode_rng_state(&back.rng_state).expect("state"),
            [u64::MAX, 1, 2, 1 << 60]
        );
    }
}
