//! Stopping rules for crowdsourced active learning (paper §5.3, Fig. 3).
//!
//! Crowd noise makes the raw confidence series jagged, so the series is
//! first smoothed with a centered moving average of width `w`, then three
//! patterns are checked: *converged confidence*, *near-absolute
//! confidence*, and *degrading confidence*. On a degrading stop the caller
//! must roll back to "the last classifier before degrading" — the peak of
//! the smoothed series, which [`peak_index`] locates.

use crate::config::StoppingConfig;
use serde::{Deserialize, Serialize};

/// Decision after an active-learning iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopDecision {
    /// Keep training.
    Continue,
    /// Confidence stabilized within `±ε` for `n_converged` iterations.
    Converged,
    /// Confidence at `≥ 1 − ε` for `n_high` consecutive iterations.
    NearAbsolute,
    /// Confidence peaked and then degraded; roll back to the peak
    /// classifier.
    Degrading,
}

impl StopDecision {
    /// True for any of the three stop patterns.
    pub fn should_stop(self) -> bool {
        self != StopDecision::Continue
    }
}

/// Centered moving average of width `w` (odd widths behave as the paper
/// describes: `(w−1)/2` on each side). Near the series boundaries the
/// window is truncated to the available values.
pub fn smooth(values: &[f64], w: usize) -> Vec<f64> {
    assert!(w >= 1, "window must be positive");
    let half = (w - 1) / 2;
    (0..values.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(values.len());
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Index of the maximum of the smoothed series (first maximum on ties).
pub fn peak_index(values: &[f64], cfg: &StoppingConfig) -> usize {
    let s = smooth(values, cfg.window);
    s.iter()
        .enumerate()
        .fold((0usize, f64::NEG_INFINITY), |(bi, bv), (i, &v)| {
            if v > bv {
                (i, v)
            } else {
                (bi, bv)
            }
        })
        .0
}

/// Check the three stopping patterns over the confidence history (one
/// value per AL iteration, oldest first).
pub fn check(values: &[f64], cfg: &StoppingConfig) -> StopDecision {
    if values.len() < cfg.min_iterations {
        return StopDecision::Continue;
    }
    let s = smooth(values, cfg.window);

    // Near-absolute confidence: last n_high smoothed values ≥ 1 − ε.
    if s.len() >= cfg.n_high
        && s[s.len() - cfg.n_high..]
            .iter()
            .all(|&v| v >= 1.0 - cfg.eps)
    {
        return StopDecision::NearAbsolute;
    }

    // Converged confidence: the last n_converged smoothed values stay
    // within a 2ε interval (∃ v*: |v − v*| ≤ ε for all of them).
    if s.len() >= cfg.n_converged {
        let tail = &s[s.len() - cfg.n_converged..];
        let max = tail.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = tail.iter().cloned().fold(f64::INFINITY, f64::min);
        if max - min <= 2.0 * cfg.eps {
            return StopDecision::Converged;
        }
    }

    // Degrading confidence: two consecutive windows of size n_degrade;
    // the earlier window's max exceeds the later one's by more than ε.
    if s.len() >= 2 * cfg.n_degrade {
        let first = &s[s.len() - 2 * cfg.n_degrade..s.len() - cfg.n_degrade];
        let second = &s[s.len() - cfg.n_degrade..];
        let max1 = first.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let max2 = second.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if max1 > max2 + cfg.eps {
            return StopDecision::Degrading;
        }
    }

    StopDecision::Continue
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> StoppingConfig {
        StoppingConfig { window: 5, eps: 0.01, n_converged: 20, n_high: 3, n_degrade: 15, min_iterations: 0 }
    }

    #[test]
    fn smooth_is_identity_for_w1() {
        let v = vec![1.0, 2.0, 3.0];
        assert_eq!(smooth(&v, 1), v);
    }

    #[test]
    fn smooth_averages_centered() {
        let v = vec![0.0, 3.0, 6.0];
        let s = smooth(&v, 3);
        assert_eq!(s[1], 3.0);
        assert_eq!(s[0], 1.5); // truncated window [0,3]
        assert_eq!(s[2], 4.5);
    }

    #[test]
    fn short_history_continues() {
        assert_eq!(check(&[0.5, 0.6], &cfg()), StopDecision::Continue);
    }

    #[test]
    fn converged_pattern_fires() {
        // Rise then a flat plateau of 25 identical values (Fig. 3a).
        let mut v: Vec<f64> = (0..10).map(|i| 0.5 + 0.03 * i as f64).collect();
        v.extend(std::iter::repeat_n(0.8, 25));
        assert_eq!(check(&v, &cfg()), StopDecision::Converged);
    }

    #[test]
    fn near_absolute_fires_early() {
        // Only a handful of very high values needed (Fig. 3b) — no waiting
        // for the 20-iteration convergence window.
        let mut v: Vec<f64> = (0..6).map(|i| 0.6 + 0.07 * i as f64).collect();
        v.extend([0.995, 0.996, 0.997, 0.996, 0.997]);
        assert_eq!(check(&v, &cfg()), StopDecision::NearAbsolute);
    }

    #[test]
    fn degrading_fires_after_peak() {
        // Rise to a peak then steady decline (Fig. 3b right).
        let mut v: Vec<f64> = (0..15).map(|i| 0.5 + 0.03 * i as f64).collect();
        v.extend((0..20).map(|i| 0.95 - 0.012 * i as f64));
        let d = check(&v, &cfg());
        assert_eq!(d, StopDecision::Degrading);
        assert!(d.should_stop());
        // The peak sits where the series turns.
        let p = peak_index(&v, &cfg());
        assert!((12..=17).contains(&p), "peak at {p}");
    }

    #[test]
    fn noisy_plateau_still_converges() {
        // ±0.004 noise around 0.8 smooths to within the 2ε band.
        let mut v: Vec<f64> = (0..10).map(|i| 0.5 + 0.03 * i as f64).collect();
        for i in 0..30 {
            v.push(0.8 + if i % 2 == 0 { 0.004 } else { -0.004 });
        }
        assert_eq!(check(&v, &cfg()), StopDecision::Converged);
    }

    #[test]
    fn rising_series_continues() {
        let v: Vec<f64> = (0..40).map(|i| 0.3 + 0.012 * i as f64).collect();
        assert_eq!(check(&v, &cfg()), StopDecision::Continue);
    }

    #[test]
    fn spike_does_not_trigger_degrading() {
        // A single-iteration spike is absorbed by the w=5 smoothing.
        let mut v: Vec<f64> = (0..20).map(|_| 0.7).collect();
        v[10] = 0.9;
        v.extend(std::iter::repeat_n(0.7, 15));
        // (The converged pattern may fire; degrading must not.)
        assert_ne!(check(&v, &cfg()), StopDecision::Degrading);
    }

    #[test]
    fn min_iterations_delays_any_stop() {
        let c = StoppingConfig { min_iterations: 10, ..cfg() };
        // A flat, near-absolute series that would otherwise stop at once.
        let v = vec![0.999; 8];
        assert_eq!(check(&v, &c), StopDecision::Continue);
        let v = vec![0.999; 10];
        assert_eq!(check(&v, &c), StopDecision::NearAbsolute);
    }

    #[test]
    fn peak_index_of_monotone_series_is_last() {
        let v: Vec<f64> = (0..30).map(|i| i as f64 / 30.0).collect();
        assert_eq!(peak_index(&v, &cfg()), v.len() - 1);
    }
}
