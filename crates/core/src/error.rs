//! Typed failures of the run path.
//!
//! [`CorleoneError`] replaces the panics a run used to raise when the
//! crowd layer could not complete labeling, when a session was
//! misconfigured, or when inputs were degenerate. The non-panicking entry
//! point is [`RunSession::try_run`](crate::session::RunSession::try_run);
//! [`RunSession::run`](crate::session::RunSession::run) remains as a
//! panicking wrapper for callers that treat all of these as bugs.

use crowd::CrowdError;
use std::fmt;
use store::StoreError;

/// Everything that can go wrong on the engine's run path.
#[derive(Debug, Clone, PartialEq)]
pub enum CorleoneError {
    /// The crowd layer failed: labeling gave up with pairs unresolved
    /// (injected faults past the retry budget) or was misused.
    Crowd(CrowdError),
    /// Blocking left zero candidate pairs — there is nothing to match and
    /// no region to train on.
    EmptyCandidates,
    /// The configured [`BudgetSplit`](crate::budget::BudgetSplit) is
    /// invalid (negative shares, or shares not summing to 1).
    InvalidBudgetSplit(String),
    /// [`RunSession::run`](crate::session::RunSession::run) was called
    /// without a platform.
    MissingPlatform,
    /// [`RunSession::run`](crate::session::RunSession::run) was called
    /// without an oracle.
    MissingOracle,
    /// A report could not be serialized.
    Serialization(String),
    /// The checkpoint store failed: a snapshot could not be written, or a
    /// resume found a missing/corrupt/incompatible snapshot.
    Store(StoreError),
}

impl fmt::Display for CorleoneError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorleoneError::Crowd(e) => write!(f, "crowd layer failed: {e}"),
            CorleoneError::EmptyCandidates => {
                write!(f, "blocking produced an empty candidate set; nothing to match")
            }
            CorleoneError::InvalidBudgetSplit(msg) => {
                write!(f, "invalid budget split: {msg}")
            }
            // These two render as the exact messages the panicking
            // wrapper has always raised; tests assert the substrings.
            CorleoneError::MissingPlatform => write!(
                f,
                "RunSession::run called without a platform; call .platform(&mut p) first"
            ),
            CorleoneError::MissingOracle => write!(
                f,
                "RunSession::run called without an oracle; call .oracle(&o) first"
            ),
            CorleoneError::Serialization(msg) => write!(f, "report serialization failed: {msg}"),
            CorleoneError::Store(e) => write!(f, "checkpoint store failed: {e}"),
        }
    }
}

impl std::error::Error for CorleoneError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorleoneError::Crowd(e) => Some(e),
            CorleoneError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CrowdError> for CorleoneError {
    fn from(e: CrowdError) -> Self {
        CorleoneError::Crowd(e)
    }
}

impl From<StoreError> for CorleoneError {
    fn from(e: StoreError) -> Self {
        CorleoneError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crowd_errors_wrap_with_source() {
        let inner = CrowdError::Incomplete { requested: 5, labeled: 2, missing: vec![] };
        let e: CorleoneError = inner.clone().into();
        assert!(e.to_string().contains("2 of 5"));
        let src = std::error::Error::source(&e).expect("source preserved");
        assert_eq!(src.to_string(), inner.to_string());
    }

    #[test]
    fn session_misuse_messages_are_stable() {
        assert!(CorleoneError::MissingPlatform.to_string().contains("without a platform"));
        assert!(CorleoneError::MissingOracle.to_string().contains("without an oracle"));
    }

    #[test]
    fn remaining_variants_render() {
        assert!(CorleoneError::EmptyCandidates.to_string().contains("empty candidate set"));
        let b = CorleoneError::InvalidBudgetSplit("shares must sum to 1, got 1.5".into());
        assert!(b.to_string().contains("sum to 1"));
        let s = CorleoneError::Serialization("bad float".into());
        assert!(s.to_string().contains("serialization"));
    }

    #[test]
    fn store_errors_wrap_with_source() {
        let inner = StoreError::SchemaMismatch { path: "snap.json".into(), found: 9, expected: 1 };
        let e: CorleoneError = inner.clone().into();
        assert!(e.to_string().contains("checkpoint store failed"));
        assert!(e.to_string().contains("schema version 9"));
        let src = std::error::Error::source(&e).expect("source preserved");
        assert_eq!(src.to_string(), inner.to_string());
    }
}
