//! Rule scoring and crowd-based rule evaluation (paper §4.2), shared by
//! the Blocker, the Accuracy Estimator, and the Difficult Pairs' Locator.
//!
//! Selection (§4.2 step 1): candidate rules are ranked by an *upper bound*
//! on their precision — a covered example can only break the rule if the
//! crowd already labeled it with the opposite class — and the top `k` go
//! to evaluation.
//!
//! Evaluation (§4.2 step 2, joint variant): examples are sampled from the
//! union of the undecided rules' coverages so one crowd label feeds every
//! rule covering it; per rule, the estimated precision `P = n_ok/n` with a
//! finite-population margin `ε` decides keep (`P ≥ P_min`, `ε ≤ ε_max`) or
//! drop (`P + ε < P_min`, or `ε ≤ ε_max` with `P < P_min`).

use crate::candidates::CandidateSet;
use crowd::stats::{fpc_margin, z_for_confidence};
use crowd::{CrowdPlatform, PairKey, Scheme, TruthOracle};
use exec::Threads;
use forest::Rule;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// A candidate rule with its coverage and precision upper bound.
#[derive(Debug, Clone)]
pub struct ScoredRule {
    /// The rule.
    pub rule: Rule,
    /// Candidate indices the rule covers (predicts its label for).
    pub coverage: Vec<usize>,
    /// Upper bound on `prec(R, S)` from already-known labels (§4.2).
    pub ub_precision: f64,
}

/// Indices of `cand` covered by the rule, optionally restricted to a
/// subset of indices.
pub fn coverage_of(rule: &Rule, cand: &CandidateSet, within: Option<&[usize]>) -> Vec<usize> {
    match within {
        Some(idx) => idx
            .iter()
            .copied()
            .filter(|&i| rule.matches(cand.row(i)))
            .collect(),
        None => (0..cand.len())
            .filter(|&i| rule.matches(cand.row(i)))
            .collect(),
    }
}

/// Score rules and keep the top `k` by precision upper bound, breaking
/// ties by coverage size (§4.2 step 1). `known_opposite` holds candidate
/// indices already crowd-labeled with the class *opposite* to the rules'
/// prediction (for negative rules: the known positives `T`). Rules with
/// empty coverage and duplicate rules (same predicates and label, from
/// different trees) are discarded.
pub fn select_top_rules(
    rules: Vec<Rule>,
    cand: &CandidateSet,
    within: Option<&[usize]>,
    known_opposite: &HashSet<usize>,
    k: usize,
    threads: Threads,
) -> Vec<ScoredRule> {
    let mut seen: Vec<(Vec<forest::Predicate>, bool)> = Vec::new();
    let mut unique: Vec<Rule> = Vec::new();
    for rule in rules {
        let sig = (rule.predicates.clone(), rule.label);
        if seen.contains(&sig) {
            continue;
        }
        seen.push(sig);
        unique.push(rule);
    }
    // Coverage scans are the expensive part and independent per rule.
    let mut scored: Vec<ScoredRule> = exec::par_map(threads, &unique, |rule| {
        let coverage = coverage_of(rule, cand, within);
        if coverage.is_empty() {
            return None;
        }
        let violations = coverage
            .iter()
            .filter(|i| known_opposite.contains(i))
            .count();
        let ub_precision = (coverage.len() - violations) as f64 / coverage.len() as f64;
        Some(ScoredRule { rule: rule.clone(), coverage, ub_precision })
    })
    .into_iter()
    .flatten()
    .collect();
    scored.sort_by(|a, b| {
        b.ub_precision
            .total_cmp(&a.ub_precision)
            .then(b.coverage.len().cmp(&a.coverage.len()))
    });
    scored.truncate(k);
    scored
}

/// Parameters for crowd rule evaluation.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RuleEvalConfig {
    /// Examples sampled per round (`b`, §4.2).
    pub batch: usize,
    /// Minimum precision `P_min`.
    pub p_min: f64,
    /// Maximum margin `ε_max`.
    pub eps_max: f64,
    /// Confidence level `δ`.
    pub confidence: f64,
    /// Voting scheme for the labels (rule evaluation is
    /// estimation-sensitive, so the hybrid scheme is the default).
    pub scheme: Scheme,
    /// Absolute ledger cap (cents): stop soliciting labels once
    /// `Ledger.total_cents` reaches it, deciding remaining rules from the
    /// labels in hand. `None` leaves evaluation unbudgeted.
    pub budget_cents_cap: Option<f64>,
}

impl Default for RuleEvalConfig {
    fn default() -> Self {
        RuleEvalConfig {
            batch: 20,
            p_min: 0.95,
            eps_max: 0.05,
            confidence: 0.95,
            scheme: Scheme::Hybrid,
            budget_cents_cap: None,
        }
    }
}

/// A rule after crowd evaluation.
#[derive(Debug, Clone)]
pub struct EvaluatedRule {
    /// The rule.
    pub rule: Rule,
    /// Its coverage (as given at selection time).
    pub coverage: Vec<usize>,
    /// Estimated precision over the coverage.
    pub est_precision: f64,
    /// Error margin of the estimate.
    pub margin: f64,
    /// Labeled examples that informed the estimate.
    pub n_labeled: usize,
    /// Whether the rule passed (`P ≥ P_min` within `ε_max`).
    pub kept: bool,
}

/// Jointly evaluate rules with the crowd (§4.2 step 2, joint variant).
/// Also returns the pool of labels gathered, keyed by candidate index, so
/// callers can reuse them.
pub fn evaluate_rules_jointly(
    scored: Vec<ScoredRule>,
    cand: &CandidateSet,
    platform: &mut CrowdPlatform,
    oracle: &dyn TruthOracle,
    cfg: &RuleEvalConfig,
    rng: &mut StdRng,
    prior_labels: &mut HashMap<usize, bool>,
) -> Vec<EvaluatedRule> {
    let z = z_for_confidence(cfg.confidence);
    let key_to_idx: HashMap<PairKey, usize> = cand
        .pairs()
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i))
        .collect();

    struct State {
        scored: ScoredRule,
        decided: Option<EvaluatedRule>,
    }
    let mut states: Vec<State> = scored
        .into_iter()
        .map(|s| State { scored: s, decided: None })
        .collect();

    let stats = |s: &ScoredRule, labels: &HashMap<usize, bool>| -> (usize, usize) {
        let mut n = 0;
        let mut ok = 0;
        for i in &s.coverage {
            if let Some(&l) = labels.get(i) {
                n += 1;
                if l == s.scored_label() {
                    ok += 1;
                }
            }
        }
        (n, ok)
    };

    let mut rounds = 0usize;
    loop {
        rounds += 1;
        // Decide what we can with current labels.
        for st in states.iter_mut().filter(|s| s.decided.is_none()) {
            let (n, ok) = stats(&st.scored, prior_labels);
            let m = st.scored.coverage.len();
            if n == 0 {
                continue;
            }
            let p = ok as f64 / n as f64;
            // Margin with Laplace-smoothed proportion: at p̂ ∈ {0, 1} the
            // plain normal margin collapses to 0 and would accept/reject a
            // rule after a single label.
            let p_smooth = (ok as f64 + 1.0) / (n as f64 + 2.0);
            let eps = fpc_margin(p_smooth, n, m, z);
            let keep = p >= cfg.p_min && eps <= cfg.eps_max;
            let drop = (p + eps) < cfg.p_min || (eps <= cfg.eps_max && p < cfg.p_min);
            if keep || drop || n >= m {
                st.decided = Some(EvaluatedRule {
                    rule: st.scored.rule.clone(),
                    coverage: st.scored.coverage.clone(),
                    est_precision: p,
                    margin: eps,
                    n_labeled: n,
                    kept: keep || (n >= m && p >= cfg.p_min),
                });
            }
        }
        let undecided_any = states.iter().any(|s| s.decided.is_none());
        // Finalize whatever is still undecided from the labels in hand —
        // used when sampling must stop (coverage exhausted, budget cap,
        // round cap, or a crowd that stopped returning labels).
        let finalize = |states: &mut Vec<State>, labels: &HashMap<usize, bool>| {
            for st in states.iter_mut().filter(|s| s.decided.is_none()) {
                let (n, ok) = stats(&st.scored, labels);
                let p = if n > 0 { ok as f64 / n as f64 } else { 0.0 };
                st.decided = Some(EvaluatedRule {
                    rule: st.scored.rule.clone(),
                    coverage: st.scored.coverage.clone(),
                    est_precision: p,
                    margin: 0.0,
                    n_labeled: n,
                    kept: p >= cfg.p_min && n > 0,
                });
            }
        };
        if !undecided_any {
            break;
        }
        if rounds > 500 {
            finalize(&mut states, prior_labels);
            break;
        }
        if let Some(cap) = cfg.budget_cents_cap {
            if platform.ledger().total_cents >= cap {
                finalize(&mut states, prior_labels);
                break;
            }
        }
        // Sample from the union of undecided coverages, unlabeled only.
        let mut union: Vec<usize> = states
            .iter()
            .filter(|s| s.decided.is_none())
            .flat_map(|s| s.scored.coverage.iter().copied())
            .filter(|i| !prior_labels.contains_key(i))
            .collect();
        union.sort_unstable();
        union.dedup();
        if union.is_empty() {
            // Exhausted: finalize the stragglers from exact coverage stats.
            finalize(&mut states, prior_labels);
            break;
        }
        union.shuffle(rng);
        union.truncate(cfg.batch);
        let keys: Vec<PairKey> = union.iter().map(|&i| cand.pair(i)).collect();
        let labeled = platform.label_batch(oracle, &keys, cfg.scheme);
        for (key, label) in labeled {
            prior_labels.insert(key_to_idx[&key], label);
        }
    }

    states
        .into_iter()
        .map(|s| s.decided.expect("all rules decided at loop exit"))
        .collect()
}

impl ScoredRule {
    /// The label a covered example must carry for the rule to be correct.
    fn scored_label(&self) -> bool {
        self.rule.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{task_from_parts, MatchTask};
    use crowd::{CrowdConfig, GoldOracle, WorkerPool};
    use forest::{Op, Predicate};
    use rand::SeedableRng;
    use similarity::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    /// Task with one text feature set; gold = identical names.
    fn toy() -> (MatchTask, GoldOracle, CandidateSet) {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let a_rows: Vec<Vec<Value>> = (0..12)
            .map(|i| vec![Value::Text(format!("alpha item number {i}"))])
            .collect();
        let b_rows: Vec<Vec<Value>> = (0..12)
            .map(|i| vec![Value::Text(format!("alpha item number {i}"))])
            .collect();
        let a = Table::new("a", schema.clone(), a_rows);
        let b = Table::new("b", schema, b_rows);
        let task = task_from_parts(a, b, "same?", [(0, 0), (1, 1)], [(0, 5), (2, 7)]);
        let gold = GoldOracle::from_pairs((0..12).map(|i| (i, i)));
        let cand = CandidateSet::full_cartesian(&task);
        (task, gold, cand)
    }

    /// A negative rule over the exact-match feature: exact < 0.5 → NO.
    fn exact_rule(task: &MatchTask, label: bool) -> Rule {
        let f = task
            .feature_names()
            .iter()
            .position(|n| n == "name_exact")
            .unwrap();
        let op = if label { Op::Gt } else { Op::Le };
        Rule {
            predicates: vec![Predicate { feature: f, op, threshold: 0.5, nan_satisfies: !label }],
            label,
            tree: 0,
            n_pos: 0,
            n_neg: 0,
        }
    }

    #[test]
    fn coverage_of_counts_correctly() {
        let (task, _, cand) = toy();
        let neg = exact_rule(&task, false);
        let cov = coverage_of(&neg, &cand, None);
        assert_eq!(cov.len(), 144 - 12, "all off-diagonal pairs");
        let within: Vec<usize> = (0..24).collect();
        let cov2 = coverage_of(&neg, &cand, Some(&within));
        assert!(cov2.len() < cov.len());
        assert!(cov2.iter().all(|i| within.contains(i)));
    }

    #[test]
    fn select_top_rules_ranks_by_upper_bound() {
        let (task, _, cand) = toy();
        let good = exact_rule(&task, false); // covers only true negatives
        let bad = Rule {
            predicates: vec![],
            label: false,
            tree: 1,
            n_pos: 0,
            n_neg: 0,
        }; // covers everything incl. positives
        // Crowd has labeled two diagonal pairs positive.
        let known_pos: HashSet<usize> = [
            cand.index_of(PairKey::new(0, 0)).unwrap(),
            cand.index_of(PairKey::new(1, 1)).unwrap(),
        ]
        .into_iter()
        .collect();
        let top =
            select_top_rules(vec![bad, good.clone()], &cand, None, &known_pos, 2, Threads::new(2));
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].rule, good, "clean rule must rank first");
        assert_eq!(top[0].ub_precision, 1.0);
        assert!(top[1].ub_precision < 1.0);
    }

    #[test]
    fn duplicate_rules_are_collapsed() {
        let (task, _, cand) = toy();
        let r = exact_rule(&task, false);
        let top = select_top_rules(
            vec![r.clone(), r.clone(), r],
            &cand,
            None,
            &HashSet::new(),
            10,
            Threads::new(1),
        );
        assert_eq!(top.len(), 1);
    }

    #[test]
    fn evaluation_keeps_precise_rule_and_drops_imprecise() {
        let (task, gold, cand) = toy();
        let good = exact_rule(&task, false);
        // A negative rule that fires exactly on the matching (diagonal)
        // pairs has precision 0 — it must be dropped decisively.
        let inverted = Rule {
            predicates: vec![Predicate {
                feature: task
                    .feature_names()
                    .iter()
                    .position(|n| n == "name_exact")
                    .unwrap(),
                op: Op::Gt,
                threshold: 0.5,
                nan_satisfies: false,
            }],
            label: false,
            tree: 9,
            n_pos: 0,
            n_neg: 0,
        };
        let scored = select_top_rules(
            vec![good.clone(), inverted],
            &cand,
            None,
            &HashSet::new(),
            2,
            Threads::new(2),
        );
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let mut labels = HashMap::new();
        let out = evaluate_rules_jointly(
            scored,
            &cand,
            &mut platform,
            &gold,
            &RuleEvalConfig::default(),
            &mut rng,
            &mut labels,
        );
        let good_eval = out.iter().find(|e| e.rule == good).unwrap();
        assert!(good_eval.kept, "precise rule must be kept");
        assert!(good_eval.est_precision >= 0.95);
        let bad_eval = out.iter().find(|e| e.rule != good).unwrap();
        assert!(!bad_eval.kept, "imprecise rule must be dropped");
        assert!(!labels.is_empty(), "labels pool returned for reuse");
    }

    #[test]
    fn positive_rules_judged_against_positive_labels() {
        let (task, gold, cand) = toy();
        let pos = exact_rule(&task, true); // exact > 0.5 → MATCH, covers diagonal
        let scored = select_top_rules(vec![pos], &cand, None, &HashSet::new(), 1, Threads::new(1));
        assert_eq!(scored[0].coverage.len(), 12);
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let mut labels = HashMap::new();
        let out = evaluate_rules_jointly(
            scored,
            &cand,
            &mut platform,
            &gold,
            &RuleEvalConfig::default(),
            &mut rng,
            &mut labels,
        );
        assert!(out[0].kept);
        assert_eq!(out[0].est_precision, 1.0);
    }

    #[test]
    fn evaluation_is_frugal_with_labels() {
        let (task, gold, cand) = toy();
        let good = exact_rule(&task, false);
        let scored = select_top_rules(vec![good], &cand, None, &HashSet::new(), 1, Threads::new(1));
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let mut rng = StdRng::seed_from_u64(5);
        let mut labels = HashMap::new();
        let out = evaluate_rules_jointly(
            scored,
            &cand,
            &mut platform,
            &gold,
            &RuleEvalConfig::default(),
            &mut rng,
            &mut labels,
        );
        // Coverage is 132; deciding at P=1 needs far fewer labels.
        assert!(out[0].n_labeled < 132, "labeled {}", out[0].n_labeled);
        assert!(out[0].kept);
    }
}
