//! `corleone-cli` — hands-off entity matching from the command line.
//!
//! Exactly the paper's user contract (§3): two CSV tables, a one-line
//! instruction, and four seed pairs. The crowd is either simulated from a
//! gold-pairs CSV (for evaluation) or *you*, answering match questions
//! interactively — which makes the CLI a literal single-worker
//! hands-off-crowdsourcing deployment.
//!
//! ```text
//! corleone-cli --table-a a.csv --table-b b.csv \
//!     --instruction "match if same product" \
//!     --pos 0:0,1:1 --neg 0:5,2:7 \
//!     --gold gold.csv [--error 0.05] [--budget 5.00] [--out report.json]
//!
//! corleone-cli --table-a a.csv --table-b b.csv \
//!     --instruction "match if same person" \
//!     --pos 0:0,1:1 --neg 0:5,2:7 --interactive
//! ```

use corleone::{CorleoneConfig, Engine, MatchTask, RunSession};
use crowd::hit::render_question;
use crowd::{CrowdConfig, CrowdPlatform, GoldOracle, PairKey, TruthOracle, WorkerPool};
use similarity::csv::{parse_csv, table_from_csv, table_from_csv_with_schema};
use similarity::Table;
use std::cell::RefCell;
use std::collections::HashSet;
use std::io::{BufRead, Write};
use std::process::exit;

struct Args {
    table_a: String,
    table_b: String,
    instruction: String,
    pos: Vec<(u32, u32)>,
    neg: Vec<(u32, u32)>,
    gold: Option<String>,
    interactive: bool,
    error_rate: f64,
    workers: usize,
    price_cents: f64,
    budget_dollars: Option<f64>,
    out: Option<String>,
    seed: u64,
    small: bool,
    checkpoint_dir: Option<String>,
    checkpoint_every: usize,
    checkpoint_keep: usize,
    resume_from: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "corleone-cli — hands-off crowdsourced entity matching

required:
  --table-a <file.csv>       table A (header + rows)
  --table-b <file.csv>       table B (same header)
  --instruction <text>       what 'match' means, shown to the crowd
  --pos a:b,a:b              two matching seed pairs (row indices)
  --neg a:b,a:b              two non-matching seed pairs
and one of:
  --gold <file.csv>          gold matches (a_id,b_id) → simulated crowd
  --interactive              you answer the match questions on stdin

options:
  --error <f>                simulated worker error rate (default 0.05)
  --workers <n>              simulated pool size (default 25)
  --price-cents <f>          pay per answer (default 1.0)
  --budget <dollars>         stop once this much is spent
  --seed <n>                 rng seed (default 42)
  --small                    small-task configuration
  --out <file.json>          write the full run report as JSON
  --checkpoint-dir <dir>     write crash-safe run snapshots into <dir>
  --checkpoint-every <n>     snapshot every n iterations (default 1)
  --checkpoint-keep <n>      retain last n snapshots, 0 = all (default 3)
  --resume-from <snap.json>  continue an interrupted run from a snapshot"
    );
    exit(2)
}

fn parse_pairs(s: &str) -> Vec<(u32, u32)> {
    s.split(',')
        .map(|p| {
            let (a, b) = p.split_once(':').unwrap_or_else(|| {
                eprintln!("bad pair '{p}', expected a:b");
                exit(2)
            });
            (
                a.trim().parse().unwrap_or_else(|_| {
                    eprintln!("bad id '{a}'");
                    exit(2)
                }),
                b.trim().parse().unwrap_or_else(|_| {
                    eprintln!("bad id '{b}'");
                    exit(2)
                }),
            )
        })
        .collect()
}

fn parse_args() -> Args {
    let mut args = Args {
        table_a: String::new(),
        table_b: String::new(),
        instruction: String::new(),
        pos: vec![],
        neg: vec![],
        gold: None,
        interactive: false,
        error_rate: 0.05,
        workers: 25,
        price_cents: 1.0,
        budget_dollars: None,
        out: None,
        seed: 42,
        small: false,
        checkpoint_dir: None,
        checkpoint_every: 1,
        checkpoint_keep: store::DEFAULT_KEEP_LAST,
        resume_from: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> &str {
            argv.get(i + 1).map(|s| s.as_str()).unwrap_or_else(|| {
                eprintln!("missing value for {}", argv[i]);
                exit(2)
            })
        };
        match argv[i].as_str() {
            "--table-a" => args.table_a = value(i).to_string(),
            "--table-b" => args.table_b = value(i).to_string(),
            "--instruction" => args.instruction = value(i).to_string(),
            "--pos" => args.pos = parse_pairs(value(i)),
            "--neg" => args.neg = parse_pairs(value(i)),
            "--gold" => args.gold = Some(value(i).to_string()),
            "--error" => args.error_rate = value(i).parse().unwrap_or_else(|_| usage()),
            "--workers" => args.workers = value(i).parse().unwrap_or_else(|_| usage()),
            "--price-cents" => args.price_cents = value(i).parse().unwrap_or_else(|_| usage()),
            "--budget" => args.budget_dollars = Some(value(i).parse().unwrap_or_else(|_| usage())),
            "--seed" => args.seed = value(i).parse().unwrap_or_else(|_| usage()),
            "--out" => args.out = Some(value(i).to_string()),
            "--checkpoint-dir" => args.checkpoint_dir = Some(value(i).to_string()),
            "--checkpoint-every" => {
                args.checkpoint_every = value(i).parse().unwrap_or_else(|_| usage())
            }
            "--checkpoint-keep" => {
                args.checkpoint_keep = value(i).parse().unwrap_or_else(|_| usage())
            }
            "--resume-from" => args.resume_from = Some(value(i).to_string()),
            "--interactive" => {
                args.interactive = true;
                i += 1;
                continue;
            }
            "--small" => {
                args.small = true;
                i += 1;
                continue;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
        i += 2;
    }
    if args.table_a.is_empty()
        || args.table_b.is_empty()
        || args.instruction.is_empty()
        || args.pos.len() != 2
        || args.neg.len() != 2
        || (args.gold.is_none() && !args.interactive)
    {
        usage()
    }
    args
}

/// Thread the `--checkpoint-*` / `--resume-from` flags into a session.
fn apply_checkpointing<'s>(mut session: RunSession<'s>, args: &Args) -> RunSession<'s> {
    if let Some(dir) = &args.checkpoint_dir {
        session = session
            .checkpoint_dir(dir)
            .checkpoint_every(args.checkpoint_every)
            .checkpoint_keep(args.checkpoint_keep);
    }
    if let Some(path) = &args.resume_from {
        session = session.resume_from(path);
    }
    session
}

/// Oracle that asks the human at the terminal, remembering answers.
struct StdinOracle {
    table_a: Table,
    table_b: Table,
    instruction: String,
    answers: RefCell<std::collections::HashMap<PairKey, bool>>,
}

impl TruthOracle for StdinOracle {
    fn true_label(&self, pair: PairKey) -> bool {
        if let Some(&l) = self.answers.borrow().get(&pair) {
            return l;
        }
        let q = render_question(
            &self.table_a.schema,
            self.table_a.record(pair.a),
            self.table_b.record(pair.b),
            &self.instruction,
        );
        let stdin = std::io::stdin();
        loop {
            println!("\n{q}");
            print!("your answer [y/n]: ");
            std::io::stdout().flush().ok();
            let mut line = String::new();
            if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
                eprintln!("stdin closed; treating as 'no'");
                self.answers.borrow_mut().insert(pair, false);
                return false;
            }
            match line.trim().to_ascii_lowercase().as_str() {
                "y" | "yes" => {
                    self.answers.borrow_mut().insert(pair, true);
                    return true;
                }
                "n" | "no" => {
                    self.answers.borrow_mut().insert(pair, false);
                    return false;
                }
                _ => println!("please answer y or n"),
            }
        }
    }
}

fn load_gold(path: &str) -> HashSet<PairKey> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    let records = parse_csv(&text).unwrap_or_else(|e| {
        eprintln!("{path}: {e}");
        exit(1)
    });
    records
        .iter()
        .filter(|r| !r[0].trim().eq_ignore_ascii_case("a_id")) // optional header
        .map(|r| {
            if r.len() < 2 {
                eprintln!("gold rows need two columns a_id,b_id");
                exit(1)
            }
            PairKey::new(
                r[0].trim().parse().unwrap_or_else(|_| {
                    eprintln!("bad gold id {:?}", r[0]);
                    exit(1)
                }),
                r[1].trim().parse().unwrap_or_else(|_| {
                    eprintln!("bad gold id {:?}", r[1]);
                    exit(1)
                }),
            )
        })
        .collect()
}

fn main() {
    let args = parse_args();
    let read = |p: &str| {
        std::fs::read_to_string(p).unwrap_or_else(|e| {
            eprintln!("cannot read {p}: {e}");
            exit(1)
        })
    };
    let table_a = table_from_csv("table_a", &read(&args.table_a)).unwrap_or_else(|e| {
        eprintln!("{}: {e}", args.table_a);
        exit(1)
    });
    let table_b =
        table_from_csv_with_schema("table_b", &read(&args.table_b), table_a.schema.clone())
            .unwrap_or_else(|e| {
                eprintln!("{}: {e}", args.table_b);
                exit(1)
            });

    let seeds = args
        .pos
        .iter()
        .map(|&(a, b)| (PairKey::new(a, b), true))
        .chain(args.neg.iter().map(|&(a, b)| (PairKey::new(a, b), false)))
        .collect();
    let task = MatchTask::new(table_a.clone(), table_b.clone(), &args.instruction, seeds);

    let cfg = {
        let mut c = if args.small { CorleoneConfig::small() } else { CorleoneConfig::default() };
        c.engine.budget_cents = args.budget_dollars.map(|d| d * 100.0);
        c
    };
    let engine = Engine::new(cfg).with_seed(args.seed);

    let report = if args.interactive {
        // You are the crowd: one perfect "worker" whose answers come from
        // the terminal (each distinct question is asked once and cached).
        let oracle = StdinOracle {
            table_a,
            table_b,
            instruction: args.instruction.clone(),
            answers: RefCell::new(Default::default()),
        };
        let mut platform = CrowdPlatform::new(
            WorkerPool::perfect(1),
            CrowdConfig { price_cents: args.price_cents, seed: args.seed, ..Default::default() },
        );
        eprintln!("interactive mode: you will be asked to label pairs.\n");
        let session = engine.session(&task).platform(&mut platform).oracle(&oracle);
        apply_checkpointing(session, &args).try_run()
    } else {
        let gold = load_gold(args.gold.as_deref().expect("checked"));
        let oracle = GoldOracle::new(gold.clone());
        let pool = if args.error_rate == 0.0 {
            WorkerPool::perfect(args.workers)
        } else {
            WorkerPool::uniform(args.workers, args.error_rate)
        };
        let mut platform = CrowdPlatform::new(
            pool,
            CrowdConfig { price_cents: args.price_cents, seed: args.seed, ..Default::default() },
        );
        let session =
            engine.session(&task).platform(&mut platform).oracle(&oracle).gold(&gold);
        apply_checkpointing(session, &args).try_run()
    };

    let report = report.unwrap_or_else(|e| {
        eprintln!("run failed: {e}");
        exit(1)
    });

    println!("matches: {}", report.predicted_matches.len());
    for p in report.predicted_matches.iter().take(20) {
        println!("  {}:{}", p.a, p.b);
    }
    if report.predicted_matches.len() > 20 {
        println!("  … and {} more", report.predicted_matches.len() - 20);
    }
    if let Some(est) = &report.final_estimate {
        println!(
            "estimated accuracy: P={:.1}% (±{:.3}) R={:.1}% (±{:.3}) F1={:.1}%",
            est.precision * 100.0,
            est.eps_p,
            est.recall * 100.0,
            est.eps_r,
            est.f1 * 100.0
        );
    }
    if let Some(t) = report.final_true {
        println!(
            "true accuracy (vs gold): P={:.1}% R={:.1}% F1={:.1}%",
            t.precision * 100.0,
            t.recall * 100.0,
            t.f1 * 100.0
        );
    }
    println!(
        "crowd cost: ${:.2}, pairs labeled: {}, termination: {:?}",
        report.total_cost_dollars(),
        report.total_pairs_labeled,
        report.termination
    );
    if let Some(it) = report.perf.resumed_from_iteration {
        println!("resumed from snapshot at iteration {it}");
    }
    if report.perf.snapshots_written > 0 {
        println!(
            "snapshots written: {} (latest in {})",
            report.perf.snapshots_written,
            args.checkpoint_dir.as_deref().unwrap_or("?"),
        );
    }
    if let Some(out) = args.out {
        let json = serde_json::to_string_pretty(&report).unwrap_or_else(|e| {
            eprintln!("cannot serialize report: {e}");
            exit(1)
        });
        std::fs::write(&out, json).unwrap_or_else(|e| {
            eprintln!("cannot write {out}: {e}");
            exit(1)
        });
        println!("full report written to {out}");
    }
}
