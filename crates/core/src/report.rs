//! Human-readable rendering of run reports, shared by the CLI and the
//! examples.

use crate::engine::RunReport;
use std::fmt::Write as _;

impl RunReport {
    /// Render the full run as readable text: blocking summary, one block
    /// per iteration (matcher / estimate / truth / locator), and totals.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let pct = |x: f64| format!("{:.1}%", x * 100.0);

        if self.blocker.triggered {
            let _ = writeln!(
                out,
                "Blocker: {} pairs → {} ({} rules; labeled {}, ${:.2})",
                self.blocker.cartesian,
                self.blocker.umbrella_size,
                self.blocker.rules_applied.len(),
                self.blocker.pairs_labeled,
                self.blocker.cost_cents / 100.0,
            );
            for (rule, prec) in &self.blocker.rules_applied {
                let _ = writeln!(out, "  rule (est. precision {prec:.3}): {rule}");
            }
            if let Some(r) = self.blocking_recall {
                let _ = writeln!(out, "  blocking recall: {}", pct(r));
            }
        } else {
            let _ = writeln!(
                out,
                "Blocker: not triggered ({} pairs fit in memory)",
                self.blocker.cartesian
            );
        }

        for it in &self.iterations {
            let _ = writeln!(out, "Iteration {}:", it.iteration);
            let _ = writeln!(
                out,
                "  matcher: {} AL iterations over {} pairs, stop = {} \
                 ({} labeled, ${:.2})",
                it.matcher_al_iterations,
                it.region_size,
                it.matcher_stop,
                it.matcher_pairs_labeled,
                it.matcher_cost_cents / 100.0,
            );
            if !it.top_features.is_empty() {
                let feats: Vec<String> = it
                    .top_features
                    .iter()
                    .map(|(n, v)| format!("{n} ({})", pct(*v)))
                    .collect();
                let _ = writeln!(out, "  model features: {}", feats.join(", "));
            }
            let e = &it.estimate;
            let _ = writeln!(
                out,
                "  estimate: P={} (±{:.3}) R={} (±{:.3}) F1={} \
                 [{} rules, {} labels, ${:.2}]",
                pct(e.precision),
                e.eps_p,
                pct(e.recall),
                e.eps_r,
                pct(e.f1),
                e.rules_used,
                e.pairs_labeled,
                e.cost_cents / 100.0,
            );
            if let Some(t) = it.true_prf {
                let _ = writeln!(
                    out,
                    "  truth:    P={} R={} F1={}",
                    pct(t.precision),
                    pct(t.recall),
                    pct(t.f1)
                );
            }
            if let Some(loc) = &it.locator {
                let _ = writeln!(
                    out,
                    "  locator: {} difficult of {} ({}+{} rules){}",
                    loc.difficult_size,
                    loc.input_size,
                    loc.negative_rules_used,
                    loc.positive_rules_used,
                    loc.termination
                        .as_ref()
                        .map(|t| format!(" — stop: {t}"))
                        .unwrap_or_default(),
                );
            }
        }

        let _ = writeln!(
            out,
            "Result: {} matches, ${:.2} total, {} pairs labeled \
             (termination: {:?})",
            self.predicted_matches.len(),
            self.total_cost_cents / 100.0,
            self.total_pairs_labeled,
            self.termination,
        );
        let fs = &self.perf.faults;
        if fs.any() || fs.hits_failed > 0 {
            let _ = writeln!(
                out,
                "Crowd faults: {} HITs expired, {} assignments abandoned, \
                 {} no-shows, {} workers lost, {} outages — {} reposts \
                 ({:.0}s backoff), {} HITs failed",
                fs.hits_expired,
                fs.assignments_abandoned,
                fs.worker_no_shows,
                fs.workers_attrited,
                fs.outages,
                fs.reposts,
                fs.backoff_secs,
                fs.hits_failed,
            );
        }
        if let Some(t) = self.final_true {
            let _ = writeln!(
                out,
                "Final truth: P={} R={} F1={}",
                pct(t.precision),
                pct(t.recall),
                pct(t.f1)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::task::task_from_parts;
    use crate::{CorleoneConfig, Engine};
    use crowd::{CrowdConfig, CrowdPlatform, GoldOracle, WorkerPool};
    use similarity::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    #[test]
    fn render_text_mentions_every_phase() {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let rows: Vec<Vec<Value>> = (0..15)
            .map(|i| vec![Value::Text(format!("row {i}"))])
            .collect();
        let a = Table::new("a", schema.clone(), rows.clone());
        let b = Table::new("b", schema, rows);
        let task = task_from_parts(a, b, "same", [(0, 0), (1, 1)], [(0, 14), (2, 12)]);
        let gold = GoldOracle::from_pairs((0..15).map(|i| (i, i)));
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
        let report = Engine::new(CorleoneConfig::small())
            .with_seed(1)
            .session(&task)
            .platform(&mut platform)
            .oracle(&gold)
            .gold(gold.matches())
            .run();
        let text = report.render_text();
        assert!(text.contains("Blocker:"));
        assert!(text.contains("Iteration 1:"));
        assert!(text.contains("estimate:"));
        assert!(text.contains("truth:"));
        assert!(text.contains("Result:"));
        assert!(text.contains("termination:"));
        assert!(text.contains("Final truth:"));
        assert!(text.contains("model features:"));
        // A fault-free platform renders no fault block.
        assert!(!text.contains("Crowd faults:"));
    }
}
