//! Crowdsourced active learning (paper §5), shared by the Blocker (which
//! runs it on the sample `S`, §4.1 step 3) and the Matcher (which runs it
//! on the candidate set `C`).
//!
//! Loop: train a random forest on the labeled examples so far → measure
//! its confidence on a held-out monitoring set → check the §5.3 stopping
//! patterns → pick the next batch of informative examples (top-`p` vote
//! entropy, weight-sampled down to `q` for diversity) → have the crowd
//! label them under the `2+1` scheme → repeat.

use crate::candidates::CandidateSet;
use crate::config::MatcherConfig;
use crate::stopping::{check, peak_index, StopDecision};
use crowd::{CrowdPlatform, PairKey, Scheme, TruthOracle};
use exec::Threads;
use forest::{Dataset, RandomForest};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// Why the learning loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// One of the §5.3 confidence patterns fired.
    Pattern(StopDecision),
    /// Every selectable candidate has been labeled.
    Exhausted,
    /// The safety-net iteration cap was reached.
    MaxIterations,
    /// The engine's monetary budget ran out mid-phase.
    Budget,
}

/// Result of an active-learning run.
#[derive(Debug, Clone)]
pub struct LearnOutcome {
    /// The selected classifier (rolled back to the confidence peak when
    /// the run stopped on the degrading pattern).
    pub forest: RandomForest,
    /// AL iterations executed (= forests trained).
    pub iterations: usize,
    /// Why the loop stopped.
    pub stop: StopReason,
    /// Per-iteration monitoring-set confidence (raw, unsmoothed).
    pub conf_history: Vec<f64>,
    /// Candidate indices the crowd labeled positive — the set `T` used for
    /// rule precision upper bounds (§4.2 step 1).
    pub crowd_positives: Vec<usize>,
    /// Candidate indices the crowd labeled negative.
    pub crowd_negatives: Vec<usize>,
    /// Distinct pairs labeled by the crowd during this run.
    pub pairs_labeled: usize,
}

impl LearnOutcome {
    /// Crowd labels gathered during the run as `(candidate index, label)`.
    pub fn crowd_labels(&self) -> impl Iterator<Item = (usize, bool)> + '_ {
        self.crowd_positives
            .iter()
            .map(|&i| (i, true))
            .chain(self.crowd_negatives.iter().map(|&i| (i, false)))
    }
}

/// Compute vote entropies of the given candidate indices, in parallel for
/// large sets.
pub fn entropies(
    forest: &RandomForest,
    cand: &CandidateSet,
    indices: &[usize],
    threads: Threads,
) -> Vec<f64> {
    if indices.len() < 8192 || threads.get() <= 1 {
        return indices.iter().map(|&i| forest.entropy(cand.row(i))).collect();
    }
    exec::par_map(threads, indices, |&i| forest.entropy(cand.row(i)))
}

/// Rank an `(index, entropy)` pool for batch selection: highest entropy
/// first, truncated to `pool_size`. Uses `total_cmp`, so a NaN entropy (a
/// degenerate forest can produce one) gets a fixed position in the order
/// instead of panicking the run mid-iteration — the PR 2 comparator
/// incident, memorialized by `constant_feature_task_survives_importance_sort`.
fn rank_pool(pool: &mut Vec<(usize, f64)>, pool_size: usize) {
    pool.sort_unstable_by(|a, b| b.1.total_cmp(&a.1));
    pool.truncate(pool_size);
}

/// Run crowdsourced active learning over `cand`.
///
/// `seed_examples` are the user's four labeled pairs, given as feature
/// vectors (they need not belong to `cand`). Labels for everything else
/// come from the crowd via `platform`.
pub fn run_active_learning(
    cand: &CandidateSet,
    seed_examples: &[(Vec<f64>, bool)],
    platform: &mut CrowdPlatform,
    oracle: &dyn TruthOracle,
    cfg: &MatcherConfig,
    rng: &mut StdRng,
    threads: Threads,
) -> LearnOutcome {
    assert!(!seed_examples.is_empty(), "need initial labeled examples");
    let n_features = cand.n_features();
    let key_to_idx: HashMap<PairKey, usize> = cand
        .pairs()
        .iter()
        .enumerate()
        .map(|(i, &k)| (k, i))
        .collect();

    // Monitoring set V: a random monitor_fraction of C, set aside (§5.3).
    let mut all: Vec<usize> = (0..cand.len()).collect();
    all.shuffle(rng);
    let n_monitor = ((cand.len() as f64 * cfg.monitor_fraction).round() as usize)
        .clamp(1.min(cand.len()), cand.len() / 2);
    let monitor: Vec<usize> = all[..n_monitor].to_vec();
    let monitor_set: HashSet<usize> = monitor.iter().copied().collect();

    let mut train = Dataset::new(n_features);
    for (x, l) in seed_examples {
        train.push(x, *l);
    }
    let train_all = |t: &Dataset, rng: &mut StdRng| {
        let idx: Vec<usize> = (0..t.len()).collect();
        RandomForest::train_par(t, &idx, &cfg.forest, rng, threads)
    };

    let mut selected: HashSet<usize> = HashSet::new();
    let mut crowd_positives = Vec::new();
    let mut crowd_negatives = Vec::new();
    let mut pairs_labeled = 0usize;
    let mut conf_history: Vec<f64> = Vec::new();
    let mut snapshots: Vec<RandomForest> = Vec::new();
    let mut stop = StopReason::MaxIterations;

    for _iter in 0..cfg.max_iterations {
        let forest = train_all(&train, rng);
        let conf = if monitor.is_empty() {
            1.0
        } else {
            forest
                .confidence_batch(cand.matrix(), cand.n_features(), &monitor, threads)
                .iter()
                .sum::<f64>()
                / monitor.len() as f64
        };
        conf_history.push(conf);
        snapshots.push(forest);

        let decision = check(&conf_history, &cfg.stopping);
        if decision.should_stop() {
            stop = StopReason::Pattern(decision);
            break;
        }
        if let Some(cap) = cfg.budget_cents_cap {
            if platform.ledger().total_cents >= cap {
                stop = StopReason::Budget;
                break;
            }
        }

        // Select the next batch: top-p entropy, then entropy-weighted
        // sampling of q for diversity (§5.2).
        let selectable: Vec<usize> = (0..cand.len())
            .filter(|i| !selected.contains(i) && !monitor_set.contains(i))
            .collect();
        if selectable.is_empty() {
            stop = StopReason::Exhausted;
            break;
        }
        let forest = snapshots.last().expect("just pushed");
        let ent = entropies(forest, cand, &selectable, threads);
        let mut pool: Vec<(usize, f64)> =
            selectable.iter().copied().zip(ent).collect();
        rank_pool(&mut pool, cfg.pool_size);
        let batch = weighted_sample_without_replacement(&pool, cfg.batch_size, rng);

        let keys: Vec<PairKey> = batch.iter().map(|&i| cand.pair(i)).collect();
        let labeled = platform.label_batch(oracle, &keys, Scheme::TwoPlusOne);
        if labeled.is_empty() {
            stop = StopReason::Exhausted;
            break;
        }
        for (key, label) in labeled {
            let idx = key_to_idx[&key];
            if !selected.insert(idx) {
                continue;
            }
            train.push(cand.row(idx), label);
            pairs_labeled += 1;
            if label {
                crowd_positives.push(idx);
            } else {
                crowd_negatives.push(idx);
            }
        }
    }

    // Pick the classifier to return: on a degrading stop, roll back to
    // "the last classifier before degrading" — the smoothed-confidence
    // peak (§5.3); otherwise the latest.
    let chosen = match stop {
        StopReason::Pattern(StopDecision::Degrading) => {
            peak_index(&conf_history, &cfg.stopping)
        }
        _ => snapshots.len() - 1,
    };
    LearnOutcome {
        forest: snapshots.swap_remove(chosen),
        iterations: conf_history.len(),
        stop,
        conf_history,
        crowd_positives,
        crowd_negatives,
        pairs_labeled,
    }
}

/// Sample up to `k` items without replacement with probability
/// proportional to weight. Zero-weight items are only chosen after all
/// positive-weight items (uniformly at random).
fn weighted_sample_without_replacement(
    pool: &[(usize, f64)],
    k: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let mut remaining: Vec<(usize, f64)> = pool.to_vec();
    let mut out = Vec::with_capacity(k.min(remaining.len()));
    while out.len() < k && !remaining.is_empty() {
        let total: f64 = remaining.iter().map(|(_, w)| *w).sum();
        let pick = if total <= 0.0 {
            rng.gen_range(0..remaining.len())
        } else {
            let mut t = rng.gen_range(0.0..total);
            let mut chosen = remaining.len() - 1;
            for (j, (_, w)) in remaining.iter().enumerate() {
                if t < *w {
                    chosen = j;
                    break;
                }
                t -= *w;
            }
            chosen
        };
        out.push(remaining.swap_remove(pick).0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::task_from_parts;
    use crate::task::MatchTask;
    use crowd::{CrowdConfig, GoldOracle, WorkerPool};
    use rand::SeedableRng;
    use similarity::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    /// A task where identical names match: 30 A records, 40 B records,
    /// B[0..30] mirror A with light renaming; gold = diagonal.
    fn toy() -> (MatchTask, GoldOracle) {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let a_rows: Vec<Vec<Value>> = (0..30)
            .map(|i| vec![Value::Text(format!("widget alpha {i}"))])
            .collect();
        let mut b_rows: Vec<Vec<Value>> = (0..30)
            .map(|i| vec![Value::Text(format!("widget alpha {i}"))])
            .collect();
        b_rows.extend((0..10).map(|i| vec![Value::Text(format!("gizmo beta {i}"))]));
        let a = Table::new("a", schema.clone(), a_rows);
        let b = Table::new("b", schema, b_rows);
        let task = task_from_parts(a, b, "same widget", [(0, 0), (1, 1)], [(0, 35), (2, 33)]);
        let gold = GoldOracle::from_pairs((0..30).map(|i| (i, i)));
        (task, gold)
    }

    fn run(cfg: &MatcherConfig, err: f64) -> (LearnOutcome, CandidateSet, GoldOracle) {
        let (task, gold) = toy();
        let cand = CandidateSet::full_cartesian(&task);
        let seeds: Vec<(Vec<f64>, bool)> = task
            .seeds
            .iter()
            .map(|&(k, l)| (task.vectorize(k), l))
            .collect();
        let pool = if err == 0.0 {
            WorkerPool::perfect(5)
        } else {
            WorkerPool::uniform(5, err)
        };
        let mut platform = CrowdPlatform::new(pool, CrowdConfig::default());
        let mut rng = StdRng::seed_from_u64(77);
        let out = run_active_learning(
            &cand,
            &seeds,
            &mut platform,
            &gold,
            cfg,
            &mut rng,
            Threads::new(2),
        );
        (out, cand, gold)
    }

    fn small_cfg() -> MatcherConfig {
        MatcherConfig {
            max_iterations: 30,
            stopping: crate::config::StoppingConfig {
                n_converged: 8,
                n_degrade: 6,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn learns_the_diagonal() {
        let (out, cand, gold) = run(&small_cfg(), 0.0);
        assert!(out.iterations >= 2);
        let mut tp = 0;
        let mut pp = 0;
        for i in 0..cand.len() {
            if out.forest.predict(cand.row(i)) {
                pp += 1;
                if gold.true_label(cand.pair(i)) {
                    tp += 1;
                }
            }
        }
        assert!(pp > 0, "must predict some matches");
        let precision = tp as f64 / pp as f64;
        let recall = tp as f64 / 30.0;
        assert!(precision > 0.9, "precision {precision}");
        assert!(recall > 0.9, "recall {recall}");
    }

    #[test]
    fn confidence_history_recorded_each_iteration() {
        let (out, _, _) = run(&small_cfg(), 0.0);
        assert_eq!(out.conf_history.len(), out.iterations);
        assert!(out
            .conf_history
            .iter()
            .all(|&c| (1.0 - std::f64::consts::LN_2 - 1e-9..=1.0).contains(&c)));
    }

    #[test]
    fn crowd_labels_are_tracked() {
        let (out, cand, gold) = run(&small_cfg(), 0.0);
        assert!(out.pairs_labeled > 0);
        assert_eq!(
            out.pairs_labeled,
            out.crowd_positives.len() + out.crowd_negatives.len()
        );
        // With a perfect crowd every tracked positive is a gold match.
        for &i in &out.crowd_positives {
            assert!(gold.true_label(cand.pair(i)));
        }
    }

    #[test]
    fn stops_with_a_reason() {
        let (out, _, _) = run(&small_cfg(), 0.0);
        match out.stop {
            StopReason::Pattern(d) => assert!(d.should_stop()),
            StopReason::Exhausted | StopReason::MaxIterations | StopReason::Budget => {}
        }
    }

    #[test]
    fn noisy_crowd_still_learns() {
        let (out, cand, gold) = run(&small_cfg(), 0.1);
        let mut correct = 0;
        for i in 0..cand.len() {
            if out.forest.predict(cand.row(i)) == gold.true_label(cand.pair(i)) {
                correct += 1;
            }
        }
        let acc = correct as f64 / cand.len() as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn weighted_sampling_prefers_heavy_items() {
        let mut rng = StdRng::seed_from_u64(5);
        let pool: Vec<(usize, f64)> =
            (0..10).map(|i| (i, if i == 0 { 100.0 } else { 0.01 })).collect();
        let mut count0 = 0;
        for _ in 0..200 {
            let s = weighted_sample_without_replacement(&pool, 1, &mut rng);
            if s[0] == 0 {
                count0 += 1;
            }
        }
        assert!(count0 > 180, "{count0}");
    }

    #[test]
    fn weighted_sampling_handles_zero_weights() {
        let mut rng = StdRng::seed_from_u64(6);
        let pool: Vec<(usize, f64)> = (0..5).map(|i| (i, 0.0)).collect();
        let s = weighted_sample_without_replacement(&pool, 3, &mut rng);
        assert_eq!(s.len(), 3);
        let distinct: HashSet<usize> = s.iter().copied().collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn nan_entropy_pool_ranks_deterministically() {
        // Regression (the D1 rule's provenance, same family as PR 2's
        // constant-feature incident): the entropy ranking used
        // `partial_cmp(..).expect("entropy is finite")` and panicked the
        // whole run if a degenerate forest produced a NaN entropy.
        // `total_cmp` must instead give NaN a fixed place in the order so
        // the pool stays deterministic across runs and thread counts.
        let mut pool: Vec<(usize, f64)> =
            vec![(0, 0.3), (1, f64::NAN), (2, 0.9), (3, f64::NAN), (4, 0.0)];
        rank_pool(&mut pool, 4);
        // total_cmp orders positive NaN above every finite value, so the
        // NaN entries lead (in stable index order), then descending finite.
        let got: Vec<usize> = pool.iter().map(|&(i, _)| i).collect();
        assert_eq!(got, vec![1, 3, 2, 0]);

        // Byte-identical across repeated runs on a fresh clone.
        let mut again: Vec<(usize, f64)> =
            vec![(0, 0.3), (1, f64::NAN), (2, 0.9), (3, f64::NAN), (4, 0.0)];
        rank_pool(&mut again, 4);
        let got_again: Vec<usize> = again.iter().map(|&(i, _)| i).collect();
        assert_eq!(got, got_again);
    }
}
