//! The candidate set `C`: surviving pairs with materialized feature
//! vectors.
//!
//! The blocking threshold `t_B` is chosen so that "we can fit the feature
//! vectors of all these pairs in memory" (§4.1) — this type is that
//! in-memory materialization: a dense row-major matrix parallel to the
//! pair list. Vectorization is parallelized across a crossbeam scope since
//! it is the dominant cost when `C` is large.

use crate::task::MatchTask;
use crowd::PairKey;

/// Pairs plus their feature vectors.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    pairs: Vec<PairKey>,
    n_features: usize,
    matrix: Vec<f64>,
}

impl CandidateSet {
    /// Materialize feature vectors for `pairs` using the task's
    /// vectorizer, in parallel.
    pub fn build(task: &MatchTask, pairs: Vec<PairKey>) -> Self {
        let n_features = task.n_features();
        let mut matrix = vec![0.0f64; pairs.len() * n_features];
        let n_threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .min(pairs.len().max(1));
        let chunk = pairs.len().div_ceil(n_threads).max(1);
        crossbeam::scope(|s| {
            for (rows, keys) in matrix
                .chunks_mut(chunk * n_features)
                .zip(pairs.chunks(chunk))
            {
                s.spawn(move |_| {
                    for (row, &key) in rows.chunks_mut(n_features).zip(keys) {
                        let v = task.vectorize(key);
                        row.copy_from_slice(&v);
                    }
                });
            }
        })
        .expect("vectorization threads must not panic");
        CandidateSet { pairs, n_features, matrix }
    }

    /// All `|A| × |B|` pairs, vectorized. Only sensible when the Cartesian
    /// product is at most `t_B` (the no-blocking path).
    pub fn full_cartesian(task: &MatchTask) -> Self {
        let mut pairs = Vec::with_capacity(task.table_a.len() * task.table_b.len());
        for a in 0..task.table_a.len() as u32 {
            for b in 0..task.table_b.len() as u32 {
                pairs.push(PairKey::new(a, b));
            }
        }
        Self::build(task, pairs)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Features per pair.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The feature row of pair `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.matrix[i * self.n_features..(i + 1) * self.n_features]
    }

    /// The key of pair `i`.
    pub fn pair(&self, i: usize) -> PairKey {
        self.pairs[i]
    }

    /// All pair keys.
    pub fn pairs(&self) -> &[PairKey] {
        &self.pairs
    }

    /// Index of a pair key, if present (linear scan — used only in tests
    /// and small paths).
    pub fn index_of(&self, key: PairKey) -> Option<usize> {
        self.pairs.iter().position(|&p| p == key)
    }

    /// Restrict to a subset of indices, keeping their order.
    pub fn subset(&self, indices: &[usize]) -> CandidateSet {
        let mut pairs = Vec::with_capacity(indices.len());
        let mut matrix = Vec::with_capacity(indices.len() * self.n_features);
        for &i in indices {
            pairs.push(self.pairs[i]);
            matrix.extend_from_slice(self.row(i));
        }
        CandidateSet { pairs, n_features: self.n_features, matrix }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::task_from_parts;
    use similarity::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    fn task() -> MatchTask {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let rows = |n: usize, tag: &str| -> Vec<Vec<Value>> {
            (0..n)
                .map(|i| vec![Value::Text(format!("{tag} {i}"))])
                .collect()
        };
        let a = Table::new("a", schema.clone(), rows(5, "alpha"));
        let b = Table::new("b", schema, rows(7, "alpha"));
        task_from_parts(a, b, "same?", [(0, 0), (1, 1)], [(0, 6), (2, 5)])
    }

    #[test]
    fn full_cartesian_has_all_pairs() {
        let t = task();
        let c = CandidateSet::full_cartesian(&t);
        assert_eq!(c.len(), 35);
        assert_eq!(c.n_features(), t.n_features());
        assert_eq!(c.pair(0), PairKey::new(0, 0));
        assert_eq!(c.pair(34), PairKey::new(4, 6));
    }

    #[test]
    fn rows_match_direct_vectorization() {
        let t = task();
        let c = CandidateSet::full_cartesian(&t);
        for i in [0usize, 7, 34] {
            let direct = t.vectorize(c.pair(i));
            let row = c.row(i);
            for (x, y) in direct.iter().zip(row) {
                assert!((x == y) || (x.is_nan() && y.is_nan()));
            }
        }
    }

    #[test]
    fn subset_preserves_rows() {
        let t = task();
        let c = CandidateSet::full_cartesian(&t);
        let s = c.subset(&[3, 10, 20]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.pair(1), c.pair(10));
        assert_eq!(s.row(2), c.row(20));
    }

    #[test]
    fn index_of_finds_pairs() {
        let t = task();
        let c = CandidateSet::full_cartesian(&t);
        assert_eq!(c.index_of(PairKey::new(2, 3)), Some(2 * 7 + 3));
        assert_eq!(c.index_of(PairKey::new(9, 9)), None);
    }

    #[test]
    fn build_empty_is_fine() {
        let t = task();
        let c = CandidateSet::build(&t, vec![]);
        assert!(c.is_empty());
    }
}
