//! The candidate set `C`: surviving pairs with materialized feature
//! vectors.
//!
//! The blocking threshold `t_B` is chosen so that "we can fit the feature
//! vectors of all these pairs in memory" (§4.1) — this type is that
//! in-memory materialization: a dense row-major matrix parallel to the
//! pair list. Vectorization runs through the shared [`exec`] core since it
//! is the dominant cost when `C` is large, and consults the run's
//! [`FeatureCache`] when one is attached, so a pair vectorized by an
//! earlier phase is never recomputed.

use crate::cache::FeatureCache;
use crate::source::{CandidateSource, CartesianScan};
use crate::task::MatchTask;
use crowd::PairKey;
use exec::Threads;

/// Pairs plus their feature vectors.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    pairs: Vec<PairKey>,
    n_features: usize,
    matrix: Vec<f64>,
}

impl CandidateSet {
    /// Materialize feature vectors for `pairs` using the task's
    /// vectorizer, in parallel on the machine's available parallelism and
    /// without a cache. Engine runs use [`CandidateSet::build_with`].
    pub fn build(task: &MatchTask, pairs: Vec<PairKey>) -> Self {
        Self::build_with(task, pairs, Threads::auto(), None)
    }

    /// Materialize feature vectors for `pairs` with an explicit thread
    /// budget, consulting `cache` (read-through) when given.
    pub fn build_with(
        task: &MatchTask,
        pairs: Vec<PairKey>,
        threads: Threads,
        cache: Option<&FeatureCache>,
    ) -> Self {
        let n_features = task.n_features();
        let rows: Vec<Vec<f64>> = exec::par_map(threads, &pairs, |&key| match cache {
            Some(c) => c.get_or_compute(key, || task.vectorize(key)).as_ref().clone(),
            None => task.vectorize(key),
        });
        let mut matrix = Vec::with_capacity(pairs.len() * n_features);
        for row in &rows {
            matrix.extend_from_slice(row);
        }
        CandidateSet { pairs, n_features, matrix }
    }

    /// Materialize the pairs produced by a [`CandidateSource`]: generate
    /// (deterministic row-major order at any thread count), then
    /// vectorize. The Blocker's sole entry into this type.
    pub fn from_source(
        task: &MatchTask,
        source: &dyn CandidateSource,
        threads: Threads,
        cache: Option<&FeatureCache>,
    ) -> Self {
        Self::build_with(task, source.generate(threads), threads, cache)
    }

    /// All `|A| × |B|` pairs, vectorized. Only sensible when the Cartesian
    /// product is at most `t_B` (the no-blocking path). An empty table on
    /// either side yields an empty set.
    pub fn full_cartesian(task: &MatchTask) -> Self {
        Self::full_cartesian_with(task, Threads::auto(), None)
    }

    /// [`CandidateSet::full_cartesian`] with an explicit thread budget and
    /// optional feature cache.
    pub fn full_cartesian_with(
        task: &MatchTask,
        threads: Threads,
        cache: Option<&FeatureCache>,
    ) -> Self {
        Self::from_source(task, &CartesianScan::new(task, Vec::new()), threads, cache)
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if there are no pairs.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Features per pair.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// The feature row of pair `i`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.matrix[i * self.n_features..(i + 1) * self.n_features]
    }

    /// The full row-major feature matrix (`len × n_features`).
    pub fn matrix(&self) -> &[f64] {
        &self.matrix
    }

    /// The key of pair `i`.
    pub fn pair(&self, i: usize) -> PairKey {
        self.pairs[i]
    }

    /// All pair keys.
    pub fn pairs(&self) -> &[PairKey] {
        &self.pairs
    }

    /// Index of a pair key, if present (linear scan — used only in tests
    /// and small paths).
    pub fn index_of(&self, key: PairKey) -> Option<usize> {
        self.pairs.iter().position(|&p| p == key)
    }

    /// Restrict to a subset of indices, keeping their order.
    pub fn subset(&self, indices: &[usize]) -> CandidateSet {
        let mut pairs = Vec::with_capacity(indices.len());
        let mut matrix = Vec::with_capacity(indices.len() * self.n_features);
        for &i in indices {
            pairs.push(self.pairs[i]);
            matrix.extend_from_slice(self.row(i));
        }
        CandidateSet { pairs, n_features: self.n_features, matrix }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::task_from_parts;
    use similarity::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    fn task() -> MatchTask {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let rows = |n: usize, tag: &str| -> Vec<Vec<Value>> {
            (0..n)
                .map(|i| vec![Value::Text(format!("{tag} {i}"))])
                .collect()
        };
        let a = Table::new("a", schema.clone(), rows(5, "alpha"));
        let b = Table::new("b", schema, rows(7, "alpha"));
        task_from_parts(a, b, "same?", [(0, 0), (1, 1)], [(0, 6), (2, 5)])
    }

    #[test]
    fn full_cartesian_has_all_pairs() {
        let t = task();
        let c = CandidateSet::full_cartesian(&t);
        assert_eq!(c.len(), 35);
        assert_eq!(c.n_features(), t.n_features());
        assert_eq!(c.pair(0), PairKey::new(0, 0));
        assert_eq!(c.pair(34), PairKey::new(4, 6));
    }

    #[test]
    fn rows_match_direct_vectorization() {
        let t = task();
        let c = CandidateSet::full_cartesian(&t);
        for i in [0usize, 7, 34] {
            let direct = t.vectorize(c.pair(i));
            let row = c.row(i);
            for (x, y) in direct.iter().zip(row) {
                assert!((x == y) || (x.is_nan() && y.is_nan()));
            }
        }
    }

    #[test]
    fn subset_preserves_rows() {
        let t = task();
        let c = CandidateSet::full_cartesian(&t);
        let s = c.subset(&[3, 10, 20]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.pair(1), c.pair(10));
        assert_eq!(s.row(2), c.row(20));
    }

    #[test]
    fn index_of_finds_pairs() {
        let t = task();
        let c = CandidateSet::full_cartesian(&t);
        assert_eq!(c.index_of(PairKey::new(2, 3)), Some(2 * 7 + 3));
        assert_eq!(c.index_of(PairKey::new(9, 9)), None);
    }

    #[test]
    fn build_empty_is_fine() {
        let t = task();
        let c = CandidateSet::build(&t, vec![]);
        assert!(c.is_empty());
    }

    #[test]
    fn full_cartesian_on_empty_tables_is_empty() {
        // Regression: an empty table on either side (seedless tasks can
        // be constructed directly or deserialized) must yield an empty
        // set, never panic on a zero-length matrix.
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        type Rows = Vec<Vec<Value>>;
        let cases: [(Rows, Rows); 3] = [
            (vec![], vec![vec!["x".into()]]),
            (vec![vec!["x".into()]], vec![]),
            (vec![], vec![]),
        ];
        for (rows_a, rows_b) in cases {
            let a = Table::new("a", schema.clone(), rows_a);
            let b = Table::new("b", schema.clone(), rows_b);
            let vectorizer = similarity::FeatureVectorizer::fit(&a, &b);
            let t = MatchTask {
                table_a: a,
                table_b: b,
                instruction: String::new(),
                seeds: vec![],
                vectorizer,
                analysis: Default::default(),
            };
            let c = CandidateSet::full_cartesian(&t);
            assert!(c.is_empty());
            assert_eq!(c.matrix().len(), 0);
        }
    }

    #[test]
    fn from_source_matches_full_cartesian() {
        let t = task();
        let direct = CandidateSet::full_cartesian(&t);
        let via = CandidateSet::from_source(
            &t,
            &CartesianScan::new(&t, Vec::new()),
            Threads::new(2),
            None,
        );
        assert_eq!(direct.pairs(), via.pairs());
        let bits = |m: &[f64]| m.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(direct.matrix()), bits(via.matrix()));
    }

    #[test]
    fn build_with_cache_vectorizes_each_pair_once() {
        let t = task();
        let cache = FeatureCache::with_capacity(1000);
        let pairs: Vec<PairKey> = (0..5u32)
            .flat_map(|a| (0..7u32).map(move |b| PairKey::new(a, b)))
            .collect();
        let c1 = CandidateSet::build_with(&t, pairs.clone(), Threads::new(2), Some(&cache));
        assert_eq!(cache.stats().misses, 35);
        let c2 = CandidateSet::build_with(&t, pairs, Threads::new(1), Some(&cache));
        assert_eq!(cache.stats().hits, 35, "second build served from cache");
        let bits = |m: &[f64]| m.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(c1.matrix()), bits(c2.matrix()));
    }
}
