//! Candidate-pair sources: how the umbrella set is *generated*.
//!
//! The Blocker's final step turns the selected blocking rules into the
//! set of surviving pairs. [`CandidateSource`] abstracts over how those
//! pairs are produced:
//!
//! * [`CartesianScan`] — evaluate the rules on every pair of `A × B`
//!   (the original behavior). O(|A|·|B|) but fully general; kept as the
//!   fallback and as the equivalence oracle for the indexed path.
//! * [`IndexedJoin`] — output-sensitive generation: pick one rule whose
//!   predicates are all similarity-join conditions, probe inverted
//!   indexes ([`similarity::index`]) for a superset of its survivors,
//!   then verify the full rule set on the (small) candidate list with
//!   the same bit-identical kernels the scan uses.
//!
//! [`plan_blocking_source`] inspects the rules and picks the indexed
//! path whenever one rule is fully indexable, else falls back to the
//! scan.
//!
//! # Why one rule suffices
//!
//! Blocking rules are *negative*: a pair is blocked when **any** rule
//! fires, so the survivor set of all rules is contained in the survivor
//! set of each single rule. A rule is a conjunction of predicates, so
//! its survivors are the **union** over predicates of "predicate fails"
//! — and a threshold predicate `f <= t` (with `nan_satisfies`) fails
//! exactly when `f` is non-NaN and `f > t`, a similarity-join
//! condition the indexes over-approximate. Index probes thus yield a
//! superset of the true survivor set; the verification pass shrinks it
//! to exactly the pairs the scan would keep.
//!
//! # Determinism
//!
//! Both sources return survivors in row-major pair order (`a` asc, then
//! `b` asc), independent of thread count: the scan enumerates in order,
//! the join sorts + dedups its candidates before the order-preserving
//! verification pass. The proptest suite asserts byte-identical output
//! between the two paths at 1/2/8 threads.

use crate::task::MatchTask;
use crowd::PairKey;
use exec::Threads;
use forest::{Op, Rule};
use similarity::index::{ExactIndex, InvertedIndex, ProbeScratch, SetMeasure, TokenSpace};
use similarity::FeatureKind;

/// A strategy for generating the umbrella set (the pairs surviving the
/// blocking rules), in deterministic row-major order.
pub trait CandidateSource {
    /// Short, deterministic description of the strategy for reports
    /// (e.g. `"cartesian_scan"`).
    fn describe(&self) -> String;

    /// Generate the surviving pairs in row-major order (`a` ascending,
    /// then `b` ascending). Must return the same bytes at any thread
    /// count.
    fn generate(&self, threads: Threads) -> Vec<PairKey>;
}

/// Evaluate the rules against every pair of `A × B` (lazy, memoized
/// per-pair feature computation through the precomputed analysis). The
/// original Blocker behavior and the equivalence oracle for
/// [`IndexedJoin`].
pub struct CartesianScan<'t> {
    task: &'t MatchTask,
    rules: Vec<Rule>,
}

impl<'t> CartesianScan<'t> {
    /// A scan of `task`'s Cartesian product under `rules` (empty rules
    /// → every pair survives).
    pub fn new(task: &'t MatchTask, rules: Vec<Rule>) -> Self {
        CartesianScan { task, rules }
    }
}

impl CandidateSource for CartesianScan<'_> {
    fn describe(&self) -> String {
        "cartesian_scan".to_string()
    }

    fn generate(&self, threads: Threads) -> Vec<PairKey> {
        let task = self.task;
        let n_a = task.table_a.len() as u32;
        let n_b = task.table_b.len() as u32;
        if self.rules.is_empty() {
            // No rules: every pair survives. Stream the keys in parallel
            // chunks (row-major order is preserved by indexed_par_map)
            // rather than a serial push loop.
            let n = n_a as usize * n_b as usize;
            if n == 0 {
                return Vec::new();
            }
            return exec::indexed_par_map(threads, n, |i| {
                PairKey::new((i / n_b as usize) as u32, (i % n_b as usize) as u32)
            });
        }
        let analysis = task.ensure_analysis(threads);
        // One work item per A-row; the exec core chunks and
        // self-schedules them. Scratch buffers live per item (n_features
        // is small), and kernel counters flush once per row, not once
        // per feature.
        let n_features = task.n_features();
        let rules = &self.rules;
        let per_row: Vec<Vec<PairKey>> = exec::indexed_par_map(threads, n_a as usize, |a| {
            let a = a as u32;
            let rec_a = task.table_a.record(a);
            let mut memo: Vec<f64> = vec![f64::NAN; n_features];
            let mut computed: Vec<bool> = vec![false; n_features];
            let mut out = Vec::new();
            let mut n_computed = 0u64;
            for b in 0..n_b {
                let rec_b = task.table_b.record(b);
                computed.iter_mut().for_each(|c| *c = false);
                let mut blocked = false;
                'rules: for rule in rules {
                    for p in &rule.predicates {
                        if !computed[p.feature] {
                            memo[p.feature] =
                                task.vectorizer.feature_pre(p.feature, rec_a, rec_b, analysis);
                            computed[p.feature] = true;
                            n_computed += 1;
                        }
                    }
                    if rule.matches(&memo) {
                        blocked = true;
                        break 'rules;
                    }
                }
                if !blocked {
                    out.push(PairKey::new(a, b));
                }
            }
            task.analysis.note_single_features(n_computed, 0);
            out
        });
        per_row.into_iter().flatten().collect()
    }
}

/// One indexable predicate of the chosen rule, mapped onto an index
/// probe. The predicate *fails* (pair survives) exactly when the probed
/// similarity strictly exceeds `threshold`.
#[derive(Debug, Clone, PartialEq)]
enum ProbeSpec {
    /// Set-similarity join over one token space.
    Set { attr: usize, space: TokenSpace, measure: SetMeasure, threshold: f64 },
    /// Equality join on the collapsed normalized string
    /// (`exact_match > t` with `t < 1` means equality).
    Exact { attr: usize },
}

impl ProbeSpec {
    fn describe(&self) -> String {
        match self {
            ProbeSpec::Set { attr, space, measure, threshold } => {
                format!("a{attr}:{}:{}>{threshold:.3}", space.name(), measure.name())
            }
            ProbeSpec::Exact { attr } => format!("a{attr}:exact"),
        }
    }
}

/// Map a predicate onto an index probe, or `None` when the index cannot
/// serve it. Indexable: `f <= t` with `nan_satisfies`, `0 ≤ t < 1`, and
/// `f` a set/vector similarity with a precomputed token set (char-level
/// and numeric kinds, negated or `Gt` predicates, and cosine without a
/// corpus model all fall back to the scan).
fn probe_spec(task: &MatchTask, pred: &forest::Predicate) -> Option<ProbeSpec> {
    if pred.op != Op::Le || !pred.nan_satisfies {
        return None;
    }
    let t = pred.threshold;
    if !t.is_finite() || !(0.0..1.0).contains(&t) {
        return None;
    }
    let def = task.vectorizer.library().defs.get(pred.feature)?;
    let set = |space, measure| {
        Some(ProbeSpec::Set { attr: def.attr, space, measure, threshold: t })
    };
    match def.kind {
        FeatureKind::JaccardWords => set(TokenSpace::Words, SetMeasure::Jaccard),
        FeatureKind::Jaccard3Grams => set(TokenSpace::Grams, SetMeasure::Jaccard),
        FeatureKind::DiceWords => set(TokenSpace::Words, SetMeasure::Dice),
        FeatureKind::OverlapWords => set(TokenSpace::Words, SetMeasure::Overlap),
        // Soundex similarity is Jaccard over packed code sets, with the
        // same empty-set conventions.
        FeatureKind::Soundex => set(TokenSpace::Soundex, SetMeasure::Jaccard),
        FeatureKind::CosineTfIdf if task.vectorizer.has_corpus_model(def.attr) => {
            set(TokenSpace::TfIdf, SetMeasure::Cosine)
        }
        FeatureKind::ExactMatch => Some(ProbeSpec::Exact { attr: def.attr }),
        _ => None,
    }
}

/// Output-sensitive candidate generation: probe inverted indexes for a
/// superset of one rule's survivors, then verify all rules on the
/// candidates. Produces byte-identical output to [`CartesianScan`].
pub struct IndexedJoin<'t> {
    task: &'t MatchTask,
    rules: Vec<Rule>,
    /// Index into `rules` of the generating rule.
    chosen: usize,
    /// One probe per predicate of the chosen rule.
    probes: Vec<ProbeSpec>,
}

impl<'t> IndexedJoin<'t> {
    /// Plan an indexed join for `rules`, or `None` when no rule has all
    /// predicates indexable. Among indexable rules the planner prefers
    /// the most selective generator: highest minimum threshold, then
    /// fewest predicates (fewer unions), then first in rule order.
    pub fn plan(task: &'t MatchTask, rules: &[Rule]) -> Option<IndexedJoin<'t>> {
        let mut best: Option<(f64, usize, usize, Vec<ProbeSpec>)> = None;
        for (ri, rule) in rules.iter().enumerate() {
            if rule.predicates.is_empty() {
                continue;
            }
            let specs: Option<Vec<ProbeSpec>> =
                rule.predicates.iter().map(|p| probe_spec(task, p)).collect();
            let Some(specs) = specs else { continue };
            let min_t = rule
                .predicates
                .iter()
                .map(|p| p.threshold)
                .fold(f64::INFINITY, f64::min);
            let better = match &best {
                None => true,
                Some((bt, bn, _, _)) => match min_t.total_cmp(bt) {
                    std::cmp::Ordering::Greater => true,
                    std::cmp::Ordering::Equal => rule.predicates.len() < *bn,
                    std::cmp::Ordering::Less => false,
                },
            };
            if better {
                best = Some((min_t, rule.predicates.len(), ri, specs));
            }
        }
        let (_, _, chosen, probes) = best?;
        Some(IndexedJoin { task, rules: rules.to_vec(), chosen, probes })
    }

    /// The index (into the planned rule slice) of the generating rule.
    pub fn generator_rule(&self) -> usize {
        self.chosen
    }
}

/// The built index for one probe spec.
enum BuiltIndex {
    Set(InvertedIndex),
    Exact(ExactIndex),
}

impl CandidateSource for IndexedJoin<'_> {
    fn describe(&self) -> String {
        let probes: Vec<String> = self.probes.iter().map(|p| p.describe()).collect();
        format!("indexed_join[{}]", probes.join(" | "))
    }

    fn generate(&self, threads: Threads) -> Vec<PairKey> {
        let task = self.task;
        let analysis = task.ensure_analysis(threads);
        let n_b = task.table_b.len();

        // Build one index per distinct (attr, space/exact) over table A.
        // Indexes are threshold-independent, so predicates sharing a
        // token space share an index.
        let mut keys: Vec<(usize, Option<TokenSpace>)> = Vec::new();
        let mut indexes: Vec<BuiltIndex> = Vec::new();
        let mut probe_index: Vec<usize> = Vec::with_capacity(self.probes.len());
        for spec in &self.probes {
            let key = match spec {
                ProbeSpec::Set { attr, space, .. } => (*attr, Some(*space)),
                ProbeSpec::Exact { attr } => (*attr, None),
            };
            let slot = keys.iter().position(|&k| k == key).unwrap_or_else(|| {
                keys.push(key);
                indexes.push(match key {
                    (attr, Some(space)) => {
                        BuiltIndex::Set(InvertedIndex::build(&analysis.a, attr, space))
                    }
                    (attr, None) => BuiltIndex::Exact(ExactIndex::build(&analysis.a, attr)),
                });
                keys.len() - 1
            });
            probe_index.push(slot);
        }

        // Probe per B record, in parallel chunks. Chunk size is fixed
        // (not thread-dependent) and the result is sorted + deduped, so
        // the candidate list is identical at any thread count.
        const CHUNK: usize = 256;
        let n_chunks = n_b.div_ceil(CHUNK);
        let per_chunk: Vec<Vec<PairKey>> = exec::indexed_par_map(threads, n_chunks, |ci| {
            let lo = ci * CHUNK;
            let hi = (lo + CHUNK).min(n_b);
            let mut scratch = ProbeScratch::default();
            let mut hits: Vec<u32> = Vec::new();
            let mut out: Vec<PairKey> = Vec::new();
            for b in lo..hi {
                hits.clear();
                for (spec, &slot) in self.probes.iter().zip(&probe_index) {
                    match (spec, &indexes[slot]) {
                        (
                            ProbeSpec::Set { attr, measure, threshold, .. },
                            BuiltIndex::Set(idx),
                        ) => {
                            idx.probe(
                                analysis.attr_b(b as u32, *attr),
                                *measure,
                                *threshold,
                                &mut scratch,
                                &mut hits,
                            );
                        }
                        (ProbeSpec::Exact { attr }, BuiltIndex::Exact(idx)) => {
                            if let Some(an) = analysis.attr_b(b as u32, *attr) {
                                idx.matches(&analysis.a, an.collapsed(), &mut hits);
                            }
                        }
                        // Planner pairs specs with matching indexes.
                        _ => {}
                    }
                }
                out.extend(hits.iter().map(|&a| PairKey::new(a, b as u32)));
            }
            out
        });
        let mut candidates: Vec<PairKey> = per_chunk.into_iter().flatten().collect();
        candidates.sort_unstable();
        candidates.dedup();

        // Verify: evaluate the *full* rule set on each candidate with
        // the same memoized kernels as the scan. Order-preserving chunked
        // filter, so survivors come out in row-major order.
        let n_features = task.n_features();
        let rules = &self.rules;
        let n_cand = candidates.len();
        let n_vchunks = n_cand.div_ceil(CHUNK);
        let survivors: Vec<Vec<PairKey>> = exec::indexed_par_map(threads, n_vchunks, |ci| {
            let lo = ci * CHUNK;
            let hi = (lo + CHUNK).min(n_cand);
            let mut memo: Vec<f64> = vec![f64::NAN; n_features];
            let mut computed: Vec<bool> = vec![false; n_features];
            let mut out = Vec::new();
            let mut n_computed = 0u64;
            for &pair in &candidates[lo..hi] {
                let rec_a = task.table_a.record(pair.a);
                let rec_b = task.table_b.record(pair.b);
                computed.iter_mut().for_each(|c| *c = false);
                let mut blocked = false;
                'rules: for rule in rules {
                    for p in &rule.predicates {
                        if !computed[p.feature] {
                            memo[p.feature] =
                                task.vectorizer.feature_pre(p.feature, rec_a, rec_b, analysis);
                            computed[p.feature] = true;
                            n_computed += 1;
                        }
                    }
                    if rule.matches(&memo) {
                        blocked = true;
                        break 'rules;
                    }
                }
                if !blocked {
                    out.push(pair);
                }
            }
            task.analysis.note_single_features(n_computed, 0);
            out
        });
        survivors.into_iter().flatten().collect()
    }
}

/// The planner's choice, as a concrete enum (pattern-matchable in tests
/// and reports) that itself implements [`CandidateSource`].
pub enum PlannedSource<'t> {
    /// Fallback: full `A × B` scan.
    Cartesian(CartesianScan<'t>),
    /// Output-sensitive inverted-index join.
    Indexed(IndexedJoin<'t>),
}

impl CandidateSource for PlannedSource<'_> {
    fn describe(&self) -> String {
        match self {
            PlannedSource::Cartesian(s) => s.describe(),
            PlannedSource::Indexed(s) => s.describe(),
        }
    }

    fn generate(&self, threads: Threads) -> Vec<PairKey> {
        match self {
            PlannedSource::Cartesian(s) => s.generate(threads),
            PlannedSource::Indexed(s) => s.generate(threads),
        }
    }
}

/// Inspect `rules` and pick the candidate-generation strategy: an
/// [`IndexedJoin`] when some rule's predicates are all indexable
/// similarity-join conditions, else a [`CartesianScan`]. With no rules
/// at all the scan streams every pair, which is already optimal.
pub fn plan_blocking_source<'t>(task: &'t MatchTask, rules: &[Rule]) -> PlannedSource<'t> {
    if rules.is_empty() {
        return PlannedSource::Cartesian(CartesianScan::new(task, Vec::new()));
    }
    match IndexedJoin::plan(task, rules) {
        Some(join) => PlannedSource::Indexed(join),
        None => PlannedSource::Cartesian(CartesianScan::new(task, rules.to_vec())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::task_from_parts;
    use forest::Predicate;
    use similarity::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    fn toy_task() -> MatchTask {
        let schema = Arc::new(Schema::new(vec![
            Attribute::text("name"),
            Attribute::number("year"),
        ]));
        let names_a = [
            "kingston hyperx 4gb memory kit",
            "kingston valueram 4gb",
            "corsair vengeance 8gb memory",
            "",
            "samsung evo ssd 500gb",
            "western digital caviar blue",
            "kingston hyperx",
            "seagate barracuda 2tb",
        ];
        let names_b = [
            "kingston hyperx 4gb kit",
            "corsair 8gb memory",
            "",
            "totally unrelated tokens",
            "samsung evo ssd",
            "seagate barracuda",
        ];
        let rows = |names: &[&str]| -> Vec<Vec<Value>> {
            names
                .iter()
                .enumerate()
                .map(|(i, &n)| vec![Value::Text(n.into()), Value::Number(2000.0 + i as f64)])
                .collect()
        };
        let a = Table::new("a", schema.clone(), rows(&names_a));
        let b = Table::new("b", schema, rows(&names_b));
        task_from_parts(a, b, "same?", [(0, 0), (4, 4)], [(0, 3), (2, 5)])
    }

    fn feature(task: &MatchTask, name: &str) -> usize {
        task.feature_names()
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("missing feature {name}"))
    }

    fn le(feature: usize, threshold: f64) -> Predicate {
        Predicate { feature, op: Op::Le, threshold, nan_satisfies: true }
    }

    fn rule(predicates: Vec<Predicate>) -> Rule {
        Rule { predicates, label: false, tree: 0, n_pos: 0, n_neg: 0 }
    }

    fn assert_equivalent(task: &MatchTask, rules: &[Rule]) {
        let scan = CartesianScan::new(task, rules.to_vec());
        let join = IndexedJoin::plan(task, rules).expect("rules should be indexable");
        let want = scan.generate(Threads::new(1));
        for threads in [1, 2, 8] {
            let got = join.generate(Threads::new(threads));
            assert_eq!(got, want, "indexed/scan divergence at {threads} threads");
        }
    }

    #[test]
    fn indexed_join_matches_scan_on_jaccard_rule() {
        let task = toy_task();
        let f = feature(&task, "name_jac_w");
        for t in [0.0, 0.2, 0.5, 0.8] {
            assert_equivalent(&task, &[rule(vec![le(f, t)])]);
        }
    }

    #[test]
    fn indexed_join_matches_scan_on_multi_predicate_and_multi_rule() {
        let task = toy_task();
        let jac = feature(&task, "name_jac_w");
        let jac3 = feature(&task, "name_jac_3g");
        let cos = feature(&task, "name_cos_tfidf");
        let exact = feature(&task, "name_exact");
        let dice = feature(&task, "name_dice_w");
        let ovl = feature(&task, "name_ovl_w");
        let sdx = feature(&task, "name_sdx");
        // Conjunction within one rule + a second rule; survivors are the
        // union of per-predicate joins filtered by both rules.
        let rules = vec![
            rule(vec![le(jac, 0.3), le(cos, 0.4)]),
            rule(vec![le(exact, 0.5), le(jac3, 0.6)]),
        ];
        assert_equivalent(&task, &rules);
        let rules = vec![rule(vec![le(dice, 0.25), le(ovl, 0.5), le(sdx, 0.4)])];
        assert_equivalent(&task, &rules);
    }

    #[test]
    fn planner_prefers_most_selective_indexable_rule() {
        let task = toy_task();
        let jac = feature(&task, "name_jac_w");
        let cos = feature(&task, "name_cos_tfidf");
        let rules = vec![
            rule(vec![le(jac, 0.2)]),
            rule(vec![le(cos, 0.7)]),
        ];
        let join = IndexedJoin::plan(&task, &rules).expect("indexable");
        assert_eq!(join.generator_rule(), 1, "higher threshold is more selective");
    }

    #[test]
    fn planner_falls_back_on_unindexable_rules() {
        let task = toy_task();
        let jac = feature(&task, "name_jac_w");
        let lev = feature(&task, "name_lev");
        let num = feature(&task, "year_num_rel");
        // Char-level kind.
        assert!(IndexedJoin::plan(&task, &[rule(vec![le(lev, 0.5)])]).is_none());
        // Numeric kind.
        assert!(IndexedJoin::plan(&task, &[rule(vec![le(num, 0.5)])]).is_none());
        // Negated threshold direction (Gt).
        let gt = Predicate { feature: jac, op: Op::Gt, threshold: 0.5, nan_satisfies: true };
        assert!(IndexedJoin::plan(&task, &[rule(vec![gt])]).is_none());
        // NaN does not satisfy: the survivor set includes NaN pairs the
        // index cannot enumerate.
        let no_nan = Predicate { feature: jac, op: Op::Le, threshold: 0.5, nan_satisfies: false };
        assert!(IndexedJoin::plan(&task, &[rule(vec![no_nan])]).is_none());
        // Threshold at/above 1.0 (predicate `f <= 1` never fails).
        assert!(IndexedJoin::plan(&task, &[rule(vec![le(jac, 1.0)])]).is_none());
        // One indexable rule among unindexable ones is enough.
        let rules = vec![rule(vec![le(lev, 0.5)]), rule(vec![le(jac, 0.4)])];
        let join = IndexedJoin::plan(&task, &rules).expect("second rule is indexable");
        assert_eq!(join.generator_rule(), 1);
        // ... and the mixed rule set still produces scan-identical
        // survivors (the unindexable rule participates in verification).
        assert_equivalent(&task, &rules);
    }

    #[test]
    fn planner_routes_empty_and_unindexable_to_cartesian() {
        let task = toy_task();
        let lev = feature(&task, "name_lev");
        assert!(matches!(
            plan_blocking_source(&task, &[]),
            PlannedSource::Cartesian(_)
        ));
        let rules = [rule(vec![le(lev, 0.5)])];
        let planned = plan_blocking_source(&task, &rules);
        assert!(matches!(planned, PlannedSource::Cartesian(_)));
        assert_eq!(planned.describe(), "cartesian_scan");
        let jac = feature(&task, "name_jac_w");
        let planned = plan_blocking_source(&task, &[rule(vec![le(jac, 0.5)])]);
        assert!(matches!(planned, PlannedSource::Indexed(_)));
        assert!(planned.describe().starts_with("indexed_join["));
    }

    #[test]
    fn scan_with_no_rules_streams_all_pairs_in_order() {
        let task = toy_task();
        let scan = CartesianScan::new(&task, Vec::new());
        let pairs = scan.generate(Threads::new(4));
        assert_eq!(pairs.len(), 8 * 6);
        assert_eq!(pairs[0], PairKey::new(0, 0));
        assert_eq!(pairs[47], PairKey::new(7, 5));
        assert!(pairs.windows(2).all(|w| w[0] < w[1]), "row-major order");
    }
}
