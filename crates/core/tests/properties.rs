//! Property-based tests for Corleone's core algorithms: smoothing and
//! stopping invariants, metric identities, and candidate-set operations.

use corleone::metrics::{evaluate, Prf};
use corleone::stopping::{check, peak_index, smooth, StopDecision};
use corleone::StoppingConfig;
use crowd::PairKey;
use proptest::prelude::*;
use std::collections::HashSet;

fn conf_series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.3f64..=1.0, 1..80)
}

proptest! {
    #[test]
    fn smooth_preserves_length_and_bounds(v in conf_series(), w in 1usize..9) {
        let s = smooth(&v, w);
        prop_assert_eq!(s.len(), v.len());
        let lo = v.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &x in &s {
            prop_assert!(x >= lo - 1e-12 && x <= hi + 1e-12);
        }
    }

    #[test]
    fn smooth_constant_series_is_identity(c in 0.0f64..1.0, n in 1usize..50, w in 1usize..9) {
        let v = vec![c; n];
        let s = smooth(&v, w);
        for &x in &s {
            prop_assert!((x - c).abs() < 1e-12);
        }
    }

    #[test]
    fn smoothing_reduces_total_variation(v in conf_series()) {
        let tv = |xs: &[f64]| xs.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>();
        let s = smooth(&v, 5);
        prop_assert!(tv(&s) <= tv(&v) + 1e-9);
    }

    #[test]
    fn peak_index_in_range(v in conf_series()) {
        let cfg = StoppingConfig::default();
        let p = peak_index(&v, &cfg);
        prop_assert!(p < v.len());
    }

    #[test]
    fn check_is_deterministic_and_total(v in conf_series()) {
        let cfg = StoppingConfig::default();
        let d1 = check(&v, &cfg);
        let d2 = check(&v, &cfg);
        prop_assert_eq!(d1, d2);
        // Any decision is one of the four variants (no panic on any input).
        let _ = matches!(
            d1,
            StopDecision::Continue
                | StopDecision::Converged
                | StopDecision::NearAbsolute
                | StopDecision::Degrading
        );
    }

    #[test]
    fn min_iterations_dominates(v in conf_series()) {
        let cfg = StoppingConfig { min_iterations: 1000, ..Default::default() };
        prop_assert_eq!(check(&v, &cfg), StopDecision::Continue);
    }

    #[test]
    fn prf_identities(tp in 0usize..100, fp in 0usize..100, fnn in 0usize..100) {
        let m = Prf::from_counts(tp, tp + fp, tp + fnn);
        prop_assert!((0.0..=1.0).contains(&m.precision));
        prop_assert!((0.0..=1.0).contains(&m.recall));
        prop_assert!((0.0..=1.0).contains(&m.f1));
        // F1 lies between min and max of P and R (harmonic mean property).
        if m.precision > 0.0 && m.recall > 0.0 {
            prop_assert!(m.f1 <= m.precision.max(m.recall) + 1e-12);
            prop_assert!(m.f1 >= m.precision.min(m.recall) - 1e-12);
        }
    }

    #[test]
    fn evaluate_agrees_with_counts(pred in prop::collection::hash_set((0u32..30, 0u32..30), 0..40),
                                   gold in prop::collection::hash_set((0u32..30, 0u32..30), 0..40)) {
        let pred: HashSet<PairKey> = pred.into_iter().map(|(a, b)| PairKey::new(a, b)).collect();
        let gold: HashSet<PairKey> = gold.into_iter().map(|(a, b)| PairKey::new(a, b)).collect();
        let m = evaluate(&pred, &gold);
        let tp = pred.intersection(&gold).count();
        let expect = Prf::from_counts(tp, pred.len(), gold.len());
        prop_assert_eq!(m, expect);
        // Symmetric corner: disjoint sets give zero F1.
        if tp == 0 {
            prop_assert_eq!(m.f1, 0.0);
        }
    }

    #[test]
    fn perfect_prediction_is_perfect(gold in prop::collection::hash_set((0u32..30, 0u32..30), 1..40)) {
        let gold: HashSet<PairKey> = gold.into_iter().map(|(a, b)| PairKey::new(a, b)).collect();
        let m = evaluate(&gold.clone(), &gold);
        prop_assert_eq!(m.f1, 1.0);
    }
}

mod candidate_props {
    use corleone::task::task_from_parts;
    use corleone::CandidateSet;
    use proptest::prelude::*;
    use similarity::{Attribute, Schema, Table, Value};
    use std::sync::Arc;

    fn toy_candidates() -> CandidateSet {
        let schema = Arc::new(Schema::new(vec![Attribute::text("n")]));
        let rows = |n: usize| -> Vec<Vec<Value>> {
            (0..n).map(|i| vec![Value::Text(format!("v {i}"))]).collect()
        };
        let a = Table::new("a", schema.clone(), rows(6));
        let b = Table::new("b", schema, rows(7));
        let task = task_from_parts(a, b, "x", [(0, 0), (1, 1)], [(0, 6), (2, 4)]);
        CandidateSet::full_cartesian(&task)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn subset_of_subset_composes(idx1 in prop::collection::vec(0usize..42, 1..20)) {
            let c = toy_candidates();
            let s1 = c.subset(&idx1);
            // Taking every other element of the subset must equal direct
            // selection of the composed indices.
            let idx2: Vec<usize> = (0..s1.len()).step_by(2).collect();
            let s2 = s1.subset(&idx2);
            for (j, &i2) in idx2.iter().enumerate() {
                prop_assert_eq!(s2.pair(j), c.pair(idx1[i2]));
                prop_assert_eq!(s2.row(j), c.row(idx1[i2]));
            }
        }

        #[test]
        fn index_of_inverts_pair(i in 0usize..42) {
            let c = toy_candidates();
            prop_assert_eq!(c.index_of(c.pair(i)), Some(i));
        }
    }
}
