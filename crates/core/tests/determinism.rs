//! The tentpole guarantee of the execution layer: a run's result is a
//! function of the task and the seed alone — never of the worker-thread
//! count, and never of whether the feature cache is enabled.

use corleone::prelude::*;
use corleone::task::task_from_parts;
use proptest::prelude::*;
use similarity::{Attribute, Schema, Table, Value};
use std::sync::Arc;

fn toy_task() -> (MatchTask, GoldOracle) {
    let schema = Arc::new(Schema::new(vec![
        Attribute::text("name"),
        Attribute::text("city"),
    ]));
    let rows = |prefix: &str, n: usize| -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Text(format!("{prefix} shop number {i}")),
                    Value::Text(if i % 3 == 0 { "madison" } else { "chicago" }.into()),
                ]
            })
            .collect()
    };
    let a = Table::new("a", schema.clone(), rows("corner", 24));
    let b = Table::new("b", schema, rows("Corner", 24));
    let task = task_from_parts(a, b, "same shop?", [(0, 0), (1, 1)], [(0, 23), (2, 19)]);
    let gold = GoldOracle::from_pairs((0..24).map(|i| (i, i)));
    (task, gold)
}

fn run_json(task: &MatchTask, gold: &GoldOracle, seed: u64, threads: usize, cache: usize) -> String {
    let mut platform = CrowdPlatform::new(WorkerPool::perfect(3), CrowdConfig::default());
    let engine = Engine::new(CorleoneConfig::small());
    engine
        .session(task)
        .platform(&mut platform)
        .oracle(gold)
        .gold(gold.matches())
        .seed(seed)
        .threads(threads)
        .cache_capacity(cache)
        .run()
        .deterministic_json()
}

#[test]
fn report_is_byte_identical_at_1_2_and_8_threads() {
    let (task, gold) = toy_task();
    let t1 = run_json(&task, &gold, 7, 1, 1 << 14);
    let t2 = run_json(&task, &gold, 7, 2, 1 << 14);
    let t8 = run_json(&task, &gold, 7, 8, 1 << 14);
    assert_eq!(t1, t2, "2 threads diverged from serial");
    assert_eq!(t1, t8, "8 threads diverged from serial");
}

#[test]
fn cache_configuration_never_changes_results() {
    let (task, gold) = toy_task();
    let uncached = run_json(&task, &gold, 11, 4, 0);
    let cached = run_json(&task, &gold, 11, 4, 1 << 14);
    let tiny = run_json(&task, &gold, 11, 4, 8); // constant eviction pressure
    assert_eq!(uncached, cached);
    assert_eq!(uncached, tiny);
}

/// With a fully zeroed `FaultConfig`, the fault RNG is never drawn: the
/// run's deterministic JSON must be byte-identical to a platform built
/// without the fault layer at all (pay-for-what-you-use).
#[test]
fn zeroed_fault_config_is_byte_identical_to_plain_platform() {
    use crowd::{FaultConfig, RetryPolicy};
    let (task, gold) = toy_task();
    let engine = Engine::new(CorleoneConfig::small());
    let run = |mut platform: CrowdPlatform| {
        engine
            .session(&task)
            .platform(&mut platform)
            .oracle(&gold)
            .gold(gold.matches())
            .seed(13)
            .threads(4)
            .run()
            .deterministic_json()
    };
    let plain = run(CrowdPlatform::new(WorkerPool::uniform(3, 0.1), CrowdConfig::default()));
    let zeroed = run(CrowdPlatform::with_faults(
        WorkerPool::uniform(3, 0.1),
        CrowdConfig::default(),
        FaultConfig::default(),
        RetryPolicy::default(),
    ));
    assert_eq!(plain, zeroed, "disabled fault layer must cost nothing, change nothing");
}

/// With faults *enabled*, the report — including the fault counters,
/// which `deterministic_json` zeroes along with the rest of `perf` — must
/// still be a function of the seeds alone, never of the thread count.
#[test]
fn faulty_run_is_thread_count_invariant() {
    use corleone::engine::RunReport;
    use crowd::{FaultConfig, FaultStats, RetryPolicy};
    let (task, gold) = toy_task();
    let engine = Engine::new(CorleoneConfig::small());
    let faults = FaultConfig {
        hit_expiry_prob: 0.2,
        abandonment_prob: 0.1,
        outage_prob: 0.05,
        seed: 99,
        ..Default::default()
    };
    let run = |threads: usize| -> (String, FaultStats) {
        let mut platform = CrowdPlatform::with_faults(
            WorkerPool::uniform(3, 0.1),
            CrowdConfig::default(),
            faults,
            RetryPolicy::default(),
        );
        let report: RunReport = engine
            .session(&task)
            .platform(&mut platform)
            .oracle(&gold)
            .gold(gold.matches())
            .seed(17)
            .threads(threads)
            .run();
        (report.deterministic_json(), report.perf.faults)
    };
    let (j1, f1) = run(1);
    let (j2, f2) = run(2);
    let (j8, f8) = run(8);
    assert_eq!(j1, j2, "2 threads diverged from serial under faults");
    assert_eq!(j1, j8, "8 threads diverged from serial under faults");
    assert_eq!(f1, f2, "fault counters diverged at 2 threads");
    assert_eq!(f1, f8, "fault counters diverged at 8 threads");
    assert!(f1.any(), "the fault config must actually inject faults");
}

proptest! {
    // Full engine runs are not cheap; a handful of random seeds is plenty
    // to catch a scheduling-dependent code path.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn any_seed_is_thread_count_invariant(seed in 0u64..1_000_000) {
        let (task, gold) = toy_task();
        let serial = run_json(&task, &gold, seed, 1, 1 << 14);
        let parallel = run_json(&task, &gold, seed, 8, 1 << 14);
        prop_assert_eq!(serial, parallel);
    }
}
