//! Budget-plan enforcement (§10 budget-allocation extension).
//!
//! The engine turns a `BudgetSplit` into *cumulative* ledger caps
//! (`BudgetPlan`), so money one phase does not spend must roll forward to
//! the next phase, and no phase may spend past its cumulative cap — only
//! overshoot by the one batch that was already in flight when the cap was
//! hit. Before these tests, the plan was only exercised end-to-end via
//! total spend.

use corleone::budget::BudgetSplit;
use corleone::prelude::*;
use corleone::task::task_from_parts;
use similarity::{Attribute, Schema, Table, Value};
use std::sync::Arc;

fn toy_task() -> (MatchTask, GoldOracle) {
    let schema = Arc::new(Schema::new(vec![
        Attribute::text("name"),
        Attribute::text("city"),
    ]));
    let rows = |prefix: &str, n: usize| -> Vec<Vec<Value>> {
        (0..n)
            .map(|i| {
                vec![
                    Value::Text(format!("{prefix} shop number {i}")),
                    Value::Text(if i % 3 == 0 { "madison" } else { "chicago" }.into()),
                ]
            })
            .collect()
    };
    let a = Table::new("a", schema.clone(), rows("corner", 24));
    let b = Table::new("b", schema, rows("Corner", 24));
    let task = task_from_parts(a, b, "same shop?", [(0, 0), (1, 1)], [(0, 23), (2, 19)]);
    let gold = GoldOracle::from_pairs((0..24).map(|i| (i, i)));
    (task, gold)
}

/// One labeling batch can already be in flight when a cumulative cap is
/// hit: 10 questions × up to 7 answers (strong majority) × 1¢.
const BATCH_SLACK_CENTS: f64 = 100.0;

#[test]
fn underspent_blocking_rolls_budget_forward_to_matching() {
    let (task, gold) = toy_task();
    // Give blocking a huge share it cannot spend (the toy task's
    // cartesian fits in memory, so the blocker never triggers) and
    // matching a deliberately tiny one.
    let split = BudgetSplit { blocking: 0.6, matching: 0.1, estimation: 0.2, locating: 0.1 };
    let budget = 200.0;
    let mut cfg = CorleoneConfig::small();
    cfg.engine.budget_cents = Some(budget);
    cfg.engine.budget_split = Some(split);
    let mut platform = CrowdPlatform::new(WorkerPool::uniform(5, 0.1), CrowdConfig::default());
    let report = Engine::new(cfg)
        .with_seed(21)
        .session(&task)
        .platform(&mut platform)
        .oracle(&gold)
        .gold(gold.matches())
        .run();

    assert!(!report.blocker.triggered, "toy task must not trigger blocking");
    assert_eq!(report.blocker.cost_cents, 0.0);
    let matcher_spend: f64 = report.iterations.iter().map(|it| it.matcher_cost_cents).sum();
    // The matching share alone is 20¢; the cumulative cap after matching
    // is (0.6 + 0.1) × 200 = 140¢. Spending meaningfully past the bare
    // share proves blocking's unspent budget rolled forward.
    assert!(
        matcher_spend > split.matching * budget,
        "matcher spent only {matcher_spend}¢ — blocking's unspent share did not roll forward"
    );
    let cumulative_cap = (split.blocking + split.matching) * budget;
    assert!(
        matcher_spend <= cumulative_cap + BATCH_SLACK_CENTS,
        "matcher spent {matcher_spend}¢, past its cumulative cap of {cumulative_cap}¢"
    );
}

#[test]
fn estimation_respects_cumulative_cap_under_noisy_crowd() {
    let (task, gold) = toy_task();
    let split = BudgetSplit::default(); // 0.15 / 0.50 / 0.25 / 0.10
    let budget = 300.0;
    let mut cfg = CorleoneConfig::small();
    cfg.engine.budget_cents = Some(budget);
    cfg.engine.budget_split = Some(split);
    let mut platform = CrowdPlatform::new(WorkerPool::uniform(7, 0.2), CrowdConfig::default());
    let report = Engine::new(cfg)
        .with_seed(22)
        .session(&task)
        .platform(&mut platform)
        .oracle(&gold)
        .gold(gold.matches())
        .run();

    // Everything spent through the estimation phase — blocking, every
    // matcher, every estimator round — must sit under the cumulative
    // estimation cap (modulo one in-flight batch). Locator spend is the
    // only thing allowed above it.
    let spend_through_estimation: f64 = report.blocker.cost_cents
        + report
            .iterations
            .iter()
            .map(|it| it.matcher_cost_cents + it.estimate.cost_cents)
            .sum::<f64>();
    let est_cap = (split.blocking + split.matching + split.estimation) * budget;
    assert!(
        spend_through_estimation <= est_cap + BATCH_SLACK_CENTS,
        "spent {spend_through_estimation}¢ through estimation, cap was {est_cap}¢"
    );
    assert!(
        report.total_cost_cents <= budget + BATCH_SLACK_CENTS,
        "total {}¢ blew the {budget}¢ budget",
        report.total_cost_cents
    );
    // The run must actually have exercised the noisy-crowd path.
    assert!(report.total_pairs_labeled > 0);
    assert!(!report.iterations.is_empty());
}

#[test]
fn locating_stays_within_total_budget_under_noisy_crowd() {
    let (task, gold) = toy_task();
    let split = BudgetSplit { blocking: 0.1, matching: 0.4, estimation: 0.3, locating: 0.2 };
    let budget = 250.0;
    let mut cfg = CorleoneConfig::small();
    cfg.engine.budget_cents = Some(budget);
    cfg.engine.budget_split = Some(split);
    let mut platform = CrowdPlatform::new(WorkerPool::uniform(7, 0.3), CrowdConfig::default());
    let report = Engine::new(cfg)
        .with_seed(23)
        .session(&task)
        .platform(&mut platform)
        .oracle(&gold)
        .gold(gold.matches())
        .run();
    assert!(
        report.total_cost_cents <= budget + BATCH_SLACK_CENTS,
        "total {}¢ blew the {budget}¢ budget",
        report.total_cost_cents
    );
}
