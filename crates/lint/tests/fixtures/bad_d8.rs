// D8 fixture: order-dependent float accumulation. Three seeded shapes —
// captured float state mutated inside an exec::par_map-family closure,
// float reductions chained onto hash-ordered iteration, and a float
// compound assignment inside a `for` over a hash map — plus decoys that
// must stay silent: sequential folds, sorted-then-reduce, closure-local
// accumulators, and integer accumulation across the parallel boundary.
use std::collections::HashMap;

pub struct Acc {
    pub total: f64,
}

impl Acc {
    pub fn par_capture(&mut self, items: &[f64], threads: usize) {
        let scale: f64 = 2.0;
        let _ = exec::par_map(threads, items, |x| {
            self.total += x * scale;
            x + 1.0
        });
    }
}

pub fn par_captured_let(items: &[f64], threads: usize) -> f64 {
    let mut sum = 0.0;
    let _ = exec::indexed_par_map(threads, items, |_, x| {
        sum -= x;
        x
    });
    sum
}

pub fn hash_sum(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().sum::<f64>()
}

pub fn hash_fold(weights: &HashMap<u32, f64>) -> f64 {
    weights.values().fold(0.0, |a, b| a + b)
}

pub fn hash_for(weights: &HashMap<u32, f64>) -> f64 {
    let mut total = 0.0;
    for (_, v) in weights {
        total += v;
    }
    total
}

// ---- decoys: none of these may fire D8 ----

pub fn seq_fold(xs: &[f64]) -> f64 {
    // Sequential slice fold: order is the slice order, deterministic.
    xs.iter().fold(0.0, |a, b| a + b)
}

pub fn sorted_reduce(weights: &HashMap<u32, f64>) -> f64 {
    // The sanctioned shape: collect, sort by a total order, then reduce.
    let mut vals: Vec<f64> = weights.values().copied().collect();
    vals.sort_by(f64::total_cmp);
    vals.iter().sum::<f64>()
}

pub fn par_local_accumulator(items: &[f64], threads: usize) -> Vec<f64> {
    exec::par_map(threads, items, |x| {
        // Closure-local state: rebuilt per item, order-free.
        let mut acc = 0.0;
        acc += x;
        acc
    })
}

pub fn par_integer_count(items: &[u32], threads: usize) -> u64 {
    // Integer accumulation is associative; only floats are order-bound.
    let mut count: u64 = 0;
    let _ = exec::par_map(threads, items, |x| {
        count += 1;
        x + 1
    });
    count
}

pub fn par_param_mutation(items: &[f64], threads: usize) -> Vec<f64> {
    exec::par_map_seeded(threads, items, 7, |mut x| {
        // Mutating the per-item parameter is per-item state, order-free.
        x *= 2.0;
        x
    })
}
