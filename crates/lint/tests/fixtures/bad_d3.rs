// D3 fixture: wall-clock and entropy sources outside bench/tests.
use std::time::Instant;

fn timing() -> f64 {
    let t0 = Instant::now(); // line 5
    t0.elapsed().as_secs_f64()
}

fn clock() -> std::time::SystemTime { // line 9
    std::time::SystemTime::now() // line 10
}

fn rngs() {
    let _a = rand::rngs::StdRng::from_entropy(); // line 14
    let _b = rand::thread_rng(); // line 15
}

#[cfg(test)]
mod tests {
    // NOT a finding: tests may time freely.
    #[test]
    fn timed() {
        let _t0 = std::time::Instant::now();
    }
}
