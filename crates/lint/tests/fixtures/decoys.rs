// Decoy fixture: every rule's trigger text appears ONLY inside string
// literals, raw strings, char-adjacent positions, and comments. A
// token-aware lint must report nothing for this file.
//
// partial_cmp(..).unwrap() in a comment — not a finding.
// thread::spawn, Instant::now(), SystemTime, thread_rng, from_entropy.
// for (k, v) in map.iter() { ... } — still a comment.
// unsafe { *p } without SAFETY — still a comment.

/* block comment: v.sort_by(|a, b| a.partial_cmp(b).unwrap()) */

pub fn strings() -> Vec<String> {
    vec![
        "v.sort_by(|a, b| a.partial_cmp(b).unwrap())".to_string(),
        "thread::spawn(|| Instant::now())".to_string(),
        "map.keys().for_each(|k| acc += weights[k])".to_string(),
        "SystemTime thread_rng from_entropy".to_string(),
        "x.unwrap()".to_string(),
        r#"raw: "unsafe { *p }" and .unwrap() and partial_cmp"#.to_string(),
        r##"nested hash raw: sort_by(|a,b| a.partial_cmp(b).unwrap()) "#" "##.to_string(),
        "multi-line literal:\n v.max_by(|a, b| a.partial_cmp(b).unwrap())\n".to_string(),
    ]
}

pub fn escaped_quotes() -> &'static str {
    // The escaped quote must not end the literal early and leak the
    // pattern text into token position.
    "she said \"use partial_cmp in sort_by\" and left .unwrap() here"
}

pub fn char_literals() -> (char, char) {
    ('"', '\'') // quote chars must not open a string
}

/* nested /* block /* comments */ stay */ opaque:
   map.values().sum::<f64>() and total += v inside par_map(|x| ..)
   #[serde(skip)] on RunSnapshot, OnceLock fields, cfg.t_b as usize */

// D8/D9 trigger text in comments: weights.values().fold(0.0, |a, b| a + b);
// struct RunSnapshot { cache: OnceLock<u32> } — none of it is in token position.

pub fn d8_d9_strings() -> Vec<String> {
    vec![
        "weights.values().sum::<f64>()".to_string(),
        "exec::par_map(threads, items, |x| { total += x; x })".to_string(),
        "#[serde(skip)] pub scratch: Vec<u32>, inside RunSnapshot".to_string(),
        r###"three-hash raw: "##" still inside, sum::<f64>() too "###.to_string(),
    ]
}

pub fn raw_identifiers(r#unsafe: u32, r#struct: u32) -> u32 {
    // `r#unsafe` / `r#struct` are single raw-identifier tokens; they must
    // not leak bare `unsafe` / `struct` keywords into rule position.
    r#unsafe + r#struct
}
