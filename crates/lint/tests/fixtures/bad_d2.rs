// D2 fixture: HashMap/HashSet iteration in a deny-listed crate.
use std::collections::{HashMap, HashSet};

struct State {
    scores: HashMap<u32, f64>,
}

fn sum(weights: &HashMap<u32, f64>) -> f64 {
    let mut acc = 0.0;
    for (_, w) in weights { // line 10: for-loop over a map param
        acc += w;
    }
    acc + weights.values().sum::<f64>() // line 13: .values()
}

fn collect_turbofish(pairs: Vec<(u32, f64)>) -> Vec<u32> {
    let m = pairs.into_iter().collect::<HashMap<u32, f64>>();
    m.keys().copied().collect() // line 18: .keys() on a turbofish-collect binding
}

impl State {
    fn drainer(&mut self) {
        self.scores.retain(|_, v| *v > 0.0); // line 23: .retain() on a map field
    }
}

fn set_init() {
    let mut seen = HashSet::new();
    seen.insert(1u32);
    for s in &seen { // line 30: for-loop over `= HashSet::new()` binding
        let _ = s;
    }
}
