// D9 fixture: snapshot-closure completeness. Defines its own
// `RunSnapshot` root so the reachability walk runs inside one file:
// fields dropped from the wire, silently defaulted, process-local, or
// hidden behind a hand-written serde impl must each get one finding at
// their declaration — and nothing inside a manually-serialized type or
// an unreachable type may fire.
use std::sync::atomic::AtomicU64;
use std::sync::OnceLock;

pub struct RunSnapshot {
    pub cursor: u64,
    pub ledger: Ledger,
    #[serde(skip)]
    pub scratch: Vec<u32>,
    pub cache: CacheCell,
}

pub struct Ledger {
    pub charged: u64,
    #[serde(default)]
    pub memo: String,
    pub warm: OnceLock<u32>,
}

pub struct CacheCell {
    // NOT flagged: `CacheCell` is manually serialized, so its internals
    // are the impl's responsibility — the `cache` field above carries
    // the single finding.
    pub hits: AtomicU64,
}

impl serde::Serialize for CacheCell {
    fn to_json_value(&self) -> u32 {
        0
    }
}

// Decoy: skip/default/volatile fields on a type that is NOT reachable
// from a snapshot root must stay silent.
pub struct Unrelated {
    #[serde(skip)]
    pub tmp: Vec<u8>,
    pub started: OnceLock<bool>,
}
