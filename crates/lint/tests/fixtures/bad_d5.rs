// D5 fixture: unsafe without a SAFETY comment.
pub fn undocumented(p: *const u32) -> u32 {
    unsafe { *p } // line 3: no SAFETY comment anywhere near
}

// SAFETY: caller upholds the aliasing contract; pointer is valid for reads.
pub fn documented(p: *const u32) -> u32 {
    unsafe { *p } // NOT a finding: SAFETY comment within three lines above
}
