// Cross-file resolution fixture, part B: hazards whose receiver types
// are declared in part A. Linted together (lint_source_set) the D2/D7
// sites fire; linted alone they cannot resolve and stay silent — the
// selftests assert both directions. The name-collision function shows
// the suppression side: a field that merely *shares its name* with a
// local map resolves to its declared Vec type and stays silent.
use std::collections::HashMap;

pub fn iter_remote(idx: &RemoteIndex) -> Vec<u32> {
    let mut out: Vec<u32> = idx.postings.keys().copied().collect();
    out.sort_unstable();
    out
}

pub fn cast_remote(idx: &RemoteIndex) -> usize {
    idx.doc_count as usize
}

pub fn resume_known(snap: SnapshotPart) -> HashMap<usize, bool> {
    let mut known_labels: HashMap<usize, bool> = HashMap::new();
    // No finding on the next line: `snap.known_labels` resolves to
    // `SnapshotPart`'s sorted `Vec` field across files, not to the local
    // map sharing its name — the engine.rs:428 false-positive shape.
    for (idx, label) in snap.known_labels.into_iter() {
        known_labels.insert(idx, label);
    }
    known_labels
}
