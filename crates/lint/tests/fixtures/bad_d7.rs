// D7 fixture: truncating casts on u64 counters in a serializing crate.

struct Perf {
    ticks: u64,
    pairs: u64,
}

fn narrow(p: &Perf, total: u64) -> usize {
    let a = p.ticks as usize; // line 9: field-typed u64 → usize
    let b = total as u32; // line 10: param-typed u64 → u32
    let widened = p.pairs as u128; // widening: not a finding
    let _ = widened;
    a + b as usize // line 13: b is not u64-typed, no finding here
}

fn fine(p: &Perf) -> u64 {
    // Staying in u64, and checked conversions, are the sanctioned idioms.
    let sum: u64 = p.ticks + p.pairs;
    let _ = usize::try_from(p.ticks);
    sum
}

fn annotated(count: u64) -> usize {
    count as usize // lint:allow(D7): bounded by table row count, < 2^32
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_cast_freely() {
        let n: u64 = 7;
        assert_eq!(n as usize, 7);
    }
}
