// Cross-file resolution fixture, part A: type definitions only. This
// file plays a non-deny crate (datagen); the hazards live in part B
// (a deny crate) and can only fire if the field types declared here
// resolve across the file boundary.
use std::collections::HashMap;

pub struct RemoteIndex {
    pub postings: HashMap<u32, Vec<u32>>,
    pub doc_count: u64,
}

pub struct SnapshotPart {
    pub known_labels: Vec<(usize, bool)>,
}
