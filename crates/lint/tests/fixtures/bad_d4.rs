// D4 fixture: .unwrap() in library code.
pub fn parse(s: &str) -> u32 {
    s.parse::<u32>().unwrap() // line 3
}

pub fn first(v: &[u32]) -> u32 {
    *v.first().unwrap() // line 7
}

// NOT findings: expect() with a message, and unwrap inside test code.
pub fn checked(v: &[u32]) -> u32 {
    *v.first().expect("caller guarantees non-empty")
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Vec<u32> = "1".parse().map(|x| vec![x]).unwrap();
        assert_eq!(v[0], 1);
    }
}
