// D6 fixture: raw thread::spawn outside crates/exec.
use std::thread;

fn fan_out() {
    let h = thread::spawn(|| 42); // line 5
    let _ = h.join();
    let h2 = std::thread::spawn(|| 43); // line 7
    let _ = h2.join();
}
