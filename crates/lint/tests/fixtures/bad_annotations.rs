// Annotation-grammar fixture: malformed allows are findings themselves and
// never suppress the underlying diagnostic.
pub fn missing_reason(v: &[u32]) -> u32 {
    *v.first().unwrap() // lint:allow(D4)
}

pub fn empty_reason(v: &[u32]) -> u32 {
    *v.first().unwrap() // lint:allow(D4):
}

pub fn unknown_rule(v: &[u32]) -> u32 {
    *v.first().unwrap() // lint:allow(D99): no such rule
}

// Doc comments never carry annotations, even when they quote the grammar:
/// // lint:allow(D4): quoted grammar in docs must not parse as a waiver
pub fn documented(v: &[u32]) -> u32 {
    *v.first().unwrap()
}
