// Good fixture: every would-be finding carries a well-formed, reasoned
// allow annotation. The lint must report zero findings and surface every
// waiver (with its reason) in the allow inventory.
use std::collections::HashMap;

pub fn counted(weights: &HashMap<u32, f64>) -> usize {
    weights.keys().count() // lint:allow(D2): order-free count for capacity sizing
}

pub fn sorted_sum(weights: &HashMap<u32, f64>) -> f64 {
    let mut vals: Vec<f64> = weights.values().copied().collect(); // lint:allow(D2): sorted on the next line before summation
    vals.sort_by(f64::total_cmp);
    vals.iter().sum()
}

pub fn stamped() -> f64 {
    let t0 = std::time::Instant::now(); // lint:allow(D3): perf telemetry only; value is zeroed before serialization
    t0.elapsed().as_secs_f64()
}

pub fn head(v: &[u32]) -> u32 {
    *v.first().unwrap() // lint:allow(D4): slice is statically non-empty at every call site
}
