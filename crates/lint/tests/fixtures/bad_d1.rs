// D1 fixture: partial_cmp in comparator position, one per comparator method.
fn main() {
    let mut v = vec![1.0f64, 2.0];
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); // line 4: sort_by
    v.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite")); // line 5
    let _ = v.iter().max_by(|a, b| a.partial_cmp(b).unwrap()); // line 6
    let _ = v.iter().min_by(|a, b| {
        a.partial_cmp(b).unwrap() // line 8: multi-line closure body
    });
    // NOT findings: partial_cmp outside comparator position, and key-based sorts.
    let _ = 1.0f64.partial_cmp(&2.0);
    v.sort_by_key(|a| a.to_bits());
}
