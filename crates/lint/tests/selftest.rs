//! Fixture-based self-tests for `corleone-lint`, plus the
//! workspace-is-clean integration test that is the whole point of the
//! exercise: the real workspace must carry zero un-annotated findings.

use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    std::fs::read_to_string(dir.join(name))
        .unwrap_or_else(|e| panic!("fixture {name} unreadable: {e}"))
}

/// Lint a fixture as if it were `crates/<krate>/src/<name>`.
fn lint_fixture(name: &str, krate: &str) -> lint::FileOutcome {
    let rel = format!("crates/{krate}/src/{name}");
    lint::lint_file(&rel, krate, &fixture(name))
}

/// The (rule, line) pairs among findings, filtered to one rule.
fn lines_for(outcome: &lint::FileOutcome, rule: &str) -> Vec<u32> {
    let mut v: Vec<u32> = outcome
        .findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect();
    v.sort_unstable();
    v
}

#[test]
fn d1_bad_fixture_exact_lines() {
    let out = lint_fixture("bad_d1.rs", "core");
    assert_eq!(lines_for(&out, "D1"), vec![4, 5, 6, 8]);
}

#[test]
fn d2_bad_fixture_exact_lines() {
    let out = lint_fixture("bad_d2.rs", "core");
    assert_eq!(lines_for(&out, "D2"), vec![10, 13, 18, 23, 30]);
}

#[test]
fn d2_is_scoped_to_deny_crates() {
    // The same source in a non-deny crate (datagen) must yield no D2.
    let out = lint::lint_file("crates/datagen/src/bad_d2.rs", "datagen", &fixture("bad_d2.rs"));
    assert_eq!(lines_for(&out, "D2"), Vec::<u32>::new());
}

#[test]
fn d3_bad_fixture_exact_lines() {
    let out = lint_fixture("bad_d3.rs", "core");
    assert_eq!(lines_for(&out, "D3"), vec![5, 9, 10, 14, 15]);
}

#[test]
fn d3_is_allowed_in_bench() {
    let out = lint::lint_file("crates/bench/src/bad_d3.rs", "bench", &fixture("bad_d3.rs"));
    assert_eq!(lines_for(&out, "D3"), Vec::<u32>::new());
}

#[test]
fn d4_bad_fixture_exact_lines() {
    let out = lint_fixture("bad_d4.rs", "similarity");
    assert_eq!(lines_for(&out, "D4"), vec![3, 7]);
}

#[test]
fn d4_exempts_bins() {
    let out = lint::lint_file("crates/core/src/bin/bad_d4.rs", "core", &fixture("bad_d4.rs"));
    assert_eq!(lines_for(&out, "D4"), Vec::<u32>::new());
}

#[test]
fn d5_bad_fixture_exact_lines() {
    let out = lint_fixture("bad_d5.rs", "forest");
    assert_eq!(lines_for(&out, "D5"), vec![3]);
}

#[test]
fn d6_bad_fixture_exact_lines() {
    let out = lint_fixture("bad_d6.rs", "crowd");
    assert_eq!(lines_for(&out, "D6"), vec![5, 7]);
}

#[test]
fn d6_is_allowed_in_exec() {
    let out = lint::lint_file("crates/exec/src/bad_d6.rs", "exec", &fixture("bad_d6.rs"));
    assert_eq!(lines_for(&out, "D6"), Vec::<u32>::new());
}

#[test]
fn d7_bad_fixture_exact_lines() {
    let out = lint_fixture("bad_d7.rs", "service");
    assert_eq!(lines_for(&out, "D7"), vec![9, 10]);
    // The same-line waiver is inventoried, not counted as a finding.
    assert_eq!(out.allows.len(), 1);
    assert_eq!(out.allows[0].rule, "D7");
}

#[test]
fn d7_is_scoped_to_deny_crates() {
    // The same source in a non-deny crate (datagen) must yield no D7.
    let out = lint::lint_file("crates/datagen/src/bad_d7.rs", "datagen", &fixture("bad_d7.rs"));
    assert_eq!(lines_for(&out, "D7"), Vec::<u32>::new());
}

#[test]
fn d8_bad_fixture_exact_lines() {
    let out = lint_fixture("bad_d8.rs", "core");
    assert_eq!(lines_for(&out, "D8"), vec![17, 26, 33, 37, 43]);
}

#[test]
fn d8_decoys_stay_silent() {
    // The seeded lines are the ONLY D8 findings: sequential folds,
    // sorted-reduce, closure-local accumulators, integer accumulation,
    // and per-item parameter mutation are all listed after line 45.
    let out = lint_fixture("bad_d8.rs", "core");
    assert!(
        lines_for(&out, "D8").iter().all(|&l| l < 46),
        "a D8 decoy fired: {:?}",
        out.findings
    );
}

#[test]
fn d8_is_allowed_in_bench() {
    let out = lint::lint_file("crates/bench/src/bad_d8.rs", "bench", &fixture("bad_d8.rs"));
    assert_eq!(lines_for(&out, "D8"), Vec::<u32>::new());
}

#[test]
fn d9_bad_fixture_exact_lines() {
    // scratch (serde_skip), cache (hand-written serde), memo
    // (serde_default), warm (OnceLock) — and nothing inside the
    // manually-serialized CacheCell or the unreachable Unrelated.
    let out = lint_fixture("bad_d9.rs", "core");
    assert_eq!(lines_for(&out, "D9"), vec![14, 15, 21, 22]);
}

#[test]
fn cross_file_types_resolve_hazards_in_other_crates() {
    // Type declared in a non-deny crate (part A), hazard in a deny crate
    // (part B): the D2/D7 sites fire only because the field types
    // resolve across the file boundary.
    let files = vec![
        lint::SourceFile {
            rel: "crates/datagen/src/xresolve_types.rs".to_string(),
            crate_name: "datagen".to_string(),
            src: fixture("xresolve_types.rs"),
        },
        lint::SourceFile {
            rel: "crates/core/src/xresolve_hazards.rs".to_string(),
            crate_name: "core".to_string(),
            src: fixture("xresolve_hazards.rs"),
        },
    ];
    let outcomes = lint::lint_source_set(&files);
    assert!(outcomes[0].findings.is_empty(), "{:?}", outcomes[0].findings);
    assert_eq!(lines_for(&outcomes[1], "D2"), vec![10]);
    assert_eq!(lines_for(&outcomes[1], "D7"), vec![16]);
}

#[test]
fn cross_file_resolution_also_suppresses_name_collisions() {
    // Linted TOGETHER, `snap.known_labels` (line 24) resolves to the
    // sorted Vec field of part A and stays silent despite sharing its
    // name with a local HashMap. Linted ALONE, resolution fails, the
    // lexical fallback matches the name, and the old false positive
    // resurfaces — proving the suppression comes from the type graph.
    let together = lint::lint_source_set(&[
        lint::SourceFile {
            rel: "crates/datagen/src/xresolve_types.rs".to_string(),
            crate_name: "datagen".to_string(),
            src: fixture("xresolve_types.rs"),
        },
        lint::SourceFile {
            rel: "crates/core/src/xresolve_hazards.rs".to_string(),
            crate_name: "core".to_string(),
            src: fixture("xresolve_hazards.rs"),
        },
    ]);
    assert!(!lines_for(&together[1], "D2").contains(&24));

    let alone = lint::lint_file(
        "crates/core/src/xresolve_hazards.rs",
        "core",
        &fixture("xresolve_hazards.rs"),
    );
    assert!(lines_for(&alone, "D2").contains(&24), "{:?}", alone.findings);
}

#[test]
fn d9_findings_route_to_the_defining_file() {
    // The snapshot root lives in file A; the hazardous field lives in a
    // type declared in file B. The finding must land in B, where the
    // waiver would have to be written.
    let files = vec![
        lint::SourceFile {
            rel: "crates/core/src/root.rs".to_string(),
            crate_name: "core".to_string(),
            src: "pub struct RunSnapshot { pub inner: Part }\n".to_string(),
        },
        lint::SourceFile {
            rel: "crates/crowd/src/part.rs".to_string(),
            crate_name: "crowd".to_string(),
            src: "use std::sync::OnceLock;\npub struct Part { pub warm: OnceLock<u32> }\n"
                .to_string(),
        },
    ];
    let outcomes = lint::lint_source_set(&files);
    assert!(outcomes[0].findings.is_empty(), "{:?}", outcomes[0].findings);
    assert_eq!(lines_for(&outcomes[1], "D9"), vec![2]);
}

#[test]
fn decoys_yield_nothing() {
    // Rule text inside strings, raw strings, and comments must not fire —
    // in the strictest crate configuration (a D2 deny crate).
    let out = lint_fixture("decoys.rs", "core");
    assert!(
        out.findings.is_empty(),
        "decoy fixture produced findings: {:?}",
        out.findings
    );
}

#[test]
fn good_annotated_is_clean_and_inventoried() {
    let out = lint_fixture("good_annotated.rs", "core");
    assert!(
        out.findings.is_empty(),
        "annotated fixture still has findings: {:?}",
        out.findings
    );
    // Every waiver appears in the inventory with its reason.
    let mut rules: Vec<(&str, u32)> =
        out.allows.iter().map(|a| (a.rule.as_str(), a.line)).collect();
    rules.sort();
    assert_eq!(rules, vec![("D2", 7), ("D2", 11), ("D3", 17), ("D4", 22)]);
    assert!(out.allows.iter().all(|a| !a.reason.is_empty()));
    assert!(out.unused_allows.is_empty());
}

#[test]
fn malformed_annotations_are_findings_and_do_not_suppress() {
    let out = lint_fixture("bad_annotations.rs", "core");
    assert_eq!(lines_for(&out, lint::ANNOTATION_RULE), vec![4, 8, 12]);
    // The underlying D4s still fire — including under the doc-comment decoy.
    assert_eq!(lines_for(&out, "D4"), vec![4, 8, 12, 18]);
    assert!(out.allows.is_empty());
}

#[test]
fn module_level_allow_suppresses_whole_file() {
    let src = "// lint:allow-module(D3): simulated-latency calibration module\n\
               use std::time::Instant;\n\
               fn a() { let _ = Instant::now(); }\n\
               fn b() { let _ = Instant::now(); }\n";
    let out = lint::lint_file("crates/core/src/x.rs", "core", src);
    assert!(out.findings.is_empty(), "{:?}", out.findings);
    assert_eq!(out.allows.len(), 1, "one module waiver covering both sites");
    assert!(out.allows[0].module_level);
}

#[test]
fn unused_allows_are_reported_not_counted() {
    let src = "fn f() {} // lint:allow(D4): nothing to waive here\n";
    let out = lint::lint_file("crates/core/src/x.rs", "core", src);
    assert!(out.findings.is_empty());
    assert!(out.allows.is_empty());
    assert_eq!(out.unused_allows.len(), 1);
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace two levels up")
        .to_path_buf()
}

#[test]
fn workspace_is_clean() {
    let report = lint::lint_workspace(&workspace_root()).expect("workspace scan");
    assert!(
        report.is_clean(),
        "workspace has un-annotated findings:\n{}",
        report.render_human(true)
    );
    // Every waiver in the tree carries a non-empty reason.
    assert!(report.allows.iter().all(|a| !a.reason.is_empty()));
    // The scan actually covered the workspace.
    assert!(report.stats.files_scanned > 50, "scanned {} files", report.stats.files_scanned);
}

#[test]
fn workspace_json_report_is_wellformed_and_deterministic() {
    let root = workspace_root();
    let a = lint::lint_workspace(&root).expect("scan 1").to_json();
    let b = lint::lint_workspace(&root).expect("scan 2").to_json();
    assert_eq!(a, b, "JSON report must be byte-identical across runs");
    assert!(a.contains("\"clean\": true"));
    assert!(a.contains("\"files_scanned\""));
    assert!(a.contains("\"stats\""));
    // Counters present for every rule code.
    for code in ["D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9", "A0"] {
        assert!(a.contains(&format!("\"{code}\"")), "missing counter for {code}");
    }
}

#[test]
fn ratchet_holds_against_the_committed_baseline() {
    // The committed budget must cover the live workspace exactly: clean
    // findings, no unused allows, and no rule over its ceiling. This is
    // the same check `scripts/ci.sh` greps as `lint_ratchet=ok`.
    let root = workspace_root();
    let report = lint::lint_workspace(&root).expect("workspace scan");
    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.json")).expect("lint-baseline.json");
    let baseline = lint::parse_baseline(&baseline_text).expect("baseline parses");
    let violations = lint::ratchet_violations(&report, &baseline);
    assert!(violations.is_empty(), "ratchet violations:\n{}", violations.join("\n"));
}

#[test]
fn ratchet_fails_on_budget_excess_and_unused_allows() {
    let baseline = lint::parse_baseline(r#"{"schema_version": 1, "allow_budget": {"D2": 0}}"#)
        .expect("baseline parses");

    // One used D2 allow: over the zero budget.
    let over = lint::lint_file(
        "crates/core/src/x.rs",
        "core",
        "use std::collections::HashMap;\n\
         fn f(m: &HashMap<u32, u32>) -> usize {\n\
             m.keys().count() // lint:allow(D2): order-free count\n\
         }\n",
    );
    let mut report = lint::Report::default();
    report.allows.extend(over.allows);
    assert!(
        lint::ratchet_violations(&report, &baseline)
            .iter()
            .any(|v| v.contains("budget")),
        "budget excess must be a violation"
    );

    // One unused allow: dead waivers fail the ratchet even under budget.
    let unused = lint::lint_file(
        "crates/core/src/x.rs",
        "core",
        "fn f() {} // lint:allow(D4): nothing to waive\n",
    );
    let mut report = lint::Report::default();
    report.unused_allows.extend(unused.unused_allows);
    assert!(
        lint::ratchet_violations(&report, &baseline)
            .iter()
            .any(|v| v.contains("unused allow")),
        "unused allows must be a violation"
    );
}

#[test]
fn baseline_parser_rejects_garbage() {
    assert!(lint::parse_baseline("{}").is_err());
    assert!(lint::parse_baseline(r#"{"allow_budget": {"D42": 1}}"#).is_err());
    assert!(lint::parse_baseline(r#"{"allow_budget": {"D2": -3}}"#).is_err());
    let ok = lint::parse_baseline(r#"{"schema_version": 1, "allow_budget": {"D2": 13, "D3": 1}}"#)
        .expect("well-formed baseline");
    assert_eq!(ok.allow_budget.get("D2"), Some(&13));
}

#[test]
fn unsafe_free_crates_carry_forbid_unsafe_code() {
    // D5's crate-level half, checked end-to-end on a synthetic workspace:
    // a crate without `#![forbid(unsafe_code)]` and without unsafe blocks
    // must be flagged at its lib.rs.
    let dir = std::env::temp_dir().join(format!("corleone-lint-d5-{}", std::process::id()));
    let src = dir.join("crates/demo/src");
    std::fs::create_dir_all(&src).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\n").expect("write");
    std::fs::write(src.join("lib.rs"), "pub fn f() {}\n").expect("write");
    let report = lint::lint_workspace(&dir).expect("scan");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    assert_eq!(report.findings[0].rule, "D5");
    assert_eq!(report.findings[0].file, "crates/demo/src/lib.rs");

    // Adding the attribute clears it.
    std::fs::write(src.join("lib.rs"), "#![forbid(unsafe_code)]\npub fn f() {}\n")
        .expect("write");
    let report = lint::lint_workspace(&dir).expect("scan");
    assert!(report.is_clean(), "{:?}", report.findings);
    let _ = std::fs::remove_dir_all(&dir);
}
