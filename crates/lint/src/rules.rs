//! The determinism & robustness rules (D1–D9) and the `lint:allow`
//! annotation grammar.
//!
//! Each rule encodes a project invariant that an ordinary Rust idiom has
//! broken (or could break) in the past — see DESIGN.md §4f for the
//! provenance of each rule. Rules operate on the token stream produced by
//! [`crate::lexer`], so they never fire inside string literals, raw
//! strings, char literals, or comments.
//!
//! Since PR 10 the type-sensitive rules (D2, D7, D8) resolve receivers
//! through the workspace symbol graph of [`crate::resolve`]: a dotted
//! chain like `self.scores` or `snap.known_labels` is resolved to the
//! *declared type* of the field, across files. When resolution answers
//! definitively, it overrides the old per-file name table in both
//! directions — a name collision with a map no longer fires (the
//! `engine.rs` sorted-`Vec`-named-like-a-map false positive), and a map
//! field declared in another crate now does. When the resolver cannot
//! answer (`foo().x`, pattern bindings to unknown types), the rules fall
//! back to the lexical name table, so the pass never gets *weaker* than
//! the PR 5 linter. D9 is fully workspace-level: it walks type
//! reachability from the snapshot roots and never looks at expression
//! tokens at all.

use crate::lexer::{Comment, Lexed, Tok, TokKind};
use crate::resolve::{
    deref, is_float_head, is_map_head, receiver_chain, Resolver, Workspace,
};

/// All rule codes, in report order.
pub const RULES: [&str; 9] = ["D1", "D2", "D3", "D4", "D5", "D6", "D7", "D8", "D9"];

/// Crates where D2 (HashMap/HashSet iteration) and D7 (truncating casts
/// on u64 counters) are deny-by-default: these are the crates that
/// serialize state or accumulate floats, where iteration order — or a
/// platform-dependent cast — leaks into bytes.
pub const D2_DENY_CRATES: [&str; 6] =
    ["core", "similarity", "forest", "crowd", "store", "service"];

/// The comparator-position methods D1 inspects for `partial_cmp`.
pub const D1_COMPARATOR_METHODS: [&str; 4] = ["sort_by", "sort_unstable_by", "max_by", "min_by"];

/// Map/set methods whose call on a HashMap/HashSet-typed name means
/// "iterate in hash order".
const D2_ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// One diagnostic, before allow-annotations are applied.
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub rule: &'static str,
    pub line: u32,
    pub message: String,
}

/// A parsed `lint:allow` annotation.
#[derive(Debug, Clone)]
pub struct Annotation {
    pub rule: String,
    pub line: u32,
    pub reason: String,
    pub module_level: bool,
    /// The annotation was syntactically recognized but is missing its
    /// required `: <reason>` clause (or names an unknown rule).
    pub malformed: Option<String>,
}

/// Parse every `lint:allow(..)` / `lint:allow-module(..)` annotation in the
/// file's comments.
///
/// Grammar (one annotation per comment): a *plain* `//` line comment whose
/// text begins with the directive. Doc comments (`///`, `//!`) and block
/// comments never carry annotations, so documentation that *mentions* the
/// grammar cannot accidentally waive a rule.
/// ```text
/// // lint:allow(D2): <non-empty reason>
/// // lint:allow-module(D3): <non-empty reason>
/// ```
pub fn parse_annotations(comments: &[Comment<'_>]) -> Vec<Annotation> {
    let mut out = Vec::new();
    for c in comments {
        let Some(body) = c.text.strip_prefix("//") else { continue };
        if body.starts_with('/') || body.starts_with('!') {
            continue; // doc comment
        }
        let Some(rest) = body.trim_start().strip_prefix("lint:allow") else { continue };
        let (module_level, rest) = match rest.strip_prefix("-module") {
            Some(r) => (true, r),
            None => (false, rest),
        };
        let Some(rest) = rest.trim_start().strip_prefix('(') else {
            out.push(Annotation {
                rule: String::new(),
                line: c.line,
                reason: String::new(),
                module_level,
                malformed: Some("expected `(` after `lint:allow`".to_string()),
            });
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Annotation {
                rule: String::new(),
                line: c.line,
                reason: String::new(),
                module_level,
                malformed: Some("unclosed rule code, expected `)`".to_string()),
            });
            continue;
        };
        let rule = rest[..close].trim().to_string();
        let tail = &rest[close + 1..];
        let mut ann = Annotation {
            rule: rule.clone(),
            line: c.line,
            reason: String::new(),
            module_level,
            malformed: None,
        };
        if !RULES.contains(&rule.as_str()) {
            ann.malformed = Some(format!("unknown rule code `{rule}`"));
            out.push(ann);
            continue;
        }
        match tail.trim_start().strip_prefix(':') {
            Some(reason) => {
                let reason = reason.trim().trim_end_matches("*/").trim();
                if reason.is_empty() {
                    ann.malformed =
                        Some("reason is required: `lint:allow(Dx): <reason>`".to_string());
                } else {
                    ann.reason = reason.to_string();
                }
            }
            None => {
                ann.malformed = Some("reason is required: `lint:allow(Dx): <reason>`".to_string());
            }
        }
        out.push(ann);
    }
    out
}

/// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]` items.
/// Rules D2/D3/D4 do not apply inside them: tests may time, unwrap, and
/// iterate freely — they do not serialize production bytes.
pub fn test_ranges(toks: &[Tok<'_>]) -> Vec<(u32, u32)> {
    let mut ranges: Vec<(u32, u32)> = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_punct("#") {
            i += 1;
            continue;
        }
        // `#[...]` or `#![...]` — collect the attribute's tokens.
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_punct("!") {
            j += 1;
        }
        if j >= toks.len() || !toks[j].is_punct("[") {
            i += 1;
            continue;
        }
        let attr_start_line = toks[i].line;
        let mut depth = 0usize;
        let mut attr_idents: Vec<&str> = Vec::new();
        while j < toks.len() {
            if toks[j].is_punct("[") {
                depth += 1;
            } else if toks[j].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if toks[j].kind == TokKind::Ident {
                attr_idents.push(toks[j].text);
            }
            j += 1;
        }
        let is_test_attr = match attr_idents.first() {
            Some(&"cfg") => attr_idents.contains(&"test"),
            Some(&"test") => attr_idents.len() == 1,
            _ => false,
        };
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then find the item's end: either a
        // `;` (e.g. `#[cfg(test)] use foo;`) or the matching `}` of its
        // first brace block.
        let mut k = j + 1;
        while k + 1 < toks.len() && toks[k].is_punct("#") {
            // Skip a following `#[...]` attribute.
            let mut a = k + 1;
            if a < toks.len() && toks[a].is_punct("!") {
                a += 1;
            }
            if a < toks.len() && toks[a].is_punct("[") {
                let mut d = 0usize;
                while a < toks.len() {
                    if toks[a].is_punct("[") {
                        d += 1;
                    } else if toks[a].is_punct("]") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    a += 1;
                }
                k = a + 1;
            } else {
                break;
            }
        }
        let mut end_line = attr_start_line;
        let mut brace_depth = 0usize;
        let mut entered = false;
        while k < toks.len() {
            if toks[k].is_punct("{") {
                brace_depth += 1;
                entered = true;
            } else if toks[k].is_punct("}") {
                brace_depth = brace_depth.saturating_sub(1);
                if entered && brace_depth == 0 {
                    end_line = toks[k].line;
                    break;
                }
            } else if toks[k].is_punct(";") && !entered {
                end_line = toks[k].line;
                break;
            }
            k += 1;
        }
        if k >= toks.len() {
            end_line = toks.last().map(|t| t.line).unwrap_or(attr_start_line);
        }
        ranges.push((attr_start_line, end_line));
        i = k + 1;
    }
    ranges
}

fn in_ranges(line: u32, ranges: &[(u32, u32)]) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

/// D1: `partial_cmp` in comparator position. A comparator that panics (or
/// silently mis-orders) on NaN took down a whole run in PR 2; `total_cmp`
/// gives a total order for the same price.
pub fn d1(toks: &[Tok<'_>]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let is_cmp_method = toks[i].kind == TokKind::Ident
            && D1_COMPARATOR_METHODS.contains(&toks[i].text)
            && i >= 1
            && toks[i - 1].is_punct(".")
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("(");
        if !is_cmp_method {
            i += 1;
            continue;
        }
        let method = toks[i].text;
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < toks.len() {
            if toks[j].is_punct("(") {
                depth += 1;
            } else if toks[j].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if toks[j].is_ident("partial_cmp") {
                out.push(RawFinding {
                    rule: "D1",
                    line: toks[j].line,
                    message: format!(
                        "`partial_cmp` inside a `{method}` comparator: NaN makes the \
                         comparator panic or mis-order; use `f64::total_cmp`"
                    ),
                });
            }
            j += 1;
        }
        i = j + 1;
    }
    out
}

/// Collect names that are (heuristically) HashMap/HashSet-typed in this
/// file: `name: [&][mut] [path::]HashMap<..>` type ascriptions (lets,
/// params, struct fields), `name = [path::]HashMap::new()`-style inits, and
/// `let name = ...collect::<HashMap<..>>()` turbofish collects. The table
/// is file-scoped and name-based; since PR 10 it is only the *fallback*
/// for receivers the workspace resolver cannot type.
fn d2_map_names<'a>(toks: &[Tok<'a>]) -> Vec<&'a str> {
    let mut names: Vec<&str> = Vec::new();
    let is_map = |t: &str| t == "HashMap" || t == "HashSet";
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name : <type>` (but not `name ::`).
        if i + 2 < toks.len() && toks[i + 1].is_punct(":") && !toks[i + 2].is_punct(":") {
            let mut j = i + 2;
            while j < toks.len()
                && (toks[j].is_punct("&")
                    || toks[j].is_ident("mut")
                    || toks[j].kind == TokKind::Lifetime)
            {
                j += 1;
            }
            if j < toks.len() && toks[j].kind == TokKind::Ident {
                // Walk the path `a::b::C`, keeping the final segment.
                let mut last = j;
                while last + 3 < toks.len()
                    && toks[last + 1].is_punct(":")
                    && toks[last + 2].is_punct(":")
                    && toks[last + 3].kind == TokKind::Ident
                {
                    last += 3;
                }
                if is_map(toks[last].text) {
                    names.push(toks[i].text);
                }
            }
        }
        // `name = HashMap::new()` / `name = std::collections::HashSet::...`.
        if i + 2 < toks.len()
            && toks[i + 1].is_punct("=")
            && !toks[i + 2].is_punct("=")
            && (i == 0 || !matches!(toks[i - 1].text, "=" | "<" | ">" | "!" | "+" | "-" | "*" | "/"))
        {
            let mut j = i + 2;
            let mut seen_map = false;
            // Scan the path idents immediately after `=`.
            while j < toks.len() && toks[j].kind == TokKind::Ident {
                if is_map(toks[j].text) {
                    seen_map = true;
                }
                if j + 2 < toks.len() && toks[j + 1].is_punct(":") && toks[j + 2].is_punct(":") {
                    j += 3;
                } else {
                    break;
                }
            }
            if seen_map {
                names.push(toks[i].text);
            }
        }
        // `let name = ... .collect::<HashMap<..>>()`.
        if toks[i].is_ident("collect")
            && i + 4 < toks.len()
            && toks[i + 1].is_punct(":")
            && toks[i + 2].is_punct(":")
            && toks[i + 3].is_punct("<")
            && is_map(toks[i + 4].text)
        {
            // Walk back (bounded) for the `let [mut] name` this statement binds.
            let lo = i.saturating_sub(48);
            for k in (lo..i).rev() {
                if toks[k].is_ident("let") {
                    let mut m = k + 1;
                    if m < toks.len() && toks[m].is_ident("mut") {
                        m += 1;
                    }
                    if m < toks.len() && toks[m].kind == TokKind::Ident {
                        names.push(toks[m].text);
                    }
                    break;
                }
                if toks[k].is_punct(";") {
                    break;
                }
            }
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// Is the receiver chain ending at `last` hash-ordered? Resolution order:
/// the workspace resolver's verdict is final when it has one (this is what
/// both clears name-collision false positives and catches fields declared
/// in another crate); only an unresolvable receiver falls back to the
/// per-file lexical name table.
fn is_map_receiver(
    toks: &[Tok<'_>],
    last: usize,
    r: &Resolver<'_>,
    lexical: &dyn Fn(&str) -> bool,
) -> Option<String> {
    if let Some(chain) = receiver_chain(toks, last) {
        if let Some(ty) = r.chain_type(&chain) {
            if is_map_head(&ty.head) {
                let name: Vec<&str> = chain.iter().map(|(s, _)| *s).collect();
                return Some(name.join("."));
            }
            return None; // definitively not a map — overrides the name table
        }
    }
    if lexical(toks[last].text) {
        return Some(toks[last].text.to_string());
    }
    None
}

/// Find the `in`-expression receiver of a `for` loop headed at `toks[i]`:
/// the token index of the final ident of a `[&][mut] a.b.c` chain whose
/// next token opens the loop body. Returns `None` for receivers that are
/// calls, ranges, or other non-chain expressions.
fn for_loop_receiver(toks: &[Tok<'_>], i: usize) -> Option<usize> {
    let mut j = i + 1;
    let mut depth = 0usize;
    // Find the `in` of this for-loop at pattern depth 0.
    while j < toks.len() {
        if toks[j].is_punct("(") || toks[j].is_punct("[") {
            depth += 1;
        } else if toks[j].is_punct(")") || toks[j].is_punct("]") {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && toks[j].is_ident("in") {
            break;
        } else if toks[j].is_punct("{") || toks[j].is_punct(";") {
            return None;
        }
        j += 1;
    }
    if j >= toks.len() {
        return None;
    }
    let mut k = j + 1;
    while k < toks.len() && (toks[k].is_punct("&") || toks[k].is_ident("mut")) {
        k += 1;
    }
    // Walk a `a.b.c` dotted chain; keep the final ident.
    let mut last: Option<usize> = None;
    while k < toks.len() && toks[k].kind == TokKind::Ident {
        last = Some(k);
        if k + 2 < toks.len() && toks[k + 1].is_punct(".") && toks[k + 2].kind == TokKind::Ident {
            k += 2;
        } else {
            k += 1;
            break;
        }
    }
    let last = last?;
    // The loop body must open right after the chain — anything else
    // (`.iter()`, `..n`, a struct literal guard) is not a bare receiver.
    if k < toks.len() && toks[k].is_punct("{") {
        Some(last)
    } else {
        None
    }
}

/// D2: iteration over a HashMap/HashSet in a deny-listed crate. Hash
/// iteration order is arbitrary and differs across processes; PR 1's TF/IDF
/// cosine summed floats in that order and produced cross-process divergent
/// bytes. Iterate a sorted collection instead, or annotate with a reason.
pub fn d2(toks: &[Tok<'_>], skip: &[(u32, u32)], r: &Resolver<'_>) -> Vec<RawFinding> {
    let names = d2_map_names(toks);
    let known = |t: &str| names.binary_search(&t).is_ok();
    let mut out = Vec::new();
    for i in 0..toks.len() {
        // `name.iter()` / `self.name.keys()` / ...
        if toks[i].kind == TokKind::Ident
            && D2_ITER_METHODS.contains(&toks[i].text)
            && i >= 2
            && toks[i - 1].is_punct(".")
            && toks[i - 2].kind == TokKind::Ident
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("(")
            && !in_ranges(toks[i].line, skip)
        {
            if let Some(name) = is_map_receiver(toks, i - 2, r, &known) {
                out.push(RawFinding {
                    rule: "D2",
                    line: toks[i].line,
                    message: format!(
                        "iteration over hash-ordered `{}` via `.{}()` in a crate that \
                         serializes or accumulates floats; collect+sort (or use a BTree \
                         collection), or annotate `// lint:allow(D2): <reason>`",
                        name,
                        toks[i].text
                    ),
                });
            }
        }
        // `for pat in [&][mut] [self.]name {`.
        if toks[i].is_ident("for") {
            if let Some(last) = for_loop_receiver(toks, i) {
                if !in_ranges(toks[last].line, skip) {
                    if let Some(name) = is_map_receiver(toks, last, r, &known) {
                        out.push(RawFinding {
                            rule: "D2",
                            line: toks[last].line,
                            message: format!(
                                "`for` loop over hash-ordered `{name}` in a crate that \
                                 serializes or accumulates floats; collect+sort (or use a \
                                 BTree collection), or annotate `// lint:allow(D2): <reason>`"
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// D3: wall-clock / entropy sources outside `bench` and outside test code.
/// Reports and snapshots must be byte-identical across runs; real time and
/// OS entropy are the two ambient sources that break that.
pub fn d3(toks: &[Tok<'_>], skip: &[(u32, u32)]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if in_ranges(toks[i].line, skip) {
            continue;
        }
        let t = &toks[i];
        if t.is_ident("Instant")
            && i + 3 < toks.len()
            && toks[i + 1].is_punct(":")
            && toks[i + 2].is_punct(":")
            && toks[i + 3].is_ident("now")
        {
            out.push(RawFinding {
                rule: "D3",
                line: t.line,
                message: "`Instant::now()` outside bench/test code: wall-clock time must \
                          not influence deterministic outputs"
                    .to_string(),
            });
        } else if t.kind == TokKind::Ident
            && matches!(t.text, "SystemTime" | "from_entropy" | "thread_rng")
        {
            out.push(RawFinding {
                rule: "D3",
                line: t.line,
                message: format!(
                    "`{}` outside bench/test code: wall-clock/entropy sources break \
                     byte-identical replay; seed RNGs explicitly and route time through \
                     the simulated clock",
                    t.text
                ),
            });
        }
    }
    out
}

/// D4: `.unwrap()` in library code. The PR 3 precedent: panics in library
/// paths destroy resumability — use typed errors, or `expect` with a
/// message that states the invariant making the panic unreachable.
pub fn d4(toks: &[Tok<'_>], skip: &[(u32, u32)]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 1..toks.len() {
        if toks[i].is_ident("unwrap")
            && toks[i - 1].is_punct(".")
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("(")
            && !in_ranges(toks[i].line, skip)
        {
            out.push(RawFinding {
                rule: "D4",
                line: toks[i].line,
                message: "`.unwrap()` in library code: return a typed error or use \
                          `.expect(\"<why this cannot fail>\")`"
                    .to_string(),
            });
        }
    }
    out
}

/// D5 (per-file half): every `unsafe` token must have a `// SAFETY:`
/// comment on the same line or within the three lines above. The
/// crate-level half (unsafe-free crates must carry
/// `#![forbid(unsafe_code)]`) lives in [`crate::lint_workspace`].
pub fn d5_unsafe_blocks(lexed: &Lexed<'_>) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for t in &lexed.toks {
        if !t.is_ident("unsafe") {
            continue;
        }
        let documented = lexed.comments.iter().any(|c| {
            c.text.contains("SAFETY:") && c.end_line + 3 >= t.line && c.line <= t.line
        });
        if !documented {
            out.push(RawFinding {
                rule: "D5",
                line: t.line,
                message: "`unsafe` without a `// SAFETY:` comment on the preceding lines"
                    .to_string(),
            });
        }
    }
    out
}

/// Does this token stream contain the `unsafe` keyword at all?
pub fn has_unsafe(toks: &[Tok<'_>]) -> bool {
    toks.iter().any(|t| t.is_ident("unsafe"))
}

/// Does this (lib.rs) token stream carry `#![forbid(unsafe_code)]`?
pub fn has_forbid_unsafe(toks: &[Tok<'_>]) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct("#")
            && w[1].is_punct("!")
            && w[2].is_punct("[")
            && w[3].is_ident("forbid")
            && w[4].is_punct("(")
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(")")
            && w[7].is_punct("]")
    })
}

/// The narrowing cast targets D7 rejects on a u64-typed source. `usize`
/// is the insidious one: lossless on today's 64-bit dev machines, silently
/// truncating on 32-bit targets — so the divergence only shows up when the
/// serialized bytes are compared across platforms.
const D7_NARROW_TARGETS: [&str; 2] = ["usize", "u32"];

/// Collect names that are u64-typed in this file, via `name : [&][mut] u64`
/// type ascriptions (lets, params, struct fields). File-scoped and
/// name-based, the same fallback role as [`d2_map_names`]: it answers only
/// for receivers the workspace resolver cannot type.
fn d7_u64_names<'a>(toks: &[Tok<'a>]) -> Vec<&'a str> {
    let mut names: Vec<&str> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        // `name : <type>` (but not `name ::`).
        if i + 2 < toks.len() && toks[i + 1].is_punct(":") && !toks[i + 2].is_punct(":") {
            let mut j = i + 2;
            while j < toks.len()
                && (toks[j].is_punct("&")
                    || toks[j].is_ident("mut")
                    || toks[j].kind == TokKind::Lifetime)
            {
                j += 1;
            }
            if j < toks.len() && toks[j].is_ident("u64") {
                names.push(toks[i].text);
            }
        }
    }
    names.sort_unstable();
    names.dedup();
    names
}

/// D7: truncating `as` cast on a u64-typed counter in a serializing crate.
/// `count as usize` is lossless where it was written and truncating on a
/// 32-bit target; once such a value feeds report or snapshot bytes, the
/// determinism contract silently becomes platform-conditional. Use
/// `usize::try_from(count)` with a typed error (or keep the arithmetic in
/// u64), or annotate `// lint:allow(D7): <reason>`.
pub fn d7(toks: &[Tok<'_>], skip: &[(u32, u32)], r: &Resolver<'_>) -> Vec<RawFinding> {
    let names = d7_u64_names(toks);
    let known = |t: &str| names.binary_search(&t).is_ok();
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(2) {
        if toks[i].kind != TokKind::Ident
            || !toks[i + 1].is_ident("as")
            || toks[i + 2].kind != TokKind::Ident
            || !D7_NARROW_TARGETS.contains(&toks[i + 2].text)
            || in_ranges(toks[i].line, skip)
        {
            continue;
        }
        // Resolver verdict first (covers `p.ticks as usize` via the field's
        // declared type, and clears non-u64 names); lexical table fallback.
        let chain = receiver_chain(toks, i);
        let display = chain
            .as_ref()
            .map(|c| c.iter().map(|(s, _)| *s).collect::<Vec<_>>().join("."))
            .unwrap_or_else(|| toks[i].text.to_string());
        let fires = match chain.as_ref().and_then(|c| r.chain_type(c)) {
            Some(ty) => ty.head == "u64",
            None => known(toks[i].text),
        };
        if fires {
            out.push(RawFinding {
                rule: "D7",
                line: toks[i].line,
                message: format!(
                    "`{} as {}` narrows a u64 counter: lossless on 64-bit dev machines, \
                     truncating on 32-bit targets, so serialized bytes become \
                     platform-conditional; use `{}::try_from` (typed error) or keep the \
                     arithmetic in u64, or annotate `// lint:allow(D7): <reason>`",
                    display,
                    toks[i + 2].text,
                    toks[i + 2].text
                ),
            });
        }
    }
    out
}

/// The compound-assignment operators D8 treats as accumulation. The lexer
/// emits multi-char operators as adjacent single-char puncts, so `+=` is
/// the token pair `+`, `=`.
const D8_ACCUM_OPS: [&str; 4] = ["+", "-", "*", "/"];

/// Is `toks[i]` the final ident of a float compound-assignment
/// (`chain op= ...`)? Returns the resolved chain display name when the
/// left-hand side resolves to f32/f64.
fn d8_float_compound_assign<'t>(
    toks: &'t [Tok<'t>],
    i: usize,
    r: &Resolver<'_>,
) -> Option<(Vec<(&'t str, usize)>, String)> {
    if toks[i].kind != TokKind::Ident
        || i + 2 >= toks.len()
        || toks[i + 1].kind != TokKind::Punct
        || !D8_ACCUM_OPS.contains(&toks[i + 1].text)
        || !toks[i + 2].is_punct("=")
        || (i + 3 < toks.len() && toks[i + 3].is_punct("="))
    {
        return None;
    }
    let chain = receiver_chain(toks, i)?;
    let ty = r.chain_type(&chain)?;
    if !is_float_head(&ty.head) {
        return None;
    }
    let name = chain.iter().map(|(s, _)| *s).collect::<Vec<_>>().join(".");
    Some((chain, name))
}

/// Scan forward from a map-iteration site for an order-dependent float
/// reduction in the same statement: `.sum::<f64>()`, `.product::<f32>()`,
/// `.fold(0.0, ..)` (or fold seeded with a float-typed name), or a bare
/// `.sum()` whose binding `let` carries a float ascription. Returns the
/// reduction's line and method name.
fn d8_float_reduction_after(
    toks: &[Tok<'_>],
    site: usize,
    r: &Resolver<'_>,
) -> Option<(u32, &'static str)> {
    let n = toks.len();
    let limit = (site + 256).min(n);
    let mut depth = 0isize;
    let mut j = site;
    while j < limit {
        if toks[j].is_punct("(") || toks[j].is_punct("[") {
            depth += 1;
        } else if toks[j].is_punct(")") || toks[j].is_punct("]") {
            depth -= 1;
            if depth < 0 {
                return None; // left the enclosing expression
            }
        } else if toks[j].is_punct(";") && depth == 0 {
            return None; // statement ended without a reduction
        } else if toks[j].kind == TokKind::Ident
            && j >= 1
            && toks[j - 1].is_punct(".")
            && matches!(toks[j].text, "sum" | "product" | "fold")
        {
            let line = toks[j].line;
            match toks[j].text {
                "sum" | "product" => {
                    let m = if toks[j].text == "sum" { "sum" } else { "product" };
                    // Turbofish `::<f64>` / `::<f32>`.
                    if j + 4 < n
                        && toks[j + 1].is_punct(":")
                        && toks[j + 2].is_punct(":")
                        && toks[j + 3].is_punct("<")
                        && is_float_head(toks[j + 4].text)
                    {
                        return Some((line, m));
                    }
                    // Bare call: the binding's ascription decides.
                    if j + 1 < n && toks[j + 1].is_punct("(") {
                        let lo = site.saturating_sub(64);
                        for k in (lo..site).rev() {
                            if toks[k].is_punct(";") {
                                break;
                            }
                            if toks[k].is_ident("let") {
                                let mut b = k + 1;
                                if b < n && toks[b].is_ident("mut") {
                                    b += 1;
                                }
                                if b < n
                                    && toks[b].kind == TokKind::Ident
                                    && r.chain_type(&[(toks[b].text, b)])
                                        .is_some_and(|t| is_float_head(&t.head))
                                {
                                    return Some((line, m));
                                }
                                break;
                            }
                        }
                    }
                }
                "fold" if j + 2 < n && toks[j + 1].is_punct("(") => {
                    let a = &toks[j + 2];
                    let seed_is_float = match a.kind {
                        TokKind::Literal => {
                            a.text.as_bytes().first().is_some_and(u8::is_ascii_digit)
                                && (a.text.contains('.')
                                    || a.text.ends_with("f32")
                                    || a.text.ends_with("f64"))
                        }
                        TokKind::Ident => r
                            .chain_type(&[(a.text, j + 2)])
                            .is_some_and(|t| is_float_head(&t.head)),
                        _ => false,
                    };
                    if seed_is_float {
                        return Some((line, "fold"));
                    }
                }
                _ => {}
            }
        }
        j += 1;
    }
    None
}

/// D8: order-dependent float accumulation. IEEE addition is not
/// associative, so the *order* of a float reduction is part of the
/// output bytes. Three shapes are flagged:
///
/// 1. a compound assignment (`+=`, `-=`, `*=`, `/=`) on f32/f64 state
///    *captured* by an `exec::par_map`-family closure — the accumulation
///    order then depends on thread interleaving (PR 1's TF/IDF incident,
///    one layer up);
/// 2. a float `sum()`/`product()`/`fold(..)` reduction chained onto a
///    hash-ordered iteration (`map.values().sum::<f64>()`) — the order
///    depends on the hasher;
/// 3. a float compound assignment inside the body of a `for` loop over a
///    hash-ordered collection.
///
/// Sequential folds over `Vec`s/slices and sorted-then-reduce pipelines
/// resolve to non-map, non-captured state and stay silent. The fix is a
/// sorted or indexed merge reduction (collect into a `Vec`, sort by a
/// total order, then fold), or `// lint:allow(D8): <reason>`.
pub fn d8(toks: &[Tok<'_>], skip: &[(u32, u32)], r: &Resolver<'_>) -> Vec<RawFinding> {
    let mut out = Vec::new();
    // Shape 1: captured float accumulation inside a parallel closure.
    for pc in &r.facts.par_closures {
        let (b0, b1) = pc.body;
        for i in b0..b1.min(toks.len()) {
            if in_ranges(toks[i].line, skip) {
                continue;
            }
            let Some((chain, name)) = d8_float_compound_assign(toks, i, r) else {
                continue;
            };
            let lead = chain[0].0;
            let is_local = lead != "self"
                && (pc.params.iter().any(|p| p == lead)
                    || r.facts
                        .let_sites
                        .iter()
                        .any(|(n, idx)| n == lead && b0 <= *idx && *idx <= b1));
            if is_local {
                continue; // per-item state, deterministic
            }
            out.push(RawFinding {
                rule: "D8",
                line: toks[i].line,
                message: format!(
                    "float accumulation `{name} {}=` on state captured by a `{}` closure: \
                     IEEE addition is order-dependent and the parallel boundary makes the \
                     order thread-interleaving-dependent; return per-item values and reduce \
                     them in index order, or annotate `// lint:allow(D8): <reason>`",
                    toks[i + 1].text,
                    pc.callee
                ),
            });
        }
    }
    // Shapes 2 and 3: float reduction over hash-ordered iteration.
    let names = d2_map_names(toks);
    let known = |t: &str| names.binary_search(&t).is_ok();
    for i in 0..toks.len() {
        // `map.values().sum::<f64>()` etc.
        if toks[i].kind == TokKind::Ident
            && D2_ITER_METHODS.contains(&toks[i].text)
            && i >= 2
            && toks[i - 1].is_punct(".")
            && toks[i - 2].kind == TokKind::Ident
            && i + 1 < toks.len()
            && toks[i + 1].is_punct("(")
            && !in_ranges(toks[i].line, skip)
        {
            if let Some(name) = is_map_receiver(toks, i - 2, r, &known) {
                if let Some((line, method)) = d8_float_reduction_after(toks, i, r) {
                    out.push(RawFinding {
                        rule: "D8",
                        line,
                        message: format!(
                            "float `{method}` over hash-ordered `{name}`: IEEE addition is \
                             order-dependent and hash order varies across processes; sort \
                             the keys (or collect+sort) before reducing, or annotate \
                             `// lint:allow(D8): <reason>`"
                        ),
                    });
                }
            }
        }
        // `for .. in map { total += v; }`.
        if toks[i].is_ident("for") {
            let Some(last) = for_loop_receiver(toks, i) else { continue };
            if in_ranges(toks[last].line, skip) {
                continue;
            }
            if is_map_receiver(toks, last, r, &known).is_none() {
                continue;
            }
            // Scan the loop body for float compound assignments.
            let mut k = last;
            while k < toks.len() && !toks[k].is_punct("{") {
                k += 1;
            }
            let mut depth = 0usize;
            let mut j = k;
            while j < toks.len() {
                if toks[j].is_punct("{") {
                    depth += 1;
                } else if toks[j].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if !in_ranges(toks[j].line, skip) {
                    if let Some((_, name)) = d8_float_compound_assign(toks, j, r) {
                        out.push(RawFinding {
                            rule: "D8",
                            line: toks[j].line,
                            message: format!(
                                "float accumulation `{name} {}=` inside a `for` loop over a \
                                 hash-ordered collection: the reduction order follows hash \
                                 order and varies across processes; iterate sorted keys, or \
                                 annotate `// lint:allow(D8): <reason>`",
                                toks[j + 1].text
                            ),
                        });
                    }
                }
                j += 1;
            }
        }
    }
    out.sort_by_key(|f| f.line);
    out
}

/// The snapshot roots D9 walks reachability from: the full iteration
/// state closure and the per-task record embedded in it.
pub const D9_ROOTS: [&str; 2] = ["RunSnapshot", "MatchTask"];

/// Type heads whose value is process-local (lazily initialized, interior-
/// mutable, or wall-clock) and therefore cannot round-trip through a
/// snapshot byte-for-byte.
fn is_volatile_head(h: &str) -> bool {
    matches!(
        h,
        "OnceLock" | "OnceCell" | "LazyLock" | "Cell" | "RefCell" | "Mutex" | "RwLock"
            | "Instant" | "SystemTime"
    ) || h.starts_with("Atomic")
}

/// D9: snapshot-closure completeness. Every type reachable from the
/// [`D9_ROOTS`] is part of the kill-and-resume contract: if a field is
/// dropped from the wire (`#[serde(skip)]`), silently defaulted on read
/// (`#[serde(default)]`), process-local (`OnceLock`, atomics, ...), or
/// serialized by a hand-written impl the lint cannot inspect, a resumed
/// run may diverge from an uninterrupted one. Each such field gets one
/// finding at its declaration; waiving it (`// lint:allow(D9): <reason>`)
/// is the documented claim that the field is recomputable from the rest
/// of the closure — `AnalysisCell` is the canonical exemplar. Flagged
/// fields are not recursed into, so a waived cache type is not re-flagged
/// member by member.
pub fn d9(ws: &Workspace) -> Vec<(String, RawFinding)> {
    use std::collections::BTreeSet;
    let mut out: Vec<(String, RawFinding)> = Vec::new();
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut queue: Vec<(&str, &str)> = Vec::new(); // (type, root provenance)
    for root in D9_ROOTS {
        if ws.types.contains_key(root) && seen.insert(root) {
            queue.push((root, root));
        }
    }
    while let Some((name, root)) = queue.pop() {
        let Some(defs) = ws.types.get(name) else { continue };
        for def in defs {
            for f in &def.fields {
                let fty = deref(&f.ty);
                let reason = if f.serde_skip {
                    Some(
                        "is `#[serde(skip)]`: dropped from the snapshot wire format, so a \
                         resumed run rebuilds it from scratch"
                            .to_string(),
                    )
                } else if f.serde_default {
                    Some(
                        "is `#[serde(default)]`: silently defaulted when absent from the \
                         wire, masking an incomplete snapshot"
                            .to_string(),
                    )
                } else if ws.manual_serde.contains(&fty.head) {
                    Some(format!(
                        "has a hand-written serde impl (`{}`) the lint cannot verify for \
                         completeness",
                        fty.head
                    ))
                } else if f.ty.contains_head(&is_volatile_head) {
                    Some(format!(
                        "holds process-local state (`{}`) that cannot round-trip through \
                         snapshot bytes",
                        f.ty.head
                    ))
                } else {
                    None
                };
                if let Some(why) = reason {
                    out.push((
                        def.file.clone(),
                        RawFinding {
                            rule: "D9",
                            line: f.line,
                            message: format!(
                                "snapshot closure: field `{}.{}` (reachable from `{root}`) \
                                 {why}; prove it is recomputable and annotate \
                                 `// lint:allow(D9): <reason>`, or serialize it",
                                def.name, f.name
                            ),
                        },
                    ));
                    continue; // do not recurse into flagged fields
                }
                // Recurse into every named type this field mentions, except
                // manually-serialized ones (their internals are the impl's
                // business, and the field above already vouched for them).
                f.ty.walk(&mut |t| {
                    if ws.types.contains_key(t.head.as_str())
                        && !ws.manual_serde.contains(&t.head)
                    {
                        if let Some((k, _)) = ws.types.get_key_value(t.head.as_str()) {
                            if seen.insert(k.as_str()) {
                                queue.push((k.as_str(), root));
                            }
                        }
                    }
                });
            }
        }
    }
    out.sort_by(|a, b| (a.0.as_str(), a.1.line).cmp(&(b.0.as_str(), b.1.line)));
    out
}

/// D6: `thread::spawn` outside `crates/exec`. All parallelism must route
/// through the deterministic fan-out primitives in `exec`, whose chunked
/// self-scheduling keeps results independent of which thread ran what.
pub fn d6(toks: &[Tok<'_>]) -> Vec<RawFinding> {
    let mut out = Vec::new();
    for i in 0..toks.len().saturating_sub(3) {
        if toks[i].is_ident("thread")
            && toks[i + 1].is_punct(":")
            && toks[i + 2].is_punct(":")
            && toks[i + 3].is_ident("spawn")
        {
            out.push(RawFinding {
                rule: "D6",
                line: toks[i].line,
                message: "`thread::spawn` outside crates/exec: route parallelism through \
                          the deterministic `exec` fan-out primitives"
                    .to_string(),
            });
        }
    }
    out
}
