//! `corleone-lint` CLI — walk the workspace, enforce D1–D6, exit non-zero
//! on any un-annotated finding.
//!
//! ```text
//! corleone-lint [--json] [--stats] [--root <workspace-root>]
//! ```
//!
//! * default: human-readable findings + the allow-annotation inventory
//! * `--json`:  machine-readable report (findings, allows, stats) on stdout
//! * `--stats`: add the per-rule counter table to the human output
//! * exit code: 0 when clean, 1 on findings, 2 on usage/IO errors

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut stats = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--stats" => stats = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("corleone-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("usage: corleone-lint [--json] [--stats] [--root <workspace-root>]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("corleone-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("corleone-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "corleone-lint: no workspace root (Cargo.toml + crates/) found \
                         above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("corleone-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render_human(stats));
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
