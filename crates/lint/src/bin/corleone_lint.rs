//! `corleone-lint` CLI — walk the workspace, enforce D1–D9, exit non-zero
//! on any un-annotated finding.
//!
//! ```text
//! corleone-lint [--json] [--stats] [--ratchet <baseline.json>] [--root <workspace-root>]
//! ```
//!
//! * default: human-readable findings + the allow-annotation inventory
//! * `--json`:  machine-readable report (findings, allows, stats) on stdout
//! * `--stats`: add the per-rule counter table to the human output
//! * `--ratchet <path>`: check the waiver inventory against the committed
//!   budget (`lint-baseline.json`); prints `lint_ratchet=ok` on success so
//!   CI can grep for it like the `*_equivalence=ok` markers
//! * exit code: 0 when clean (and, with `--ratchet`, within budget),
//!   1 on findings or ratchet violations, 2 on usage/IO errors

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut stats = false;
    let mut root: Option<PathBuf> = None;
    let mut ratchet: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--stats" => stats = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("corleone-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--ratchet" => match args.next() {
                Some(p) => ratchet = Some(PathBuf::from(p)),
                None => {
                    eprintln!("corleone-lint: --ratchet requires a baseline path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: corleone-lint [--json] [--stats] [--ratchet <baseline.json>] \
                     [--root <workspace-root>]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("corleone-lint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("corleone-lint: cannot read current dir: {e}");
                    return ExitCode::from(2);
                }
            };
            match lint::find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!(
                        "corleone-lint: no workspace root (Cargo.toml + crates/) found \
                         above {}",
                        cwd.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let report = match lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("corleone-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        print!("{}", report.to_json());
    } else {
        print!("{}", report.render_human(stats));
    }

    if let Some(baseline_path) = ratchet {
        let text = match std::fs::read_to_string(&baseline_path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("corleone-lint: cannot read {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        let baseline = match lint::parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("corleone-lint: bad baseline {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        };
        let violations = lint::ratchet_violations(&report, &baseline);
        if violations.is_empty() {
            println!("lint_ratchet=ok");
        } else {
            for v in &violations {
                eprintln!("lint ratchet violation: {v}");
            }
            return ExitCode::FAILURE;
        }
    }

    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
