#![forbid(unsafe_code)]
//! `corleone-lint` — a workspace static-analysis pass that enforces the
//! determinism & robustness contract no compiler checks.
//!
//! The repo's value rests on invariants like byte-identical reports across
//! 1/2/8 threads and byte-identical checkpoint resume. Ordinary Rust idioms
//! have already broken them twice (PR 1: HashMap-iteration-order float
//! summation in TF/IDF cosine; PR 2: a `partial_cmp(..).expect(..)`
//! comparator panicking mid-run on a NaN importance). This crate encodes
//! those postmortems — and the adjacent hazards — as machine-checked rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | D1   | no `partial_cmp` in comparator position — `total_cmp` only |
//! | D2   | no HashMap/HashSet iteration in serializing/float-summing crates |
//! | D3   | no wall-clock or entropy sources outside bench/tests |
//! | D4   | no `.unwrap()` in library code — typed errors or reasoned `expect` |
//! | D5   | `unsafe` needs `// SAFETY:`; unsafe-free crates forbid it outright |
//! | D6   | no raw `thread::spawn` outside `crates/exec` |
//! | D7   | no truncating `as usize`/`as u32` casts on u64 counters in serializing crates |
//! | D8   | no order-dependent float accumulation across parallel or hash-ordered boundaries |
//! | D9   | the `RunSnapshot`/`MatchTask` closure is complete — skipped/volatile fields are waived explicitly |
//!
//! The analysis runs in two phases: a hand-rolled comment/string/
//! raw-string-aware lexer ([`lexer`]) feeds a workspace-wide symbol graph
//! ([`resolve`]) — struct/enum fields with resolved types, `use` aliases,
//! `let`/param ascriptions, `exec::par_map`-family closure boundaries —
//! and the token-stream rules ([`rules`]) then query receivers against
//! *declared types* instead of bare names, falling back to the per-file
//! name table only when resolution is impossible. Rule text inside
//! literals or docs never fires. Escape hatch: a same-line
//! `// lint:allow(Dx): <reason>` annotation (or
//! `// lint:allow-module(Dx): <reason>` for a whole file); the reason text
//! is mandatory and every waiver is surfaced in the report so the
//! inventory stays reviewable. See DESIGN.md §4f.

pub mod lexer;
pub mod resolve;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::{Annotation, RawFinding, D2_DENY_CRATES, RULES};

/// Pseudo-rule code for malformed `lint:allow` annotations (missing reason,
/// unknown rule code). A malformed annotation never suppresses anything.
pub const ANNOTATION_RULE: &str = "A0";

/// Human-readable rule names, keyed like [`RULES`].
pub fn rule_name(rule: &str) -> &'static str {
    match rule {
        "D1" => "partial-cmp-comparator",
        "D2" => "hash-order-iteration",
        "D3" => "wall-clock-entropy",
        "D4" => "library-unwrap",
        "D5" => "unsafe-hygiene",
        "D6" => "raw-thread-spawn",
        "D7" => "u64-truncating-cast",
        "D8" => "order-dependent-float-accumulation",
        "D9" => "snapshot-closure-completeness",
        _ => "malformed-allow-annotation",
    }
}

/// One diagnostic that survived allow-annotation filtering.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// One `lint:allow` waiver that suppressed at least one finding (or, in
/// `unused_allows`, suppressed none).
#[derive(Debug, Clone)]
pub struct AllowRecord {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub reason: String,
    pub module_level: bool,
}

/// Per-rule counters for `--stats` and the JSON report.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    pub files_scanned: usize,
    pub tokens: u64,
    pub findings_per_rule: BTreeMap<String, usize>,
    pub allows_per_rule: BTreeMap<String, usize>,
}

/// The full lint result for a workspace (or a single file in tests).
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub allows: Vec<AllowRecord>,
    pub unused_allows: Vec<AllowRecord>,
    pub stats: Stats,
}

impl Report {
    /// CI gate: clean means zero un-annotated findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    fn finalize(&mut self) {
        for code in RULES.iter().copied().chain([ANNOTATION_RULE]) {
            self.stats.findings_per_rule.entry(code.to_string()).or_insert(0);
            self.stats.allows_per_rule.entry(code.to_string()).or_insert(0);
        }
        for f in &self.findings {
            *self
                .stats
                .findings_per_rule
                .entry(f.rule.clone())
                .or_insert(0) += 1;
        }
        for a in &self.allows {
            *self.stats.allows_per_rule.entry(a.rule.clone()).or_insert(0) += 1;
        }
        let sort_key = |f: &Finding| (f.file.clone(), f.line, f.rule.clone());
        self.findings.sort_by_key(sort_key);
        self.allows
            .sort_by_key(|a| (a.file.clone(), a.line, a.rule.clone()));
        self.unused_allows
            .sort_by_key(|a| (a.file.clone(), a.line, a.rule.clone()));
    }

    /// Machine-readable report (hand-rolled JSON: the lint is
    /// dependency-free by design).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.stats.files_scanned);
        let _ = writeln!(s, "  \"tokens\": {},", self.stats.tokens);
        let _ = writeln!(s, "  \"clean\": {},", self.is_clean());
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                s,
                "{sep}    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            );
        }
        s.push_str(if self.findings.is_empty() { "],\n" } else { "\n  ],\n" });
        for (key, list) in [("allows", &self.allows), ("unused_allows", &self.unused_allows)] {
            let _ = write!(s, "  \"{key}\": [");
            for (i, a) in list.iter().enumerate() {
                let sep = if i == 0 { "\n" } else { ",\n" };
                let _ = write!(
                    s,
                    "{sep}    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"scope\": {}, \"reason\": {}}}",
                    json_str(&a.rule),
                    json_str(&a.file),
                    a.line,
                    json_str(if a.module_level { "module" } else { "line" }),
                    json_str(&a.reason)
                );
            }
            s.push_str(if list.is_empty() { "],\n" } else { "\n  ],\n" });
        }
        s.push_str("  \"stats\": {\"findings\": {");
        push_counter_map(&mut s, &self.stats.findings_per_rule);
        s.push_str("}, \"allows\": {");
        push_counter_map(&mut s, &self.stats.allows_per_rule);
        s.push_str("}}\n}\n");
        s
    }

    /// Human-readable report. `with_stats` adds the per-rule counter table.
    pub fn render_human(&self, with_stats: bool) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "corleone-lint: scanned {} files, {} tokens",
            self.stats.files_scanned, self.stats.tokens
        );
        if with_stats {
            let _ = writeln!(s, "  {:<4} {:<26} {:>8} {:>7}", "rule", "name", "findings", "allows");
            for code in RULES.iter().copied().chain([ANNOTATION_RULE]) {
                let _ = writeln!(
                    s,
                    "  {:<4} {:<26} {:>8} {:>7}",
                    code,
                    rule_name(code),
                    self.stats.findings_per_rule.get(code).copied().unwrap_or(0),
                    self.stats.allows_per_rule.get(code).copied().unwrap_or(0),
                );
            }
        }
        if !self.allows.is_empty() {
            let _ = writeln!(s, "allow-annotation inventory ({}):", self.allows.len());
            for a in &self.allows {
                let scope = if a.module_level { " [module]" } else { "" };
                let _ = writeln!(s, "  {} {}:{}{} — {}", a.rule, a.file, a.line, scope, a.reason);
            }
        }
        for a in &self.unused_allows {
            let _ = writeln!(
                s,
                "warning: unused allow {} at {}:{} — {}",
                a.rule, a.file, a.line, a.reason
            );
        }
        if self.findings.is_empty() {
            let _ = writeln!(s, "OK: no un-annotated findings");
        } else {
            for f in &self.findings {
                let _ = writeln!(s, "{}: [{}/{}] {}", fileline(f), f.rule, rule_name(&f.rule), f.message);
            }
            let _ = writeln!(s, "FAIL: {} un-annotated finding(s)", self.findings.len());
        }
        s
    }
}

fn fileline(f: &Finding) -> String {
    format!("{}:{}", f.file, f.line)
}

fn push_counter_map(s: &mut String, m: &BTreeMap<String, usize>) {
    for (i, (k, v)) in m.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(s, "{sep}{}: {v}", json_str(k));
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Per-file lint result, exposed for the fixture self-tests.
#[derive(Debug, Default)]
pub struct FileOutcome {
    pub findings: Vec<Finding>,
    pub allows: Vec<AllowRecord>,
    pub unused_allows: Vec<AllowRecord>,
    pub tokens: u64,
    pub has_unsafe: bool,
    pub has_forbid_unsafe: bool,
    /// Module-level allow rule codes (for the crate-level D5 check).
    pub module_allows: Vec<String>,
}

/// One file queued for a [`lint_source_set`] pass.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path (used in diagnostics and for the
    /// `src/bin/` exemption).
    pub rel: String,
    /// The `crates/<name>` directory name the file belongs to.
    pub crate_name: String,
    pub src: String,
}

/// Lint a set of files as one workspace: phase 1 builds the cross-file
/// symbol graph ([`resolve::Workspace`]) from every file's token stream,
/// phase 2 runs the rules per file with a [`resolve::Resolver`] over that
/// shared graph, then routes the workspace-level D9 findings to the file
/// owning each flagged type definition. Outcomes are returned in input
/// order, one per file.
pub fn lint_source_set(files: &[SourceFile]) -> Vec<FileOutcome> {
    // Phase 1: lex everything and merge the symbol graph.
    let lexed: Vec<lexer::Lexed<'_>> = files.iter().map(|f| lexer::lex(&f.src)).collect();
    let mut ws = resolve::Workspace::default();
    let mut facts: Vec<resolve::FileFacts> = Vec::with_capacity(files.len());
    for (f, lx) in files.iter().zip(&lexed) {
        let (ff, defs, manual) = resolve::collect(&f.rel, &f.crate_name, &lx.toks);
        ws.add_types(defs);
        ws.manual_serde.extend(manual);
        facts.push(ff);
    }

    // Phase 2: per-file rules against the shared graph.
    let mut raws: Vec<Vec<RawFinding>> = Vec::with_capacity(files.len());
    for (i, f) in files.iter().enumerate() {
        let lx = &lexed[i];
        let r = resolve::Resolver { facts: &facts[i], ws: &ws };
        let skip = rules::test_ranges(&lx.toks);
        let is_bin = f.rel.contains("/src/bin/") || f.rel.ends_with("/main.rs");
        let crate_name = f.crate_name.as_str();

        let mut raw: Vec<RawFinding> = Vec::new();
        raw.extend(rules::d1(&lx.toks));
        if D2_DENY_CRATES.contains(&crate_name) {
            raw.extend(rules::d2(&lx.toks, &skip, &r));
            raw.extend(rules::d7(&lx.toks, &skip, &r));
        }
        if crate_name != "bench" {
            raw.extend(rules::d3(&lx.toks, &skip));
            if !is_bin {
                raw.extend(rules::d4(&lx.toks, &skip));
            }
            raw.extend(rules::d8(&lx.toks, &skip, &r));
        }
        raw.extend(rules::d5_unsafe_blocks(lx));
        if crate_name != "exec" {
            raw.extend(rules::d6(&lx.toks));
        }
        raws.push(raw);
    }

    // D9 is workspace-level: findings attach to the file that *defines*
    // the flagged field, where the waiver (if any) must live.
    for (file, f) in rules::d9(&ws) {
        if let Some(i) = files.iter().position(|sf| sf.rel == file) {
            raws[i].push(f);
        }
    }

    files
        .iter()
        .enumerate()
        .map(|(i, f)| {
            let raw = std::mem::take(&mut raws[i]);
            apply_annotations(&f.rel, &lexed[i], raw)
        })
        .collect()
}

/// Lint one file's source in isolation (the symbol graph sees only this
/// file). This is the fixture-test entry point; the workspace pass goes
/// through [`lint_source_set`] so cross-file types resolve.
pub fn lint_file(rel_path: &str, crate_name: &str, src: &str) -> FileOutcome {
    lint_source_set(&[SourceFile {
        rel: rel_path.to_string(),
        crate_name: crate_name.to_string(),
        src: src.to_string(),
    }])
    .pop()
    .expect("one outcome per input file")
}

/// Apply the `lint:allow` annotation filter to a file's raw findings and
/// assemble its [`FileOutcome`].
fn apply_annotations(rel_path: &str, lexed: &lexer::Lexed<'_>, raw: Vec<RawFinding>) -> FileOutcome {
    let annotations = rules::parse_annotations(&lexed.comments);

    let mut out = FileOutcome {
        tokens: lexed.toks.len() as u64,
        has_unsafe: rules::has_unsafe(&lexed.toks),
        has_forbid_unsafe: rules::has_forbid_unsafe(&lexed.toks),
        ..FileOutcome::default()
    };

    // Malformed annotations are findings themselves and suppress nothing.
    let live: Vec<&Annotation> = annotations
        .iter()
        .filter(|a| {
            if let Some(why) = &a.malformed {
                out.findings.push(Finding {
                    rule: ANNOTATION_RULE.to_string(),
                    file: rel_path.to_string(),
                    line: a.line,
                    message: format!("malformed lint:allow annotation: {why}"),
                });
                false
            } else {
                true
            }
        })
        .collect();
    out.module_allows = live
        .iter()
        .filter(|a| a.module_level)
        .map(|a| a.rule.clone())
        .collect();

    let mut used = vec![false; live.len()];
    for f in raw {
        let suppressed = live.iter().enumerate().find(|(_, a)| {
            a.rule == f.rule && (a.module_level || a.line == f.line)
        });
        match suppressed {
            Some((idx, _)) => used[idx] = true,
            None => out.findings.push(Finding {
                rule: f.rule.to_string(),
                file: rel_path.to_string(),
                line: f.line,
                message: f.message,
            }),
        }
    }
    for (idx, a) in live.iter().enumerate() {
        let rec = AllowRecord {
            rule: a.rule.clone(),
            file: rel_path.to_string(),
            line: a.line,
            reason: a.reason.clone(),
            module_level: a.module_level,
        };
        if used[idx] {
            out.allows.push(rec);
        } else {
            out.unused_allows.push(rec);
        }
    }
    out
}

/// Recursively collect `.rs` files under `dir`, sorted by path so the
/// report order (and the JSON bytes) are deterministic.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint every `crates/*/src/**/*.rs` file under `root` (the workspace
/// root). Fixture corpora (`crates/lint/tests/fixtures`) are outside the
/// scanned `src` trees and therefore never scanned.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    // Gather every file first: the two-phase pass needs the whole
    // workspace in hand so types defined in one crate resolve in another.
    let mut sources: Vec<SourceFile> = Vec::new();
    let mut is_crate_lib: Vec<bool> = Vec::new();
    for crate_dir in &crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk_rs(&src_dir, &mut files)?;
        for path in files {
            let src = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            is_crate_lib.push(
                path.file_name().is_some_and(|n| n == "lib.rs")
                    && path.parent().is_some_and(|p| p == src_dir),
            );
            sources.push(SourceFile { rel, crate_name: crate_name.clone(), src });
        }
    }

    let outcomes = lint_source_set(&sources);

    let mut report = Report::default();
    // Per-crate D5 state: (has_unsafe, lib.rs (rel path, has forbid, module allows)).
    type LibInfo<'a> = (&'a str, bool, &'a [String]);
    let mut crate_state: BTreeMap<&str, (bool, Option<LibInfo>)> = BTreeMap::new();
    for ((sf, outcome), is_lib) in sources.iter().zip(&outcomes).zip(&is_crate_lib) {
        report.stats.files_scanned += 1;
        report.stats.tokens += outcome.tokens;
        let entry = crate_state.entry(sf.crate_name.as_str()).or_insert((false, None));
        entry.0 |= outcome.has_unsafe;
        if *is_lib {
            entry.1 = Some((sf.rel.as_str(), outcome.has_forbid_unsafe, &outcome.module_allows));
        }
        report.findings.extend(outcome.findings.iter().cloned());
        report.allows.extend(outcome.allows.iter().cloned());
        report.unused_allows.extend(outcome.unused_allows.iter().cloned());
    }
    // Crate-level D5: an unsafe-free crate must let the compiler hold
    // the line with `#![forbid(unsafe_code)]`.
    for (crate_name, (has_unsafe, lib_rs)) in crate_state {
        if let Some((lib_rel, has_forbid, module_allows)) = lib_rs {
            if !has_unsafe && !has_forbid && !module_allows.iter().any(|r| r == "D5") {
                report.findings.push(Finding {
                    rule: "D5".to_string(),
                    file: lib_rel.to_string(),
                    line: 1,
                    message: format!(
                        "crate `{crate_name}` is unsafe-free but lib.rs lacks \
                         `#![forbid(unsafe_code)]`"
                    ),
                });
            }
        }
    }
    report.finalize();
    Ok(report)
}

/// The committed waiver budget (`lint-baseline.json`): the ratchet fails
/// CI when any rule's allow count exceeds its budgeted ceiling, so the
/// inventory can only shrink (or grow through an explicit, reviewed
/// baseline edit).
#[derive(Debug, Clone, Default)]
pub struct Baseline {
    pub allow_budget: BTreeMap<String, usize>,
}

/// Parse `lint-baseline.json`. Hand-rolled for the one fixed schema
/// (`{"schema_version": 1, "allow_budget": {"D2": 13, ...}}`) — the lint
/// stays dependency-free by design.
pub fn parse_baseline(text: &str) -> Result<Baseline, String> {
    let obj_start = text
        .find("\"allow_budget\"")
        .ok_or_else(|| "missing \"allow_budget\" key".to_string())?;
    let brace = text[obj_start..]
        .find('{')
        .ok_or_else(|| "missing allow_budget object".to_string())?
        + obj_start;
    let end = text[brace..]
        .find('}')
        .ok_or_else(|| "unclosed allow_budget object".to_string())?
        + brace;
    let mut base = Baseline::default();
    for pair in text[brace + 1..end].split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (key, val) = pair
            .split_once(':')
            .ok_or_else(|| format!("malformed budget entry `{pair}`"))?;
        let key = key.trim().trim_matches('"');
        let val: usize = val
            .trim()
            .parse()
            .map_err(|_| format!("budget for `{key}` is not a non-negative integer"))?;
        if !RULES.contains(&key) && key != ANNOTATION_RULE {
            return Err(format!("budget names unknown rule `{key}`"));
        }
        base.allow_budget.insert(key.to_string(), val);
    }
    Ok(base)
}

/// Ratchet check: violations that must fail CI. Empty means the ratchet
/// holds. Three classes: un-annotated findings (the workspace must be
/// lint-clean), any unused allow (dead waivers may not accumulate), and a
/// per-rule allow count above the committed budget.
pub fn ratchet_violations(report: &Report, baseline: &Baseline) -> Vec<String> {
    let mut out = Vec::new();
    if !report.findings.is_empty() {
        out.push(format!(
            "{} un-annotated finding(s) — the workspace must be lint-clean",
            report.findings.len()
        ));
    }
    for a in &report.unused_allows {
        out.push(format!(
            "unused allow {} at {}:{} — delete it (dead waivers may not accumulate)",
            a.rule, a.file, a.line
        ));
    }
    let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
    for a in &report.allows {
        *counts.entry(a.rule.as_str()).or_insert(0) += 1;
    }
    for (rule, n) in counts {
        let budget = baseline.allow_budget.get(rule).copied().unwrap_or(0);
        if n > budget {
            out.push(format!(
                "rule {rule} has {n} allow(s), budget is {budget} — shrink the inventory \
                 or raise the baseline in an explicit review"
            ));
        }
    }
    out
}

/// Find the workspace root: ascend from `start` until a directory holding
/// both `Cargo.toml` and a `crates/` subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(|p| p.to_path_buf());
    }
    None
}
