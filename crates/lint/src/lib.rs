#![forbid(unsafe_code)]
//! `corleone-lint` — a workspace static-analysis pass that enforces the
//! determinism & robustness contract no compiler checks.
//!
//! The repo's value rests on invariants like byte-identical reports across
//! 1/2/8 threads and byte-identical checkpoint resume. Ordinary Rust idioms
//! have already broken them twice (PR 1: HashMap-iteration-order float
//! summation in TF/IDF cosine; PR 2: a `partial_cmp(..).expect(..)`
//! comparator panicking mid-run on a NaN importance). This crate encodes
//! those postmortems — and the adjacent hazards — as machine-checked rules:
//!
//! | rule | invariant |
//! |------|-----------|
//! | D1   | no `partial_cmp` in comparator position — `total_cmp` only |
//! | D2   | no HashMap/HashSet iteration in serializing/float-summing crates |
//! | D3   | no wall-clock or entropy sources outside bench/tests |
//! | D4   | no `.unwrap()` in library code — typed errors or reasoned `expect` |
//! | D5   | `unsafe` needs `// SAFETY:`; unsafe-free crates forbid it outright |
//! | D6   | no raw `thread::spawn` outside `crates/exec` |
//! | D7   | no truncating `as usize`/`as u32` casts on u64 counters in serializing crates |
//!
//! The analysis is lexical: a hand-rolled comment/string/raw-string-aware
//! lexer ([`lexer`]) feeds token-stream rules ([`rules`]), so rule text
//! inside literals or docs never fires. Escape hatch: a same-line
//! `// lint:allow(Dx): <reason>` annotation (or
//! `// lint:allow-module(Dx): <reason>` for a whole file); the reason text
//! is mandatory and every waiver is surfaced in the report so the
//! inventory stays reviewable. See DESIGN.md §4f.

pub mod lexer;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use rules::{Annotation, RawFinding, D2_DENY_CRATES, RULES};

/// Pseudo-rule code for malformed `lint:allow` annotations (missing reason,
/// unknown rule code). A malformed annotation never suppresses anything.
pub const ANNOTATION_RULE: &str = "A0";

/// Human-readable rule names, keyed like [`RULES`].
pub fn rule_name(rule: &str) -> &'static str {
    match rule {
        "D1" => "partial-cmp-comparator",
        "D2" => "hash-order-iteration",
        "D3" => "wall-clock-entropy",
        "D4" => "library-unwrap",
        "D5" => "unsafe-hygiene",
        "D6" => "raw-thread-spawn",
        "D7" => "u64-truncating-cast",
        _ => "malformed-allow-annotation",
    }
}

/// One diagnostic that survived allow-annotation filtering.
#[derive(Debug, Clone)]
pub struct Finding {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub message: String,
}

/// One `lint:allow` waiver that suppressed at least one finding (or, in
/// `unused_allows`, suppressed none).
#[derive(Debug, Clone)]
pub struct AllowRecord {
    pub rule: String,
    pub file: String,
    pub line: u32,
    pub reason: String,
    pub module_level: bool,
}

/// Per-rule counters for `--stats` and the JSON report.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    pub files_scanned: usize,
    pub tokens: u64,
    pub findings_per_rule: BTreeMap<String, usize>,
    pub allows_per_rule: BTreeMap<String, usize>,
}

/// The full lint result for a workspace (or a single file in tests).
#[derive(Debug, Clone, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub allows: Vec<AllowRecord>,
    pub unused_allows: Vec<AllowRecord>,
    pub stats: Stats,
}

impl Report {
    /// CI gate: clean means zero un-annotated findings.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    fn finalize(&mut self) {
        for code in RULES.iter().copied().chain([ANNOTATION_RULE]) {
            self.stats.findings_per_rule.entry(code.to_string()).or_insert(0);
            self.stats.allows_per_rule.entry(code.to_string()).or_insert(0);
        }
        for f in &self.findings {
            *self
                .stats
                .findings_per_rule
                .entry(f.rule.clone())
                .or_insert(0) += 1;
        }
        for a in &self.allows {
            *self.stats.allows_per_rule.entry(a.rule.clone()).or_insert(0) += 1;
        }
        let sort_key = |f: &Finding| (f.file.clone(), f.line, f.rule.clone());
        self.findings.sort_by_key(sort_key);
        self.allows
            .sort_by_key(|a| (a.file.clone(), a.line, a.rule.clone()));
        self.unused_allows
            .sort_by_key(|a| (a.file.clone(), a.line, a.rule.clone()));
    }

    /// Machine-readable report (hand-rolled JSON: the lint is
    /// dependency-free by design).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.stats.files_scanned);
        let _ = writeln!(s, "  \"tokens\": {},", self.stats.tokens);
        let _ = writeln!(s, "  \"clean\": {},", self.is_clean());
        s.push_str("  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let sep = if i == 0 { "\n" } else { ",\n" };
            let _ = write!(
                s,
                "{sep}    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(&f.rule),
                json_str(&f.file),
                f.line,
                json_str(&f.message)
            );
        }
        s.push_str(if self.findings.is_empty() { "],\n" } else { "\n  ],\n" });
        for (key, list) in [("allows", &self.allows), ("unused_allows", &self.unused_allows)] {
            let _ = write!(s, "  \"{key}\": [");
            for (i, a) in list.iter().enumerate() {
                let sep = if i == 0 { "\n" } else { ",\n" };
                let _ = write!(
                    s,
                    "{sep}    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"scope\": {}, \"reason\": {}}}",
                    json_str(&a.rule),
                    json_str(&a.file),
                    a.line,
                    json_str(if a.module_level { "module" } else { "line" }),
                    json_str(&a.reason)
                );
            }
            s.push_str(if list.is_empty() { "],\n" } else { "\n  ],\n" });
        }
        s.push_str("  \"stats\": {\"findings\": {");
        push_counter_map(&mut s, &self.stats.findings_per_rule);
        s.push_str("}, \"allows\": {");
        push_counter_map(&mut s, &self.stats.allows_per_rule);
        s.push_str("}}\n}\n");
        s
    }

    /// Human-readable report. `with_stats` adds the per-rule counter table.
    pub fn render_human(&self, with_stats: bool) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "corleone-lint: scanned {} files, {} tokens",
            self.stats.files_scanned, self.stats.tokens
        );
        if with_stats {
            let _ = writeln!(s, "  {:<4} {:<26} {:>8} {:>7}", "rule", "name", "findings", "allows");
            for code in RULES.iter().copied().chain([ANNOTATION_RULE]) {
                let _ = writeln!(
                    s,
                    "  {:<4} {:<26} {:>8} {:>7}",
                    code,
                    rule_name(code),
                    self.stats.findings_per_rule.get(code).copied().unwrap_or(0),
                    self.stats.allows_per_rule.get(code).copied().unwrap_or(0),
                );
            }
        }
        if !self.allows.is_empty() {
            let _ = writeln!(s, "allow-annotation inventory ({}):", self.allows.len());
            for a in &self.allows {
                let scope = if a.module_level { " [module]" } else { "" };
                let _ = writeln!(s, "  {} {}:{}{} — {}", a.rule, a.file, a.line, scope, a.reason);
            }
        }
        for a in &self.unused_allows {
            let _ = writeln!(
                s,
                "warning: unused allow {} at {}:{} — {}",
                a.rule, a.file, a.line, a.reason
            );
        }
        if self.findings.is_empty() {
            let _ = writeln!(s, "OK: no un-annotated findings");
        } else {
            for f in &self.findings {
                let _ = writeln!(s, "{}: [{}/{}] {}", fileline(f), f.rule, rule_name(&f.rule), f.message);
            }
            let _ = writeln!(s, "FAIL: {} un-annotated finding(s)", self.findings.len());
        }
        s
    }
}

fn fileline(f: &Finding) -> String {
    format!("{}:{}", f.file, f.line)
}

fn push_counter_map(s: &mut String, m: &BTreeMap<String, usize>) {
    for (i, (k, v)) in m.iter().enumerate() {
        let sep = if i == 0 { "" } else { ", " };
        let _ = write!(s, "{sep}{}: {v}", json_str(k));
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Per-file lint result, exposed for the fixture self-tests.
#[derive(Debug, Default)]
pub struct FileOutcome {
    pub findings: Vec<Finding>,
    pub allows: Vec<AllowRecord>,
    pub unused_allows: Vec<AllowRecord>,
    pub tokens: u64,
    pub has_unsafe: bool,
    pub has_forbid_unsafe: bool,
    /// Module-level allow rule codes (for the crate-level D5 check).
    pub module_allows: Vec<String>,
}

/// Lint one file's source. `rel_path` is workspace-relative (used in
/// diagnostics and for the `src/bin/` exemption); `crate_name` is the
/// `crates/<name>` directory name the file belongs to.
pub fn lint_file(rel_path: &str, crate_name: &str, src: &str) -> FileOutcome {
    let lexed = lexer::lex(src);
    let annotations = rules::parse_annotations(&lexed.comments);
    let skip = rules::test_ranges(&lexed.toks);
    let is_bin = rel_path.contains("/src/bin/") || rel_path.ends_with("/main.rs");

    let mut raw: Vec<RawFinding> = Vec::new();
    raw.extend(rules::d1(&lexed.toks));
    if D2_DENY_CRATES.contains(&crate_name) {
        raw.extend(rules::d2(&lexed.toks, &skip));
        raw.extend(rules::d7(&lexed.toks, &skip));
    }
    if crate_name != "bench" {
        raw.extend(rules::d3(&lexed.toks, &skip));
        if !is_bin {
            raw.extend(rules::d4(&lexed.toks, &skip));
        }
    }
    raw.extend(rules::d5_unsafe_blocks(&lexed));
    if crate_name != "exec" {
        raw.extend(rules::d6(&lexed.toks));
    }

    let mut out = FileOutcome {
        tokens: lexed.toks.len() as u64,
        has_unsafe: rules::has_unsafe(&lexed.toks),
        has_forbid_unsafe: rules::has_forbid_unsafe(&lexed.toks),
        ..FileOutcome::default()
    };

    // Malformed annotations are findings themselves and suppress nothing.
    let live: Vec<&Annotation> = annotations
        .iter()
        .filter(|a| {
            if let Some(why) = &a.malformed {
                out.findings.push(Finding {
                    rule: ANNOTATION_RULE.to_string(),
                    file: rel_path.to_string(),
                    line: a.line,
                    message: format!("malformed lint:allow annotation: {why}"),
                });
                false
            } else {
                true
            }
        })
        .collect();
    out.module_allows = live
        .iter()
        .filter(|a| a.module_level)
        .map(|a| a.rule.clone())
        .collect();

    let mut used = vec![false; live.len()];
    for f in raw {
        let suppressed = live.iter().enumerate().find(|(_, a)| {
            a.rule == f.rule && (a.module_level || a.line == f.line)
        });
        match suppressed {
            Some((idx, _)) => used[idx] = true,
            None => out.findings.push(Finding {
                rule: f.rule.to_string(),
                file: rel_path.to_string(),
                line: f.line,
                message: f.message,
            }),
        }
    }
    for (idx, a) in live.iter().enumerate() {
        let rec = AllowRecord {
            rule: a.rule.clone(),
            file: rel_path.to_string(),
            line: a.line,
            reason: a.reason.clone(),
            module_level: a.module_level,
        };
        if used[idx] {
            out.allows.push(rec);
        } else {
            out.unused_allows.push(rec);
        }
    }
    out
}

/// Recursively collect `.rs` files under `dir`, sorted by path so the
/// report order (and the JSON bytes) are deterministic.
fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Lint every `crates/*/src/**/*.rs` file under `root` (the workspace
/// root). Fixture corpora (`crates/lint/tests/fixtures`) are outside the
/// scanned `src` trees and therefore never scanned.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();

    let mut report = Report::default();
    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        let src_dir = crate_dir.join("src");
        if !src_dir.is_dir() {
            continue;
        }
        let mut files = Vec::new();
        walk_rs(&src_dir, &mut files)?;

        let mut crate_has_unsafe = false;
        let mut lib_rs: Option<(String, bool, Vec<String>)> = None;
        for path in files {
            let src = fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let outcome = lint_file(&rel, &crate_name, &src);
            report.stats.files_scanned += 1;
            report.stats.tokens += outcome.tokens;
            crate_has_unsafe |= outcome.has_unsafe;
            if path.file_name().is_some_and(|n| n == "lib.rs")
                && path.parent().is_some_and(|p| p == src_dir)
            {
                lib_rs = Some((
                    rel.clone(),
                    outcome.has_forbid_unsafe,
                    outcome.module_allows.clone(),
                ));
            }
            report.findings.extend(outcome.findings);
            report.allows.extend(outcome.allows);
            report.unused_allows.extend(outcome.unused_allows);
        }
        // Crate-level D5: an unsafe-free crate must let the compiler hold
        // the line with `#![forbid(unsafe_code)]`.
        if let Some((lib_rel, has_forbid, module_allows)) = lib_rs {
            if !crate_has_unsafe && !has_forbid && !module_allows.iter().any(|r| r == "D5") {
                report.findings.push(Finding {
                    rule: "D5".to_string(),
                    file: lib_rel,
                    line: 1,
                    message: format!(
                        "crate `{crate_name}` is unsafe-free but lib.rs lacks \
                         `#![forbid(unsafe_code)]`"
                    ),
                });
            }
        }
    }
    report.finalize();
    Ok(report)
}

/// Find the workspace root: ascend from `start` until a directory holding
/// both `Cargo.toml` and a `crates/` subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut cur = Some(start.to_path_buf());
    while let Some(dir) = cur {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        cur = dir.parent().map(|p| p.to_path_buf());
    }
    None
}
