//! A small hand-rolled Rust lexer, just rich enough for `corleone-lint`.
//!
//! The only hard requirement the rules place on it is *containment*: a rule
//! pattern must never fire inside a string literal, raw string, char
//! literal, or comment. So the lexer's job is to classify every byte of the
//! source into exactly one of {token, comment, literal, whitespace} with the
//! correct line number, not to produce a spec-complete token stream. Numeric
//! literals, multi-char operators, and shebang handling are all simplified
//! (operators come out as runs of single-char `Punct` tokens, which the
//! rules match as sequences, e.g. `::` is `Punct(':') Punct(':')`).

/// Token classification. `Literal` covers string/raw-string/byte-string/char
/// and numeric literals — the rules only ever need to know "this is opaque
/// literal payload, do not match inside it".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Punct,
    Literal,
    Lifetime,
}

/// One lexed token. `text` borrows from the source.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    pub kind: TokKind,
    pub text: &'a str,
    pub line: u32,
}

impl<'a> Tok<'a> {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// A comment (line or block), kept out of the token stream but retained for
/// the `// lint:allow` annotation grammar and `// SAFETY:` checks.
#[derive(Debug, Clone, Copy)]
pub struct Comment<'a> {
    pub text: &'a str,
    /// Line the comment starts on.
    pub line: u32,
    /// Line the comment ends on (differs from `line` for block comments).
    pub end_line: u32,
}

/// Full lex of one source file.
#[derive(Debug, Default)]
pub struct Lexed<'a> {
    pub toks: Vec<Tok<'a>>,
    pub comments: Vec<Comment<'a>>,
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lex `src` into tokens + comments. Never panics on malformed input: an
/// unterminated literal or comment simply runs to end-of-file.
pub fn lex(src: &str) -> Lexed<'_> {
    let b = src.as_bytes();
    let n = b.len();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push(Comment { text: &src[start..i], line, end_line: line });
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push(Comment { text: &src[start..i], line: start_line, end_line: line });
            }
            b'"' => {
                let start = i;
                let start_line = line;
                let (ni, nl) = scan_quoted(b, i, line);
                i = ni;
                line = nl;
                out.toks.push(Tok { kind: TokKind::Literal, text: &src[start..i], line: start_line });
            }
            b'\'' => {
                // Char literal vs lifetime. `'\...'` is always a char
                // literal; `'x'` (any single char then a quote) is a char
                // literal; otherwise it is a lifetime like `'a` / `'static`.
                if i + 1 < n && b[i + 1] == b'\\' {
                    let start = i;
                    let mut j = i + 2; // skip the escaped char
                    if j < n {
                        j += 1;
                    }
                    // `\u{...}` and multi-char escapes: run to the closing quote.
                    while j < n && b[j] != b'\'' && b[j] != b'\n' {
                        j += 1;
                    }
                    if j < n && b[j] == b'\'' {
                        j += 1;
                    }
                    out.toks.push(Tok { kind: TokKind::Literal, text: &src[start..j], line });
                    i = j;
                } else {
                    let rest = &src[i + 1..];
                    let ch_len = rest.chars().next().map(|c| c.len_utf8()).unwrap_or(0);
                    if ch_len > 0 && i + 1 + ch_len < n && b[i + 1 + ch_len] == b'\'' {
                        let end = i + 2 + ch_len;
                        out.toks.push(Tok { kind: TokKind::Literal, text: &src[i..end], line });
                        i = end;
                    } else {
                        // Lifetime.
                        let start = i;
                        let mut j = i + 1;
                        while j < n && is_ident_cont(b[j]) {
                            j += 1;
                        }
                        out.toks.push(Tok { kind: TokKind::Lifetime, text: &src[start..j], line });
                        i = j;
                    }
                }
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < n && is_ident_cont(b[i]) {
                    i += 1;
                }
                let text = &src[start..i];
                // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#.
                let raw = matches!(text, "r" | "br") && i < n && (b[i] == b'"' || b[i] == b'#');
                let byte_str = text == "b" && i < n && b[i] == b'"';
                if raw {
                    let mut hashes = 0usize;
                    let mut j = i;
                    while j < n && b[j] == b'#' {
                        hashes += 1;
                        j += 1;
                    }
                    if j < n && b[j] == b'"' {
                        let start_line = line;
                        j += 1;
                        // Scan to `"` followed by `hashes` hash marks.
                        'scan: while j < n {
                            if b[j] == b'\n' {
                                line += 1;
                                j += 1;
                            } else if b[j] == b'"' {
                                let mut k = j + 1;
                                let mut seen = 0usize;
                                while k < n && seen < hashes && b[k] == b'#' {
                                    seen += 1;
                                    k += 1;
                                }
                                if seen == hashes {
                                    j = k;
                                    break 'scan;
                                }
                                j += 1;
                            } else {
                                j += 1;
                            }
                        }
                        out.toks.push(Tok {
                            kind: TokKind::Literal,
                            text: &src[start..j],
                            line: start_line,
                        });
                        i = j;
                    } else if text == "r"
                        && hashes == 1
                        && j < n
                        && is_ident_start(b[j])
                    {
                        // `r#ident` raw identifier: one Ident token covering
                        // the whole `r#name` spelling. Keeping the `r#`
                        // prefix in the text means keyword raw identifiers
                        // (`r#struct`, `r#use`) can never be mistaken for
                        // the keyword by token-pattern rules.
                        let id_start = start;
                        while j < n && is_ident_cont(b[j]) {
                            j += 1;
                        }
                        out.toks.push(Tok { kind: TokKind::Ident, text: &src[id_start..j], line });
                        i = j;
                    } else {
                        // `r#` / `br#` not opening a raw string or raw
                        // identifier: keep the prefix as an ident and let
                        // the hashes lex as puncts.
                        out.toks.push(Tok { kind: TokKind::Ident, text, line });
                    }
                } else if byte_str {
                    let start_line = line;
                    let (ni, nl) = scan_quoted(b, i, line);
                    i = ni;
                    line = nl;
                    out.toks.push(Tok {
                        kind: TokKind::Literal,
                        text: &src[start..i],
                        line: start_line,
                    });
                } else {
                    out.toks.push(Tok { kind: TokKind::Ident, text, line });
                }
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                while i < n && (is_ident_cont(b[i]) || (b[i] == b'.' && i + 1 < n && b[i + 1].is_ascii_digit())) {
                    i += 1;
                }
                out.toks.push(Tok { kind: TokKind::Literal, text: &src[start..i], line });
            }
            _ => {
                // Single-byte punct; multi-byte (non-ASCII) bytes outside
                // literals are not valid Rust, but consume them safely.
                let ch_len = src[i..].chars().next().map(|c| c.len_utf8()).unwrap_or(1);
                out.toks.push(Tok { kind: TokKind::Punct, text: &src[i..i + ch_len], line });
                i += ch_len;
            }
        }
    }
    out
}

/// Scan a `"`-delimited string starting at `b[i] == b'"'` (or a `b"` byte
/// string with `i` at the quote). Returns (index past the closing quote,
/// updated line). Handles `\"` and `\\` escapes and embedded newlines.
fn scan_quoted(b: &[u8], mut i: usize, mut line: u32) -> (usize, u32) {
    debug_assert_eq!(b[i], b'"');
    i += 1;
    let n = b.len();
    while i < n {
        match b[i] {
            b'\\' => i = (i + 2).min(n),
            b'"' => {
                i += 1;
                break;
            }
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (i, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        lex(src)
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r###"
// partial_cmp in a comment
let s = "partial_cmp in a string";
let r = r#"thread_rng in a raw "quoted" string"#;
/* block comment with unwrap() */
let real = total_cmp;
"###;
        let ids = idents(src);
        assert!(!ids.contains(&"partial_cmp"));
        assert!(!ids.contains(&"thread_rng"));
        assert!(!ids.contains(&"unwrap"));
        assert!(ids.contains(&"total_cmp"));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let nl = '\\n'; }";
        let lexed = lex(src);
        let lifetimes: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .map(|t| t.text)
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let lits: Vec<&str> = lexed
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Literal)
            .map(|t| t.text)
            .collect();
        assert_eq!(lits, vec!["'x'", "'\\n'"]);
    }

    #[test]
    fn line_numbers_survive_multiline_literals() {
        let src = "let a = \"line\n1\n2\";\nlet b = 1;";
        let lexed = lex(src);
        let b_tok = lexed.toks.iter().find(|t| t.is_ident("b")).expect("ident b");
        assert_eq!(b_tok.line, 4);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner unwrap() */ still comment */ let x = 1;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let", "x"]);
    }

    #[test]
    fn deeply_nested_block_comments_stay_opaque() {
        // Two levels of nesting plus trailing code: everything between the
        // outermost delimiters is one comment, and tokens resume after it.
        let src = "/* a /* b /* partial_cmp */ thread_rng */ unwrap() */ let tail = 1;";
        assert_eq!(idents(src), vec!["let", "tail"]);
        // `/*/` opens without closing (the `*` is shared), as in rustc.
        let src2 = "/*/ unwrap() */ let after = 2;";
        assert_eq!(idents(src2), vec!["let", "after"]);
    }

    #[test]
    fn raw_strings_with_multiple_hashes() {
        // A ≥2-hash raw string may contain shorter `"#` terminator
        // lookalikes; only the full-width close ends the literal.
        let src = r####"let a = r##"unwrap() "# partial_cmp"##; let ok1 = 1;"####;
        assert_eq!(idents(src), vec!["let", "a", "let", "ok1"]);
        let src3 = "let b = r###\"thread_rng \"## x\"###; let ok2 = 2;";
        assert_eq!(idents(src3), vec!["let", "b", "let", "ok2"]);
        // Byte raw strings take the same path.
        let srcb = "let c = br##\"from_entropy \"# y\"##; let ok3 = 3;";
        assert_eq!(idents(srcb), vec!["let", "c", "let", "ok3"]);
        // Line numbers survive multi-line ≥2-hash raw strings.
        let srcl = "let a = r##\"l1\nl2\nl3\"##;\nlet marker = 1;";
        let lexed = lex(srcl);
        let m = lexed.toks.iter().find(|t| t.is_ident("marker")).expect("marker");
        assert_eq!(m.line, 4);
    }

    #[test]
    fn raw_identifiers_are_single_tokens() {
        // `r#struct` must not leak a bare `struct` ident into the stream
        // (it would corrupt the resolver's struct parser), and `r#unwrap`
        // must not match rules targeting `unwrap`.
        let src = "let r#struct = 1; let y = r#unwrap; fn r#fn() {}";
        let ids = idents(src);
        assert!(ids.contains(&"r#struct"));
        assert!(ids.contains(&"r#unwrap"));
        assert!(ids.contains(&"r#fn"));
        assert!(!ids.contains(&"struct"));
        assert!(!ids.contains(&"unwrap"));
    }
}
