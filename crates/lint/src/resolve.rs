//! Phase 1 of the semantic lint: a workspace-wide symbol graph built from
//! the token streams of every scanned file.
//!
//! The lexical rules of PR 5 kept one name-based symbol table per file,
//! which both misses cross-file hazards (a `HashMap` field defined in
//! crate A, iterated in crate B) and false-positives on name collisions
//! (a snapshot's sorted `known_labels` Vec sharing its name with the
//! engine's working `HashMap`). This module replaces that with *resolved
//! types*:
//!
//! * [`TypeRef`] — a parsed type shape (`Vec<(PairKey, bool)>` becomes
//!   `Vec((tuple)(PairKey, bool))`), with references, `mut`, and
//!   lifetimes stripped and per-file `use .. as` aliases applied;
//! * [`TypeDef`] — every `struct`/`enum` in the workspace, with field
//!   names, resolved field types, and serde field attributes;
//! * [`FileFacts`] — per-file context: local `let`/param/field type
//!   ascriptions, `= Type::new()`-style init inference,
//!   `collect::<T>()` turbofish bindings, `impl` block ranges (for
//!   `self.field` resolution), and the closure argument of every
//!   `exec::par_map`-family call site (for the D8 parallel-boundary
//!   rule);
//! * [`Workspace`] — the merged graph, plus the set of types carrying a
//!   hand-written `impl Serialize for ..` (for the D9 snapshot rule);
//! * [`Resolver`] — phase-2 queries: resolve a dotted receiver chain
//!   (`self.entries`, `snap.known_labels`, `p.ticks`) to a [`TypeRef`].
//!
//! Everything here is a *heuristic over tokens*, not a type checker: the
//! resolver answers `None` whenever a chain passes through a call, an
//! index, or an unknown name, and the rules treat `None` as "do not
//! fire". The failure mode is a missed finding, never a false one — the
//! right bias for a lint whose waiver inventory is itself budgeted.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{Tok, TokKind};

/// The `exec` fan-out primitives whose closure argument crosses a
/// parallel boundary (rule D8).
pub const PAR_FNS: [&str; 3] = ["par_map", "indexed_par_map", "par_map_seeded"];

/// A parsed type shape: last path segment (alias-resolved) plus generic
/// arguments. References, `mut`, and lifetimes are stripped; tuples get
/// the pseudo-head `(tuple)` and arrays/slices `[array]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeRef {
    pub head: String,
    pub args: Vec<TypeRef>,
}

impl TypeRef {
    pub fn leaf(head: &str) -> TypeRef {
        TypeRef { head: head.to_string(), args: Vec::new() }
    }

    /// Does this type, or any generic argument at any depth, have a head
    /// satisfying `pred`?
    pub fn contains_head(&self, pred: &dyn Fn(&str) -> bool) -> bool {
        pred(&self.head) || self.args.iter().any(|a| a.contains_head(pred))
    }

    /// Visit this type and every nested argument.
    pub fn walk(&self, f: &mut dyn FnMut(&TypeRef)) {
        f(self);
        for a in &self.args {
            a.walk(f);
        }
    }
}

/// Heads that mean "hash-ordered collection" for D2/D8.
pub fn is_map_head(h: &str) -> bool {
    h == "HashMap" || h == "HashSet"
}

/// Heads that mean "IEEE float whose accumulation order matters" for D8.
pub fn is_float_head(h: &str) -> bool {
    h == "f64" || h == "f32"
}

/// One struct field (or enum variant payload) with its resolved type and
/// the serde attributes the D9 snapshot rule inspects.
#[derive(Debug, Clone)]
pub struct FieldDef {
    pub name: String,
    pub line: u32,
    pub ty: TypeRef,
    /// `#[serde(skip)]` / `skip_serializing` / `skip_deserializing`.
    pub serde_skip: bool,
    /// `#[serde(default)]` (alone: the wire may omit the field).
    pub serde_default: bool,
}

/// One `struct` or `enum` definition.
#[derive(Debug, Clone)]
pub struct TypeDef {
    pub name: String,
    pub file: String,
    pub crate_name: String,
    pub line: u32,
    pub is_enum: bool,
    pub fields: Vec<FieldDef>,
}

/// Token range of one `impl` block, for `self.field` resolution.
#[derive(Debug, Clone)]
pub struct ImplBlock {
    /// Head of the implementing type (`impl Trait for X` resolves to `X`).
    pub target: String,
    /// Token index range `[start, end]` of the block, braces included.
    pub start: usize,
    pub end: usize,
}

/// One `par_map`-family call site and its closure argument.
#[derive(Debug, Clone)]
pub struct ParClosure {
    pub callee: String,
    pub line: u32,
    /// Closure parameter names (first ident of each `,`-separated param).
    pub params: Vec<String>,
    /// Token index range `[start, end]` of the closure body (from the
    /// token after the closing `|` to the call's closing parenthesis).
    pub body: (usize, usize),
}

/// Per-file phase-1 facts.
#[derive(Debug, Default)]
pub struct FileFacts {
    /// `use path::Orig as Alias` → `Alias ↦ Orig`, applied when parsing
    /// types in this file.
    pub aliases: BTreeMap<String, String>,
    /// Name → type, from ascriptions (`let x: T`, params, fields in
    /// scope), `= Type::new()` init inference, float-literal inits, and
    /// `collect::<T>()` turbofish bindings. First ascription wins.
    pub locals: BTreeMap<String, TypeRef>,
    /// `(name, token index)` of every simple `let [mut] name` binding —
    /// lets D8 tell closure-local accumulators from captured ones.
    pub let_sites: Vec<(String, usize)>,
    pub impls: Vec<ImplBlock>,
    pub par_closures: Vec<ParClosure>,
}

/// The merged workspace graph. Type names are keyed by bare name; when
/// two crates define the same name, field queries answer only where all
/// definitions agree (conservative: ambiguity resolves to "unknown").
#[derive(Debug, Default)]
pub struct Workspace {
    pub types: BTreeMap<String, Vec<TypeDef>>,
    /// Types with a hand-written `impl [serde::]Serialize/Deserialize`.
    pub manual_serde: BTreeSet<String>,
}

impl Workspace {
    pub fn add_types(&mut self, defs: Vec<TypeDef>) {
        for d in defs {
            self.types.entry(d.name.clone()).or_default().push(d);
        }
    }

    /// The type of field `field` on the type named `head`, if `head` is
    /// known and every same-named definition agrees on the field's head.
    pub fn field_type(&self, head: &str, field: &str) -> Option<&TypeRef> {
        let defs = self.types.get(head)?;
        let mut found: Option<&TypeRef> = None;
        for d in defs {
            for f in &d.fields {
                if f.name == field {
                    match found {
                        None => found = Some(&f.ty),
                        Some(prev) if prev.head == f.ty.head => {}
                        Some(_) => return None, // ambiguous across defs
                    }
                }
            }
        }
        found
    }

    /// Field lookup by name alone, for chains whose leading ident is not
    /// resolvable (`snap.known_labels` under a pattern binding): answers
    /// only when every struct in the workspace that has a field of this
    /// name gives it the same type head.
    pub fn unique_field_type(&self, field: &str) -> Option<&TypeRef> {
        let mut found: Option<&TypeRef> = None;
        for defs in self.types.values() {
            for d in defs {
                for f in &d.fields {
                    if f.name == field {
                        match found {
                            None => found = Some(&f.ty),
                            Some(prev) if prev.head == f.ty.head => {}
                            Some(_) => return None,
                        }
                    }
                }
            }
        }
        found
    }
}

/// Strip smart-pointer wrappers a field access sees through.
pub fn deref(ty: &TypeRef) -> &TypeRef {
    let mut t = ty;
    while (t.head == "Arc" || t.head == "Box" || t.head == "Rc") && t.args.len() == 1 {
        t = &t.args[0];
    }
    t
}

// ---------------------------------------------------------------------------
// Type parsing
// ---------------------------------------------------------------------------

fn is_upper_start(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_ascii_uppercase())
}

/// Parse a type starting at `toks[i]`. Returns the parsed shape and the
/// index one past it, or `None` when `toks[i]` does not open a type.
pub fn parse_type(toks: &[Tok<'_>], mut i: usize, aliases: &BTreeMap<String, String>) -> Option<(TypeRef, usize)> {
    let n = toks.len();
    // Strip leading `&`, `mut`, `dyn`, and lifetimes.
    while i < n
        && (toks[i].is_punct("&")
            || toks[i].is_ident("mut")
            || toks[i].is_ident("dyn")
            || toks[i].kind == TokKind::Lifetime)
    {
        i += 1;
    }
    if i >= n {
        return None;
    }
    if toks[i].is_punct("(") {
        // Tuple type (or parenthesized type).
        let mut args = Vec::new();
        i += 1;
        let mut guard = 0usize;
        while i < n && !toks[i].is_punct(")") {
            if let Some((t, ni)) = parse_type(toks, i, aliases) {
                args.push(t);
                i = ni;
            } else {
                i += 1;
            }
            if i < n && toks[i].is_punct(",") {
                i += 1;
            }
            guard += 1;
            if guard > 64 {
                return None;
            }
        }
        if i >= n {
            return None;
        }
        return Some((TypeRef { head: "(tuple)".to_string(), args }, i + 1));
    }
    if toks[i].is_punct("[") {
        // Array/slice type `[T]` / `[T; N]`.
        let inner = parse_type(toks, i + 1, aliases);
        let mut depth = 0usize;
        while i < n {
            if toks[i].is_punct("[") {
                depth += 1;
            } else if toks[i].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            i += 1;
        }
        if i >= n {
            return None;
        }
        let args = inner.map(|(t, _)| vec![t]).unwrap_or_default();
        return Some((TypeRef { head: "[array]".to_string(), args }, i + 1));
    }
    if toks[i].kind != TokKind::Ident {
        return None;
    }
    if toks[i].is_ident("fn") || toks[i].is_ident("Fn") || toks[i].is_ident("FnMut") || toks[i].is_ident("FnOnce") {
        // Function type: consume `fn(..)` and an optional `-> T`.
        let mut j = i + 1;
        if j < n && toks[j].is_punct("(") {
            let mut depth = 0usize;
            while j < n {
                if toks[j].is_punct("(") {
                    depth += 1;
                } else if toks[j].is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        if j + 1 < n && toks[j].is_punct("-") && toks[j + 1].is_punct(">") {
            if let Some((_, nj)) = parse_type(toks, j + 2, aliases) {
                j = nj;
            }
        }
        return Some((TypeRef::leaf("fn"), j));
    }
    if toks[i].is_ident("impl") {
        // `impl Trait` in field/ascription position: opaque.
        let mut j = i + 1;
        while j < n && (toks[j].kind == TokKind::Ident || toks[j].is_punct(":")) {
            j += 1;
        }
        return Some((TypeRef::leaf("impl"), j));
    }
    // Path: `a::b::C`, keeping the last segment.
    let mut last = toks[i].text;
    i += 1;
    while i + 2 < n
        && toks[i].is_punct(":")
        && toks[i + 1].is_punct(":")
        && toks[i + 2].kind == TokKind::Ident
    {
        last = toks[i + 2].text;
        i += 3;
    }
    let head = aliases.get(last).cloned().unwrap_or_else(|| last.to_string());
    let mut args = Vec::new();
    if i < n && toks[i].is_punct("<") {
        i += 1;
        let mut guard = 0usize;
        while i < n && !toks[i].is_punct(">") {
            if toks[i].kind == TokKind::Lifetime || toks[i].is_punct(",") {
                i += 1;
                continue;
            }
            if let Some((t, ni)) = parse_type(toks, i, aliases) {
                args.push(t);
                i = ni;
            } else {
                i += 1; // const-generic literal, `=` defaults, etc.
            }
            guard += 1;
            if guard > 64 {
                return None;
            }
        }
        if i >= n {
            return None;
        }
        i += 1; // past `>`
    }
    Some((TypeRef { head, args }, i))
}

// ---------------------------------------------------------------------------
// Phase-1 collection
// ---------------------------------------------------------------------------

fn float_literal_type(text: &str) -> Option<TypeRef> {
    let bytes = text.as_bytes();
    if bytes.first().is_none_or(|b| !b.is_ascii_digit()) {
        return None;
    }
    if text.ends_with("f32") {
        return Some(TypeRef::leaf("f32"));
    }
    if text.ends_with("f64") {
        return Some(TypeRef::leaf("f64"));
    }
    if text.contains('.') && !text.starts_with("0x") {
        return Some(TypeRef::leaf("f64"));
    }
    None
}

/// Collect `use .. as ..` aliases. Grouped imports are handled by pairing
/// the idents around every `as` inside the `use` statement.
fn collect_aliases(toks: &[Tok<'_>], aliases: &mut BTreeMap<String, String>) {
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("use") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        while j < toks.len() && !toks[j].is_punct(";") {
            if toks[j].is_ident("as")
                && j >= 1
                && toks[j - 1].kind == TokKind::Ident
                && j + 1 < toks.len()
                && toks[j + 1].kind == TokKind::Ident
            {
                aliases.insert(toks[j + 1].text.to_string(), toks[j - 1].text.to_string());
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// Find the token index of the brace matching `toks[open]` (which must be
/// `{`). Returns the last token index when unbalanced.
fn matching_brace(toks: &[Tok<'_>], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is_punct("{") {
            depth += 1;
        } else if toks[i].is_punct("}") {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Skip a balanced `<...>` generics list starting at `toks[i] == "<"`.
fn skip_generics(toks: &[Tok<'_>], mut i: usize) -> usize {
    let mut depth = 0usize;
    while i < toks.len() {
        if toks[i].is_punct("<") {
            depth += 1;
        } else if toks[i].is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        } else if toks[i].is_punct("{") || toks[i].is_punct(";") {
            return i; // malformed; bail before the body
        }
        i += 1;
    }
    i
}

/// Serde attribute flags gathered from the `#[..]` attributes directly
/// above a field.
#[derive(Default, Clone, Copy)]
struct SerdeFlags {
    skip: bool,
    default: bool,
}

/// Consume attributes at `toks[i]`, returning serde flags and the index
/// past them.
fn consume_attrs(toks: &[Tok<'_>], mut i: usize) -> (SerdeFlags, usize) {
    let mut flags = SerdeFlags::default();
    while i + 1 < toks.len() && toks[i].is_punct("#") && toks[i + 1].is_punct("[") {
        let mut idents: Vec<&str> = Vec::new();
        let mut depth = 0usize;
        let mut j = i + 1;
        while j < toks.len() {
            if toks[j].is_punct("[") {
                depth += 1;
            } else if toks[j].is_punct("]") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if toks[j].kind == TokKind::Ident {
                idents.push(toks[j].text);
            }
            j += 1;
        }
        if idents.first() == Some(&"serde") {
            if idents.iter().any(|t| {
                matches!(*t, "skip" | "skip_serializing" | "skip_deserializing")
            }) {
                flags.skip = true;
            }
            if idents.contains(&"default") {
                flags.default = true;
            }
        }
        i = j + 1;
    }
    (flags, i)
}

/// Parse the struct/enum definitions in a token stream.
fn collect_typedefs(
    toks: &[Tok<'_>],
    rel: &str,
    crate_name: &str,
    aliases: &BTreeMap<String, String>,
) -> Vec<TypeDef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let is_enum = toks[i].is_ident("enum");
        if !(toks[i].is_ident("struct") || is_enum) {
            i += 1;
            continue;
        }
        // Require an ident name next (rules out `r#struct`-style leaks and
        // `impl Struct` mentions, which never have this shape).
        if i + 1 >= toks.len() || toks[i + 1].kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = toks[i + 1].text.to_string();
        let line = toks[i + 1].line;
        let mut j = i + 2;
        if j < toks.len() && toks[j].is_punct("<") {
            j = skip_generics(toks, j);
        }
        // Tuple struct: fields are the parenthesized types.
        if !is_enum && j < toks.len() && toks[j].is_punct("(") {
            let mut fields = Vec::new();
            let mut k = j + 1;
            let mut idx = 0usize;
            let mut guard = 0usize;
            while k < toks.len() && !toks[k].is_punct(")") {
                // Skip visibility and attributes.
                let (_, nk) = consume_attrs(toks, k);
                k = nk;
                if k < toks.len() && toks[k].is_ident("pub") {
                    k += 1;
                    if k < toks.len() && toks[k].is_punct("(") {
                        let mut d = 0usize;
                        while k < toks.len() {
                            if toks[k].is_punct("(") {
                                d += 1;
                            } else if toks[k].is_punct(")") {
                                d -= 1;
                                if d == 0 {
                                    k += 1;
                                    break;
                                }
                            }
                            k += 1;
                        }
                    }
                }
                if let Some((ty, nk)) = parse_type(toks, k, aliases) {
                    fields.push(FieldDef {
                        name: idx.to_string(),
                        line: toks[k.min(toks.len() - 1)].line,
                        ty,
                        serde_skip: false,
                        serde_default: false,
                    });
                    idx += 1;
                    k = nk;
                } else {
                    k += 1;
                }
                if k < toks.len() && toks[k].is_punct(",") {
                    k += 1;
                }
                guard += 1;
                if guard > 128 {
                    break;
                }
            }
            out.push(TypeDef {
                name,
                file: rel.to_string(),
                crate_name: crate_name.to_string(),
                line,
                is_enum: false,
                fields,
            });
            i = k + 1;
            continue;
        }
        // Skip a `where` clause.
        while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
            j += 1;
        }
        if j >= toks.len() || toks[j].is_punct(";") {
            // Unit struct.
            out.push(TypeDef {
                name,
                file: rel.to_string(),
                crate_name: crate_name.to_string(),
                line,
                is_enum,
                fields: Vec::new(),
            });
            i = j + 1;
            continue;
        }
        let close = matching_brace(toks, j);
        let mut fields = Vec::new();
        let mut k = j + 1;
        while k < close {
            let (flags, nk) = consume_attrs(toks, k);
            k = nk;
            if k >= close {
                break;
            }
            // Skip visibility (attrs lex *before* `pub`, so the flags
            // gathered above must survive this step).
            if toks[k].is_ident("pub") {
                k += 1;
                if k < close && toks[k].is_punct("(") {
                    let mut d = 0usize;
                    while k < close {
                        if toks[k].is_punct("(") {
                            d += 1;
                        } else if toks[k].is_punct(")") {
                            d -= 1;
                            if d == 0 {
                                k += 1;
                                break;
                            }
                        }
                        k += 1;
                    }
                }
            }
            if k < close && toks[k].kind == TokKind::Ident {
                let fname = toks[k].text;
                let fline = toks[k].line;
                if is_enum {
                    // Variant: `Name`, `Name(T, ..)`, `Name { f: T, .. }`,
                    // or `Name = disc`.
                    let mut m = k + 1;
                    if m < close && toks[m].is_punct("(") {
                        let mut d = 0usize;
                        let open = m;
                        while m < close {
                            if toks[m].is_punct("(") {
                                d += 1;
                            } else if toks[m].is_punct(")") {
                                d -= 1;
                                if d == 0 {
                                    break;
                                }
                            }
                            m += 1;
                        }
                        // Payload types, comma-separated.
                        let mut p = open + 1;
                        let mut guard = 0usize;
                        while p < m {
                            if let Some((ty, np)) = parse_type(toks, p, aliases) {
                                fields.push(FieldDef {
                                    name: fname.to_string(),
                                    line: fline,
                                    ty,
                                    serde_skip: flags.skip,
                                    serde_default: flags.default,
                                });
                                p = np;
                            } else {
                                p += 1;
                            }
                            if p < m && toks[p].is_punct(",") {
                                p += 1;
                            }
                            guard += 1;
                            if guard > 64 {
                                break;
                            }
                        }
                        m += 1;
                    } else if m < close && toks[m].is_punct("{") {
                        let vclose = matching_brace(toks, m);
                        let mut p = m + 1;
                        while p < vclose {
                            let (vflags, np) = consume_attrs(toks, p);
                            p = np;
                            if p + 1 < vclose
                                && toks[p].kind == TokKind::Ident
                                && toks[p + 1].is_punct(":")
                            {
                                if let Some((ty, np2)) = parse_type(toks, p + 2, aliases) {
                                    fields.push(FieldDef {
                                        name: format!("{fname}.{}", toks[p].text),
                                        line: toks[p].line,
                                        ty,
                                        serde_skip: vflags.skip,
                                        serde_default: vflags.default,
                                    });
                                    p = np2;
                                    continue;
                                }
                            }
                            p += 1;
                        }
                        m = vclose + 1;
                    } else {
                        // Bare variant or discriminant: skip to `,`.
                        while m < close && !toks[m].is_punct(",") {
                            m += 1;
                        }
                    }
                    k = m;
                    if k < close && toks[k].is_punct(",") {
                        k += 1;
                    }
                    continue;
                }
                // Struct field: `name : Type`.
                if k + 1 < close && toks[k + 1].is_punct(":") && !toks[k + 2].is_punct(":") {
                    if let Some((ty, nk2)) = parse_type(toks, k + 2, aliases) {
                        fields.push(FieldDef {
                            name: fname.to_string(),
                            line: fline,
                            ty,
                            serde_skip: flags.skip,
                            serde_default: flags.default,
                        });
                        k = nk2;
                        // Skip to the separating comma (parse_type may
                        // under-consume exotic types).
                        let mut d = 0isize;
                        while k < close {
                            if toks[k].is_punct(",") && d == 0 {
                                k += 1;
                                break;
                            }
                            if toks[k].is_punct("(") || toks[k].is_punct("[") || toks[k].is_punct("<") {
                                d += 1;
                            } else if toks[k].is_punct(")") || toks[k].is_punct("]") || toks[k].is_punct(">") {
                                d -= 1;
                            }
                            k += 1;
                        }
                        continue;
                    }
                }
            }
            k += 1;
        }
        out.push(TypeDef {
            name,
            file: rel.to_string(),
            crate_name: crate_name.to_string(),
            line,
            is_enum,
            fields,
        });
        i = close + 1;
    }
    out
}

/// Collect `impl` block ranges and hand-written serde impl targets.
fn collect_impls(
    toks: &[Tok<'_>],
    aliases: &BTreeMap<String, String>,
    impls: &mut Vec<ImplBlock>,
    manual_serde: &mut Vec<String>,
) {
    let mut i = 0usize;
    while i < toks.len() {
        if !toks[i].is_ident("impl") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < toks.len() && toks[j].is_punct("<") {
            j = skip_generics(toks, j);
        }
        let Some((first, nj)) = parse_type(toks, j, aliases) else {
            i = j + 1;
            continue;
        };
        j = nj;
        let mut target = first.clone();
        let mut is_trait_impl = false;
        if j < toks.len() && toks[j].is_ident("for") {
            is_trait_impl = true;
            if let Some((t, nj2)) = parse_type(toks, j + 1, aliases) {
                target = t;
                j = nj2;
            }
        }
        // Skip a `where` clause to the body.
        while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
            j += 1;
        }
        if j >= toks.len() || toks[j].is_punct(";") {
            i = j + 1;
            continue;
        }
        let close = matching_brace(toks, j);
        if is_trait_impl && matches!(first.head.as_str(), "Serialize" | "Deserialize") {
            manual_serde.push(target.head.clone());
        }
        impls.push(ImplBlock { target: target.head, start: i, end: close });
        i = j + 1; // descend into the body (nested impls are rare but legal)
    }
}

/// Collect the closure argument of every `par_map`-family call.
fn collect_par_closures(toks: &[Tok<'_>], out: &mut Vec<ParClosure>) {
    let n = toks.len();
    for i in 0..n {
        if toks[i].kind != TokKind::Ident || !PAR_FNS.contains(&toks[i].text) {
            continue;
        }
        if i + 1 >= n || !toks[i + 1].is_punct("(") {
            continue;
        }
        // Call range.
        let mut depth = 0usize;
        let mut close = i + 1;
        while close < n {
            if toks[close].is_punct("(") {
                depth += 1;
            } else if toks[close].is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            close += 1;
        }
        // First `|` inside the call opens the closure's parameter list.
        let mut p0 = i + 2;
        while p0 < close && !toks[p0].is_punct("|") {
            p0 += 1;
        }
        if p0 >= close {
            continue;
        }
        let mut p1 = p0 + 1;
        while p1 < close && !toks[p1].is_punct("|") {
            p1 += 1;
        }
        if p1 >= close {
            continue;
        }
        // Parameter names: first ident of each comma-separated group.
        let mut params = Vec::new();
        let mut expect = true;
        for t in &toks[p0 + 1..p1] {
            if t.is_punct(",") {
                expect = true;
            } else if expect && t.kind == TokKind::Ident && !t.is_ident("mut") {
                params.push(t.text.to_string());
                expect = false;
            }
        }
        if p1 + 1 > close {
            continue;
        }
        out.push(ParClosure {
            callee: toks[i].text.to_string(),
            line: toks[i].line,
            params,
            body: (p1 + 1, close),
        });
    }
}

/// Token ranges covered by `struct`/`enum` bodies — field ascriptions in
/// there must not masquerade as local variable facts.
fn typedef_ranges(toks: &[Tok<'_>]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if (toks[i].is_ident("struct") || toks[i].is_ident("enum"))
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
        {
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct("{") && !toks[j].is_punct(";") {
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct("{") {
                let close = matching_brace(toks, j);
                out.push((i, close));
                i = close + 1;
                continue;
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// Collect local name → type facts: ascriptions, init inference,
/// float-literal lets, and `collect::<T>()` turbofish bindings.
fn collect_locals(toks: &[Tok<'_>], aliases: &BTreeMap<String, String>, facts: &mut FileFacts) {
    let n = toks.len();
    let skip_ranges = typedef_ranges(toks);
    for i in 0..n {
        if toks[i].kind != TokKind::Ident {
            continue;
        }
        if skip_ranges.iter().any(|&(s, e)| s <= i && i <= e) {
            continue;
        }
        // `let [mut] name` sites (for closure-locality checks).
        if toks[i].is_ident("let") {
            let mut m = i + 1;
            if m < n && toks[m].is_ident("mut") {
                m += 1;
            }
            if m < n && toks[m].kind == TokKind::Ident {
                facts.let_sites.push((toks[m].text.to_string(), m));
            }
        }
        // `name : Type` ascription (not `name ::`, not path tail `::name :`).
        if i + 2 < n
            && toks[i + 1].is_punct(":")
            && !toks[i + 2].is_punct(":")
            && (i == 0 || !toks[i - 1].is_punct(":"))
        {
            if let Some((ty, _)) = parse_type(toks, i + 2, aliases) {
                facts.locals.entry(toks[i].text.to_string()).or_insert(ty);
            }
        }
        // `name = <init>` inference: `Type::new()`-style paths, `Type {`
        // struct literals, and float literals.
        if i + 2 < n
            && toks[i + 1].is_punct("=")
            && !toks[i + 2].is_punct("=")
            && (i == 0
                || !matches!(toks[i - 1].text, "=" | "<" | ">" | "!" | "+" | "-" | "*" | "/" | ":"))
        {
            let j = i + 2;
            if toks[j].kind == TokKind::Literal {
                if let Some(ty) = float_literal_type(toks[j].text) {
                    facts.locals.entry(toks[i].text.to_string()).or_insert(ty);
                }
            } else if toks[j].kind == TokKind::Ident {
                // Walk the path after `=`; remember the last
                // uppercase-initial segment (the type constructor).
                let mut k = j;
                let mut ty_head: Option<&str> = None;
                while k < n && toks[k].kind == TokKind::Ident {
                    if is_upper_start(toks[k].text) {
                        ty_head = Some(toks[k].text);
                    }
                    if k + 2 < n && toks[k + 1].is_punct(":") && toks[k + 2].is_punct(":") {
                        k += 3;
                        // Skip a turbofish between segments.
                        if k < n && toks[k].is_punct("<") {
                            k = skip_generics(toks, k);
                            if k + 1 < n && toks[k].is_punct(":") && toks[k + 1].is_punct(":") {
                                k += 2;
                            }
                        }
                    } else {
                        break;
                    }
                }
                if let Some(h) = ty_head {
                    let head = aliases.get(h).cloned().unwrap_or_else(|| h.to_string());
                    facts
                        .locals
                        .entry(toks[i].text.to_string())
                        .or_insert(TypeRef::leaf(&head));
                }
            }
        }
        // `.. .collect::<T>()` — back-walk to the `let` this statement binds.
        if toks[i].is_ident("collect")
            && i + 4 < n
            && toks[i + 1].is_punct(":")
            && toks[i + 2].is_punct(":")
            && toks[i + 3].is_punct("<")
        {
            if let Some((ty, _)) = parse_type(toks, i + 4, aliases) {
                let lo = i.saturating_sub(64);
                for k in (lo..i).rev() {
                    if toks[k].is_punct(";") {
                        break;
                    }
                    if toks[k].is_ident("let") {
                        let mut m = k + 1;
                        if m < n && toks[m].is_ident("mut") {
                            m += 1;
                        }
                        if m < n && toks[m].kind == TokKind::Ident {
                            facts
                                .locals
                                .entry(toks[m].text.to_string())
                                .or_insert(ty);
                        }
                        break;
                    }
                }
            }
        }
    }
}

/// Run the full phase-1 collection over one file's token stream.
pub fn collect(
    rel: &str,
    crate_name: &str,
    toks: &[Tok<'_>],
) -> (FileFacts, Vec<TypeDef>, Vec<String>) {
    let mut facts = FileFacts::default();
    collect_aliases(toks, &mut facts.aliases);
    let typedefs = collect_typedefs(toks, rel, crate_name, &facts.aliases);
    let mut manual_serde = Vec::new();
    let aliases = facts.aliases.clone();
    collect_impls(toks, &aliases, &mut facts.impls, &mut manual_serde);
    collect_par_closures(toks, &mut facts.par_closures);
    collect_locals(toks, &aliases, &mut facts);
    (facts, typedefs, manual_serde)
}

// ---------------------------------------------------------------------------
// Phase-2 resolution
// ---------------------------------------------------------------------------

/// Phase-2 query interface: one file's facts plus the workspace graph.
pub struct Resolver<'a> {
    pub facts: &'a FileFacts,
    pub ws: &'a Workspace,
}

impl<'a> Resolver<'a> {
    /// The innermost `impl` target covering token index `idx`.
    pub fn impl_target_at(&self, idx: usize) -> Option<&str> {
        self.facts
            .impls
            .iter()
            .filter(|b| b.start <= idx && idx <= b.end)
            .min_by_key(|b| b.end - b.start)
            .map(|b| b.target.as_str())
    }

    /// Resolve a dotted receiver chain (`[("self", i), ("entries", j)]`)
    /// to its type. Answers `None` on any unknown step.
    pub fn chain_type(&self, chain: &[(&str, usize)]) -> Option<TypeRef> {
        let (first, fidx) = *chain.first()?;
        let mut ty: TypeRef;
        let rest: &[(&str, usize)];
        if first == "self" {
            ty = TypeRef::leaf(self.impl_target_at(fidx)?);
            rest = &chain[1..];
        } else if let Some(t) = self.facts.locals.get(first) {
            ty = t.clone();
            rest = &chain[1..];
        } else if chain.len() >= 2 {
            // Leading ident unresolvable (pattern binding, shadow, ...):
            // fall back to a workspace-unique field lookup on the chain's
            // final element. This is what clears the `snap.known_labels`
            // false positive — the field resolves to the snapshot's
            // sorted Vec, not the engine's working map.
            let (last, _) = *chain.last()?;
            return self.ws.unique_field_type(last).map(|t| deref(t).clone());
        } else {
            return None;
        }
        for (f, _) in rest {
            let head = deref(&ty).head.clone();
            ty = self.ws.field_type(&head, f)?.clone();
        }
        Some(deref(&ty).clone())
    }
}

/// Build the dotted receiver chain ending at `toks[last]` (which must be
/// an ident), walking `a.b.c` leftward. Returns `None` when the chain
/// extends through a call, an index, or any non-ident step (`foo().x`,
/// `v[i].x`) — such receivers are unresolvable by design.
pub fn receiver_chain<'t>(toks: &'t [Tok<'t>], last: usize) -> Option<Vec<(&'t str, usize)>> {
    if toks[last].kind != TokKind::Ident {
        return None;
    }
    let mut rev = vec![(toks[last].text, last)];
    let mut k = last;
    while k >= 2 && toks[k - 1].is_punct(".") && toks[k - 2].kind == TokKind::Ident {
        k -= 2;
        rev.push((toks[k].text, k));
    }
    if k >= 1 && toks[k - 1].is_punct(".") {
        return None; // chain continues through a non-ident receiver
    }
    rev.reverse();
    Some(rev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ws_of(src: &str) -> (FileFacts, Workspace) {
        let lexed = lex(src);
        let (facts, defs, manual) = collect("crates/x/src/lib.rs", "x", &lexed.toks);
        let mut ws = Workspace::default();
        ws.add_types(defs);
        ws.manual_serde.extend(manual);
        (facts, ws)
    }

    #[test]
    fn parses_struct_fields_with_generics_and_serde_attrs() {
        let src = r#"
            pub struct Snap<'a> {
                pub labels: Vec<(usize, bool)>,
                #[serde(skip)]
                cache: std::collections::HashMap<u32, f64>,
                #[serde(default)]
                pub note: String,
            }
        "#;
        let (_, ws) = ws_of(src);
        let snap = &ws.types.get("Snap").expect("Snap collected")[0];
        assert_eq!(snap.fields.len(), 3);
        assert_eq!(snap.fields[0].ty.head, "Vec");
        assert_eq!(snap.fields[0].ty.args[0].head, "(tuple)");
        assert!(snap.fields[1].serde_skip);
        assert_eq!(snap.fields[1].ty.head, "HashMap");
        assert!(snap.fields[2].serde_default);
    }

    #[test]
    fn aliases_resolve_in_field_types() {
        let src = "use std::collections::HashMap as Index;\nstruct S { m: Index<u32, f64> }";
        let (_, ws) = ws_of(src);
        assert_eq!(ws.field_type("S", "m").expect("field").head, "HashMap");
    }

    #[test]
    fn chain_resolution_self_and_locals() {
        let src = r#"
            use std::collections::HashMap;
            struct Cache { entries: HashMap<u32, f64>, count: u64 }
            impl Cache {
                fn go(&self, extern_map: &HashMap<u32, u32>) {
                    let local: Vec<u32> = Vec::new();
                    self.entries.len();
                    extern_map.len();
                    local.len();
                }
            }
        "#;
        let lexed = lex(src);
        let (facts, defs, _) = collect("f.rs", "x", &lexed.toks);
        let mut ws = Workspace::default();
        ws.add_types(defs);
        let r = Resolver { facts: &facts, ws: &ws };
        // Find the `entries` token inside the method body (the one
        // preceded by `self.`).
        let idx = lexed
            .toks
            .iter()
            .position(|t| t.is_ident("entries") && t.line > 4)
            .expect("entries use");
        let chain = receiver_chain(&lexed.toks, idx).expect("chain");
        assert_eq!(r.chain_type(&chain).expect("type").head, "HashMap");
        assert_eq!(r.chain_type(&[("extern_map", 0)]).expect("param").head, "HashMap");
        assert_eq!(r.chain_type(&[("local", 0)]).expect("local").head, "Vec");
    }

    #[test]
    fn unique_field_fallback_prefers_the_field_not_the_name_collision() {
        // The engine.rs:428 shape: a local `known_labels` map, and a
        // pattern-bound `snap` whose `known_labels` FIELD is a sorted Vec.
        let src = r#"
            use std::collections::HashMap;
            struct Snap { known_labels: Vec<(usize, bool)> }
            fn resume(s: i32) {
                let known_labels: HashMap<usize, bool> = HashMap::new();
                known_labels.len();
            }
        "#;
        let (facts, ws) = ws_of(src);
        let r = Resolver { facts: &facts, ws: &ws };
        // `snap.known_labels` with `snap` unresolvable → the unique FIELD
        // wins: Vec, not HashMap.
        let t = r
            .chain_type(&[("snap", 0), ("known_labels", 2)])
            .expect("fallback resolves");
        assert_eq!(t.head, "Vec");
        // The bare local still resolves to the map.
        assert_eq!(r.chain_type(&[("known_labels", 0)]).expect("local").head, "HashMap");
    }

    #[test]
    fn par_closures_capture_params_and_body() {
        let src = "fn f(items: &[u32]) { let out = exec::par_map(threads, items, |x| x + 1); }";
        let lexed = lex(src);
        let (facts, _, _) = collect("f.rs", "x", &lexed.toks);
        assert_eq!(facts.par_closures.len(), 1);
        assert_eq!(facts.par_closures[0].params, vec!["x"]);
        assert_eq!(facts.par_closures[0].callee, "par_map");
    }

    #[test]
    fn manual_serde_impls_are_recorded() {
        let src = "struct Cell;\nimpl serde::Serialize for Cell { fn to_json_value(&self) {} }";
        let (_, ws) = ws_of(src);
        assert!(ws.manual_serde.contains("Cell"));
    }

    #[test]
    fn enum_payload_types_reach_the_graph() {
        let src = "enum E { A, B(Vec<u64>), C { m: std::collections::HashMap<u32, u32> } }";
        let (_, ws) = ws_of(src);
        let e = &ws.types.get("E").expect("enum")[0];
        assert!(e.is_enum);
        assert!(e.fields.iter().any(|f| f.name == "B" && f.ty.head == "Vec"));
        assert!(e.fields.iter().any(|f| f.name == "C.m" && f.ty.head == "HashMap"));
    }
}
