//! The Citations dataset: DBLP ↔ Google Scholar (paper Table 1:
//! |A| = 2616, |B| = 64263, 5347 matches). One DBLP paper commonly matches
//! several Scholar records, so matched A entities carry up to four
//! duplicates. Moderate corruption (author initials, truncated titles,
//! missing years) plus same-author sibling papers give the dataset its
//! mid-range difficulty.

use crate::corrupt::{pick, CorruptionProfile};
use crate::dataset::{assemble, EmDataset, EntityModel, GenConfig, GenSpec};
use crate::vocab;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use similarity::{Attribute, Schema, Value};

struct CitationModel;

fn title(rng: &mut StdRng) -> String {
    let n = rng.gen_range(4..=8);
    let mut words: Vec<&str> = Vec::with_capacity(n);
    while words.len() < n {
        let w = pick(vocab::TITLE_WORDS, rng);
        if !words.contains(&w) {
            words.push(w);
        }
    }
    words.join(" ")
}

fn authors(rng: &mut StdRng) -> String {
    let n = rng.gen_range(1..=4);
    (0..n)
        .map(|_| {
            format!(
                "{} {}",
                pick(vocab::FIRST_NAMES, rng),
                pick(vocab::LAST_NAMES, rng)
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

impl EntityModel for CitationModel {
    fn fresh(&self, rng: &mut StdRng) -> Vec<Value> {
        vec![
            Value::Text(title(rng)),
            Value::Text(authors(rng)),
            Value::Text(pick(vocab::VENUES, rng).to_string()),
            Value::Number(rng.gen_range(1990..=2013) as f64),
        ]
    }

    /// A different paper by the same authors: overlapping title words, a
    /// nearby year, often the same venue.
    fn sibling(&self, base: &[Value], rng: &mut StdRng) -> Vec<Value> {
        let base_title = base[0].as_text().unwrap_or("entity matching at scale");
        let mut words: Vec<String> = base_title
            .split_whitespace()
            .map(|w| w.to_string())
            .collect();
        // Replace roughly half the content words.
        let n_replace = (words.len() / 2).max(1);
        for _ in 0..n_replace {
            let i = rng.gen_range(0..words.len());
            words[i] = pick(vocab::TITLE_WORDS, rng).to_string();
        }
        words.shuffle(rng);
        let year = base[3]
            .as_number()
            .map(|y| (y as i32 + rng.gen_range(-3i32..=3)).clamp(1988, 2014) as f64)
            .unwrap_or(2005.0);
        let venue = if rng.gen_bool(0.5) {
            base[2].clone()
        } else {
            Value::Text(pick(vocab::VENUES, rng).to_string())
        };
        vec![
            Value::Text(words.join(" ")),
            base[1].clone(),
            venue,
            Value::Number(year),
        ]
    }
}

/// Citation schema: three text attributes and the numeric year.
pub fn schema() -> Schema {
    Schema::new(vec![
        Attribute::text("title"),
        Attribute::text("authors"),
        Attribute::text("venue"),
        Attribute::number("year"),
    ])
}

/// Generate the Citations dataset at the configured scale.
pub fn generate(cfg: GenConfig) -> EmDataset {
    let spec = GenSpec {
        name: "citations",
        schema: schema(),
        n_a: cfg.scaled(2616, 60),
        n_b: cfg.scaled(64263, 300),
        n_matches: cfg.scaled(5347, 30),
        max_dups_per_a: 4,
        profile: CorruptionProfile::moderate(),
        near_miss_frac: 0.25,
        instruction: "These records are bibliographic citations; they match \
                      if they refer to the same publication.",
        price_cents: 1.0,
    };
    assemble(spec, &CitationModel, cfg.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_statistics() {
        let ds = generate(GenConfig::at_scale(0.05));
        let st = ds.stats();
        assert_eq!(st.n_a, 131);
        assert_eq!(st.n_b, 3213);
        assert_eq!(st.n_matches, 267);
        // Skew: positive density stays well under 1%.
        assert!(st.positive_density < 0.001);
    }

    #[test]
    fn multiple_scholar_records_per_dblp_paper() {
        let ds = generate(GenConfig::at_scale(0.05));
        let mut per_a = std::collections::HashMap::new();
        for &(a, _) in &ds.gold {
            *per_a.entry(a).or_insert(0usize) += 1;
        }
        assert!(per_a.values().any(|&c| c > 1), "expect some multi-dup papers");
        assert!(per_a.values().all(|&c| c <= 4));
    }

    #[test]
    fn year_is_numeric_or_missing() {
        let ds = generate(GenConfig::at_scale(0.03));
        for r in &ds.table_b.records {
            assert!(matches!(r.value(3), Value::Number(_) | Value::Null));
        }
    }

    #[test]
    fn deterministic() {
        let d1 = generate(GenConfig { scale: 0.03, seed: 5 });
        let d2 = generate(GenConfig { scale: 0.03, seed: 5 });
        assert_eq!(d1.gold, d2.gold);
    }
}
