//! Corruption operators: how a clean entity description turns into the
//! messy duplicate found in the other table.
//!
//! The profile knobs are the difficulty dial of the synthetic datasets:
//! Restaurants uses a light profile, Products a heavy one, which is what
//! reproduces the papers' ordering of matching difficulty.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Per-field corruption probabilities and magnitudes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CorruptionProfile {
    /// Probability of introducing one random character typo per word.
    pub typo_prob: f64,
    /// Probability of dropping each non-first token.
    pub drop_token_prob: f64,
    /// Probability of abbreviating each token to its initial.
    pub abbrev_prob: f64,
    /// Probability of swapping two adjacent tokens once.
    pub swap_prob: f64,
    /// Probability a text field is replaced by `Null`.
    pub missing_prob: f64,
    /// Relative noise bound on numeric fields (e.g. `0.1` = ±10%).
    pub numeric_rel_noise: f64,
    /// Probability a numeric field is replaced by `Null`.
    pub numeric_missing_prob: f64,
}

impl CorruptionProfile {
    /// Light corruption: occasional typos and abbreviations. Matches stay
    /// easy to spot (Restaurants-like).
    pub fn light() -> Self {
        CorruptionProfile {
            typo_prob: 0.04,
            drop_token_prob: 0.02,
            abbrev_prob: 0.05,
            swap_prob: 0.02,
            missing_prob: 0.01,
            numeric_rel_noise: 0.0,
            numeric_missing_prob: 0.02,
        }
    }

    /// Moderate corruption: initials, truncation, occasionally missing
    /// years (Citations-like). Numeric fields stay mostly intact — real
    /// Scholar duplicates rarely lose the year, which is what makes
    /// high-recall blocking possible on this dataset (paper Table 3:
    /// 99% blocking recall).
    pub fn moderate() -> Self {
        CorruptionProfile {
            typo_prob: 0.06,
            drop_token_prob: 0.06,
            abbrev_prob: 0.18,
            swap_prob: 0.06,
            missing_prob: 0.03,
            numeric_rel_noise: 0.0,
            numeric_missing_prob: 0.03,
        }
    }

    /// Heavy corruption: dropped and reordered tokens, missing models,
    /// noisy prices (Products-like).
    /// Heavy corruption (Products-like): reworded names, noisy prices,
    /// missing models. Calibrated so matched pairs stay *recognizable*
    /// (blocking recall ~92%, paper Table 3) while the dataset's real
    /// difficulty comes from near-miss sibling SKUs (same brand/family,
    /// different capacity) that defeat naive matchers.
    pub fn heavy() -> Self {
        CorruptionProfile {
            typo_prob: 0.10,
            drop_token_prob: 0.10,
            abbrev_prob: 0.08,
            swap_prob: 0.12,
            missing_prob: 0.05,
            numeric_rel_noise: 0.10,
            numeric_missing_prob: 0.06,
        }
    }
}

/// Introduce one random typo (substitute/insert/delete/transpose) into a
/// word. Returns the word unchanged if it is empty.
pub fn typo<R: Rng>(word: &str, rng: &mut R) -> String {
    let chars: Vec<char> = word.chars().collect();
    if chars.is_empty() {
        return String::new();
    }
    let mut out = chars.clone();
    let alphabet = "abcdefghijklmnopqrstuvwxyz";
    let letter = || alphabet.as_bytes()[0] as char; // replaced below
    let _ = letter;
    let pos = rng.gen_range(0..out.len());
    match rng.gen_range(0..4u8) {
        0 => {
            // substitute
            let c = alphabet.as_bytes()[rng.gen_range(0..alphabet.len())] as char;
            out[pos] = c;
        }
        1 => {
            // insert
            let c = alphabet.as_bytes()[rng.gen_range(0..alphabet.len())] as char;
            out.insert(pos, c);
        }
        2 => {
            // delete
            out.remove(pos);
        }
        _ => {
            // transpose with next
            if out.len() >= 2 {
                let p = pos.min(out.len() - 2);
                out.swap(p, p + 1);
            }
        }
    }
    out.into_iter().collect()
}

/// Corrupt a text value under the profile. `None` means the field went
/// missing entirely.
pub fn corrupt_text<R: Rng>(s: &str, profile: &CorruptionProfile, rng: &mut R) -> Option<String> {
    if rng.gen_bool(profile.missing_prob) {
        return None;
    }
    let mut tokens: Vec<String> = s.split_whitespace().map(|t| t.to_string()).collect();
    if tokens.is_empty() {
        return Some(String::new());
    }
    // Drop tokens (never the first — the head word carries identity).
    if tokens.len() > 1 {
        let kept: Vec<String> = tokens
            .iter()
            .enumerate()
            .filter(|(i, _)| *i == 0 || !rng.gen_bool(profile.drop_token_prob))
            .map(|(_, t)| t.clone())
            .collect();
        tokens = kept;
    }
    // Swap one adjacent pair.
    if tokens.len() >= 2 && rng.gen_bool(profile.swap_prob) {
        let i = rng.gen_range(0..tokens.len() - 1);
        tokens.swap(i, i + 1);
    }
    // Abbreviate or typo individual tokens.
    for t in tokens.iter_mut() {
        if t.len() > 2 && rng.gen_bool(profile.abbrev_prob) {
            let initial: String = t.chars().take(1).collect();
            *t = format!("{initial}.");
        } else if rng.gen_bool(profile.typo_prob) {
            *t = typo(t, rng);
        }
    }
    Some(tokens.join(" "))
}

/// Corrupt a numeric value under the profile. `None` means missing.
pub fn corrupt_number<R: Rng>(x: f64, profile: &CorruptionProfile, rng: &mut R) -> Option<f64> {
    if rng.gen_bool(profile.numeric_missing_prob) {
        return None;
    }
    if profile.numeric_rel_noise == 0.0 {
        return Some(x);
    }
    let noise = rng.gen_range(-profile.numeric_rel_noise..=profile.numeric_rel_noise);
    Some((x * (1.0 + noise) * 100.0).round() / 100.0)
}

/// Pick a random element of a word bank.
pub fn pick<'a, R: Rng>(bank: &[&'a str], rng: &mut R) -> &'a str {
    bank.choose(rng).expect("word banks are non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn typo_changes_word_mostly() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut changed = 0;
        for _ in 0..100 {
            if typo("kingston", &mut rng) != "kingston" {
                changed += 1;
            }
        }
        // Transposing identical adjacent letters can be a no-op, but the
        // vast majority of typos must alter the word.
        assert!(changed > 80, "{changed}");
    }

    #[test]
    fn typo_empty_word_is_safe() {
        let mut rng = StdRng::seed_from_u64(2);
        assert_eq!(typo("", &mut rng), "");
        let one = typo("a", &mut rng);
        assert!(one.len() <= 2);
    }

    #[test]
    fn zero_profile_is_identity() {
        let p = CorruptionProfile {
            typo_prob: 0.0,
            drop_token_prob: 0.0,
            abbrev_prob: 0.0,
            swap_prob: 0.0,
            missing_prob: 0.0,
            numeric_rel_noise: 0.0,
            numeric_missing_prob: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(
            corrupt_text("golden dragon palace", &p, &mut rng),
            Some("golden dragon palace".to_string())
        );
        assert_eq!(corrupt_number(42.0, &p, &mut rng), Some(42.0));
    }

    #[test]
    fn heavy_profile_perturbs_often() {
        let p = CorruptionProfile::heavy();
        let mut rng = StdRng::seed_from_u64(4);
        let src = "kingston hyperx memory kit with heat spreader";
        let changed = (0..200)
            .filter(|_| corrupt_text(src, &p, &mut rng).as_deref() != Some(src))
            .count();
        assert!(changed > 120, "{changed}");
    }

    #[test]
    fn first_token_never_dropped() {
        let p = CorruptionProfile {
            drop_token_prob: 1.0,
            typo_prob: 0.0,
            abbrev_prob: 0.0,
            swap_prob: 0.0,
            missing_prob: 0.0,
            numeric_rel_noise: 0.0,
            numeric_missing_prob: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let out = corrupt_text("alpha beta gamma", &p, &mut rng).unwrap();
        assert_eq!(out, "alpha");
    }

    #[test]
    fn numeric_noise_bounded() {
        let p = CorruptionProfile::heavy();
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..100 {
            if let Some(y) = corrupt_number(100.0, &p, &mut rng) {
                assert!((89.9..=110.1).contains(&y), "{y}");
            }
        }
    }

    #[test]
    fn missing_prob_one_always_missing() {
        let p = CorruptionProfile {
            missing_prob: 1.0,
            numeric_missing_prob: 1.0,
            ..CorruptionProfile::light()
        };
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(corrupt_text("x", &p, &mut rng), None);
        assert_eq!(corrupt_number(1.0, &p, &mut rng), None);
    }
}
