//! Word banks for the synthetic dataset generators.
//!
//! The banks are sized so that sampled entity descriptions are mostly
//! distinct at paper-scale table sizes while still producing plausible
//! near-collisions (two different Italian restaurants on "Oak Street",
//! two Kingston memory kits differing only in capacity).

/// First words of restaurant names.
pub const RESTAURANT_FIRST: &[&str] = &[
    "Golden", "Blue", "Royal", "Little", "Grand", "Old", "New", "Silver", "Red", "Green",
    "Happy", "Lucky", "Sunny", "Crystal", "Olive", "Amber", "Velvet", "Copper", "Ivory",
    "Rustic", "Urban", "Coastal", "Harbor", "Garden", "Corner", "Village", "Midtown",
    "Uptown", "Downtown", "Lakeside", "Hillside", "Riverside", "Sunset", "Sunrise",
    "Mountain", "Prairie", "Maple", "Cedar", "Willow", "Magnolia",
];

/// Second words of restaurant names.
pub const RESTAURANT_SECOND: &[&str] = &[
    "Dragon", "Palace", "Garden", "Kitchen", "Bistro", "Grill", "Diner", "Cafe", "House",
    "Table", "Tavern", "Cantina", "Trattoria", "Osteria", "Brasserie", "Pantry", "Spoon",
    "Fork", "Plate", "Oven", "Hearth", "Fire", "Smoke", "Salt", "Pepper", "Basil", "Thyme",
    "Saffron", "Ginger", "Lotus", "Bamboo", "Pearl", "Anchor", "Lantern", "Crown",
];

/// Cuisines.
pub const CUISINES: &[&str] = &[
    "Italian", "Chinese", "Mexican", "Thai", "Indian", "French", "Japanese", "Korean",
    "Greek", "Spanish", "Vietnamese", "American", "Cajun", "Ethiopian", "Lebanese",
    "Turkish", "Moroccan", "Brazilian", "Peruvian", "German",
];

/// Cities.
pub const CITIES: &[&str] = &[
    "Madison", "Chicago", "Austin", "Denver", "Seattle", "Portland", "Boston", "Atlanta",
    "Phoenix", "Dallas", "Houston", "Columbus", "Nashville", "Memphis", "Louisville",
    "Baltimore", "Milwaukee", "Albuquerque", "Tucson", "Fresno", "Sacramento", "Omaha",
    "Raleigh", "Miami", "Oakland", "Tulsa", "Wichita", "Arlington", "Tampa", "Aurora",
    "Anaheim", "Riverside", "Lexington", "Stockton", "Pittsburgh", "Anchorage",
    "Cincinnati", "Greensboro", "Toledo", "Newark",
];

/// Street names.
pub const STREETS: &[&str] = &[
    "Main Street", "Oak Street", "Park Avenue", "Maple Avenue", "Cedar Road", "Pine Street",
    "Elm Street", "Washington Avenue", "Lake Street", "Hill Road", "Church Street",
    "Bridge Street", "Mill Road", "River Road", "Spring Street", "Highland Avenue",
    "Union Street", "Prospect Avenue", "Jefferson Street", "Madison Avenue",
    "Franklin Street", "Lincoln Avenue", "Jackson Street", "Monroe Street",
    "Chestnut Street", "Walnut Street", "Cherry Lane", "Sunset Boulevard",
    "Broadway", "Second Avenue", "Third Street", "Fourth Avenue", "Fifth Street",
    "College Avenue", "University Drive", "Market Street", "State Street",
    "Water Street", "Front Street", "Grove Street",
];

/// Person first names.
pub const FIRST_NAMES: &[&str] = &[
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael", "Linda",
    "William", "Elizabeth", "David", "Barbara", "Richard", "Susan", "Joseph", "Jessica",
    "Thomas", "Sarah", "Charles", "Karen", "Christopher", "Nancy", "Daniel", "Lisa",
    "Matthew", "Betty", "Anthony", "Margaret", "Mark", "Sandra", "Donald", "Ashley",
    "Steven", "Kimberly", "Paul", "Emily", "Andrew", "Donna", "Joshua", "Michelle",
    "Kenneth", "Carol", "Kevin", "Amanda", "Brian", "Dorothy", "George", "Melissa",
    "Timothy", "Deborah", "Ronald", "Stephanie", "Edward", "Rebecca", "Jason", "Sharon",
    "Jeffrey", "Laura", "Ryan", "Cynthia", "Jacob", "Kathleen", "Gary", "Amy",
    "Nicholas", "Angela", "Eric", "Shirley", "Jonathan", "Anna", "Stephen", "Brenda",
    "Larry", "Pamela", "Justin", "Emma", "Scott", "Nicole", "Brandon", "Helen",
];

/// Person last names.
pub const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
    "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson",
    "Thomas", "Taylor", "Moore", "Jackson", "Martin", "Lee", "Perez", "Thompson",
    "White", "Harris", "Sanchez", "Clark", "Ramirez", "Lewis", "Robinson", "Walker",
    "Young", "Allen", "King", "Wright", "Scott", "Torres", "Nguyen", "Hill", "Flores",
    "Green", "Adams", "Nelson", "Baker", "Hall", "Rivera", "Campbell", "Mitchell",
    "Carter", "Roberts", "Gomez", "Phillips", "Evans", "Turner", "Diaz", "Parker",
    "Cruz", "Edwards", "Collins", "Reyes", "Stewart", "Morris", "Morales", "Murphy",
    "Cook", "Rogers", "Gutierrez", "Ortiz", "Morgan", "Cooper", "Peterson", "Bailey",
    "Reed", "Kelly", "Howard", "Ramos", "Kim", "Cox", "Ward", "Richardson", "Watson",
    "Brooks", "Chavez", "Wood", "James", "Bennett", "Gray", "Mendoza", "Ruiz", "Hughes",
    "Price", "Alvarez", "Castillo", "Sanders", "Patel", "Myers", "Long", "Ross",
    "Foster", "Jimenez", "Zhang", "Chen", "Kumar", "Singh", "Shavlik", "Doan", "Zhu",
    "Naughton", "Gokhale", "Das", "Breiman", "Vapnik", "Pearl", "Widom", "Gray",
    "Stonebraker", "Codd", "Ullman", "Halevy", "Ives", "Franklin", "Madden", "Kraska",
];

/// Content words of paper titles.
pub const TITLE_WORDS: &[&str] = &[
    "active", "learning", "scalable", "entity", "matching", "crowdsourced", "databases",
    "query", "optimization", "distributed", "transaction", "processing", "indexing",
    "approximate", "streaming", "graph", "mining", "classification", "clustering",
    "probabilistic", "inference", "sampling", "estimation", "parallel", "adaptive",
    "incremental", "robust", "efficient", "semantic", "schema", "integration",
    "deduplication", "record", "linkage", "blocking", "similarity", "joins", "skyline",
    "ranking", "keyword", "search", "extraction", "wrappers", "provenance", "lineage",
    "uncertain", "temporal", "spatial", "multidimensional", "compression", "caching",
    "materialized", "views", "recovery", "concurrency", "replication", "partitioning",
    "workload", "tuning", "benchmarking", "declarative", "relational", "federated",
    "heterogeneous", "ontologies", "annotation", "curation", "cleaning", "repair",
    "constraints", "dependencies", "normalization", "privacy", "anonymization",
    "security", "auditing", "versioning", "crowdsourcing", "human", "computation",
    "feedback", "interactive", "visualization", "exploration", "summarization",
    "sketches", "histograms", "cardinality", "selectivity", "cost", "models",
    "execution", "plans", "operators", "pipelines", "vectorized", "columnar",
    "storage", "engines", "transactions", "logging", "checkpointing", "snapshots",
];

/// Publication venues.
pub const VENUES: &[&str] = &[
    "SIGMOD", "VLDB", "ICDE", "EDBT", "CIDR", "PODS", "KDD", "ICML", "NIPS", "AAAI",
    "IJCAI", "WWW", "WSDM", "CIKM", "ICDM", "SDM", "ECML", "UAI", "COLT", "SIGIR",
    "TODS", "TKDE", "VLDBJ", "JMLR", "MLJ", "DMKD", "PVLDB", "SoCC", "ATC", "OSDI",
];

/// Product brands.
pub const BRANDS: &[&str] = &[
    "Kingston", "Corsair", "Samsung", "Sony", "Panasonic", "Logitech", "Netgear",
    "Belkin", "Canon", "Nikon", "Epson", "Brother", "Asus", "Acer", "Lenovo", "Dell",
    "Toshiba", "Seagate", "SanDisk", "Garmin", "TomTom", "Philips", "Sharp", "Vizio",
    "JVC", "Pioneer", "Kenwood", "Yamaha", "Onkyo", "Denon", "Plantronics", "Jabra",
    "Linksys", "TPLink", "DLink", "Zyxel", "Crucial", "PNY", "Transcend", "Verbatim",
];

/// Product family/series names.
pub const PRODUCT_FAMILIES: &[&str] = &[
    "HyperX", "Vengeance", "EVO", "Pro", "Elite", "Ultra", "Max", "Prime", "Titan",
    "Fury", "Savage", "Blaze", "Spark", "Pulse", "Wave", "Stream", "Vision", "Clarity",
    "Precision", "Velocity", "Quantum", "Vertex", "Apex", "Summit", "Pinnacle", "Core",
    "Edge", "Flow", "Shift", "Boost",
];

/// Product category nouns.
pub const PRODUCT_NOUNS: &[&str] = &[
    "Memory Kit", "SSD", "Hard Drive", "Flash Drive", "Keyboard", "Mouse", "Webcam",
    "Headset", "Speaker", "Monitor", "Router", "Switch", "Adapter", "Charger", "Cable",
    "Printer", "Scanner", "Camera", "Lens", "Tripod", "Microphone", "Soundbar",
    "Projector", "Dock", "Hub", "Enclosure", "Card Reader", "Power Supply",
    "Graphics Card", "Motherboard",
];

/// Capacity/size variants for products (an easy axis for near-miss pairs).
pub const CAPACITIES: &[&str] = &[
    "2GB", "4GB", "8GB", "16GB", "32GB", "64GB", "128GB", "256GB", "512GB", "1TB",
    "2TB", "4TB",
];

/// Feature phrases for product descriptions.
pub const FEATURE_PHRASES: &[&str] = &[
    "high speed", "low latency", "energy efficient", "plug and play", "wireless",
    "bluetooth enabled", "usb 3.0", "backlit", "ergonomic design", "noise cancelling",
    "water resistant", "shock proof", "ultra slim", "portable", "rechargeable",
    "fast charging", "dual band", "gigabit", "hd resolution", "4k ready",
    "wide compatibility", "aluminum body", "rgb lighting", "quiet operation",
    "extended warranty", "heat spreader", "error correction", "hot swappable",
];
