//! The Products dataset: Amazon ↔ Walmart electronics (paper Table 1:
//! |A| = 2554, |B| = 22074, 1154 matches). The hardest of the three tasks:
//! heavy corruption (dropped tokens, reworded names, missing model numbers,
//! ±10% price noise) and a high fraction of near-miss siblings — the same
//! brand and product family in a different capacity, the pair type paper
//! Fig. 4 illustrates.

use crate::corrupt::{pick, CorruptionProfile};
use crate::dataset::{assemble, EmDataset, EntityModel, GenConfig, GenSpec};
use crate::vocab;
use rand::rngs::StdRng;
use rand::Rng;
use similarity::{Attribute, Schema, Value};

struct ProductModel;

fn model_number(rng: &mut StdRng) -> String {
    let letters = "ABCDEFGHJKLMNPRSTUVWXYZ";
    let mut s = String::new();
    for _ in 0..3 {
        s.push(letters.as_bytes()[rng.gen_range(0..letters.len())] as char);
    }
    s.push_str(&format!("{:04}", rng.gen_range(0..10_000)));
    for _ in 0..2 {
        s.push(letters.as_bytes()[rng.gen_range(0..letters.len())] as char);
    }
    s
}

fn features(rng: &mut StdRng) -> String {
    let n = rng.gen_range(2..=4);
    let mut phrases: Vec<&str> = Vec::with_capacity(n);
    while phrases.len() < n {
        let p = pick(vocab::FEATURE_PHRASES, rng);
        if !phrases.contains(&p) {
            phrases.push(p);
        }
    }
    phrases.join("; ")
}

fn compose(brand: &str, family: &str, capacity: &str, noun: &str) -> String {
    format!("{brand} {family} {capacity} {noun}")
}

impl EntityModel for ProductModel {
    fn fresh(&self, rng: &mut StdRng) -> Vec<Value> {
        let brand = pick(vocab::BRANDS, rng);
        let family = pick(vocab::PRODUCT_FAMILIES, rng);
        let capacity = pick(vocab::CAPACITIES, rng);
        let noun = pick(vocab::PRODUCT_NOUNS, rng);
        let price = (rng.gen_range(10.0..1000.0) * 100.0_f64).round() / 100.0;
        vec![
            Value::Text(brand.to_string()),
            Value::Text(compose(brand, family, capacity, noun)),
            Value::Text(model_number(rng)),
            Value::Number(price),
            Value::Text(features(rng)),
        ]
    }

    /// The same brand, family, and category in a different capacity with a
    /// different model number — a genuinely different SKU that shares most
    /// of its name tokens with the base product.
    fn sibling(&self, base: &[Value], rng: &mut StdRng) -> Vec<Value> {
        let brand = base[0].as_text().unwrap_or("Kingston").to_string();
        let base_name = base[1].as_text().unwrap_or("");
        let mut tokens: Vec<&str> = base_name.split_whitespace().collect();
        // Swap the capacity token for a different one; if none found,
        // append one.
        let new_cap = pick(vocab::CAPACITIES, rng);
        let mut replaced = false;
        for t in tokens.iter_mut() {
            if vocab::CAPACITIES.contains(t) && *t != new_cap {
                *t = new_cap;
                replaced = true;
                break;
            }
        }
        let name = if replaced {
            tokens.join(" ")
        } else {
            format!("{base_name} {new_cap}")
        };
        let price = base[3]
            .as_number()
            .map(|p| (p * rng.gen_range(0.7..1.4) * 100.0).round() / 100.0)
            .unwrap_or(99.99);
        vec![
            Value::Text(brand),
            Value::Text(name),
            Value::Text(model_number(rng)),
            Value::Number(price),
            Value::Text(features(rng)),
        ]
    }
}

/// Product schema: four text attributes and the numeric price.
pub fn schema() -> Schema {
    Schema::new(vec![
        Attribute::text("brand"),
        Attribute::text("name"),
        Attribute::text("model"),
        Attribute::number("price"),
        Attribute::text("features"),
    ])
}

/// Generate the Products dataset at the configured scale.
pub fn generate(cfg: GenConfig) -> EmDataset {
    let spec = GenSpec {
        name: "products",
        schema: schema(),
        n_a: cfg.scaled(2554, 60),
        n_b: cfg.scaled(22074, 250),
        n_matches: cfg.scaled(1154, 25),
        max_dups_per_a: 1,
        profile: CorruptionProfile::heavy(),
        near_miss_frac: 0.45,
        instruction: "These records describe products sold in a department \
                      store; they match if they represent the same product.",
        price_cents: 2.0,
    };
    assemble(spec, &ProductModel, cfg.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_statistics() {
        let ds = generate(GenConfig::at_scale(0.05));
        let st = ds.stats();
        assert_eq!(st.n_a, 128);
        assert_eq!(st.n_b, 1104);
        assert_eq!(st.n_matches, 58);
        assert!(st.positive_density < 0.001);
    }

    #[test]
    fn price_is_two_cents_per_question() {
        let ds = generate(GenConfig::at_scale(0.03));
        assert_eq!(ds.price_cents, 2.0);
    }

    #[test]
    fn near_misses_share_brand_tokens() {
        // Sanity: some non-matching B records share a brand with an A
        // record (the hard negatives that make Products hard).
        let ds = generate(GenConfig::at_scale(0.05));
        let a_brands: std::collections::HashSet<&str> = ds
            .table_a
            .records
            .iter()
            .filter_map(|r| r.value(0).as_text())
            .collect();
        let matched_b: std::collections::HashSet<u32> =
            ds.gold.iter().map(|&(_, b)| b).collect();
        let shared = ds
            .table_b
            .records
            .iter()
            .filter(|r| !matched_b.contains(&r.id))
            .filter(|r| r.value(0).as_text().is_some_and(|b| a_brands.contains(b)))
            .count();
        assert!(shared > 100, "expected many near-miss negatives, got {shared}");
    }

    #[test]
    fn deterministic() {
        let d1 = generate(GenConfig { scale: 0.02, seed: 9 });
        let d2 = generate(GenConfig { scale: 0.02, seed: 9 });
        assert_eq!(d1.gold, d2.gold);
    }
}
