//! The packaged EM task a generator produces, and the generic assembly
//! machinery shared by the three dataset generators.
//!
//! An [`EmDataset`] is exactly what a Corleone user supplies (paper §3):
//! two tables, a short matching instruction, and four seed examples (two
//! positive, two negative) — plus, for evaluation only, the gold match set
//! that backs the simulated crowd's answers.

use crate::corrupt::{corrupt_number, corrupt_text, CorruptionProfile};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use similarity::{AttrType, Schema, Table, Value};
use std::collections::HashSet;
use std::sync::Arc;

/// The four illustrating examples the user supplies (paper §3, item 3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeedExamples {
    /// Two matching `(a_id, b_id)` pairs.
    pub positive: [(u32, u32); 2],
    /// Two non-matching `(a_id, b_id)` pairs.
    pub negative: [(u32, u32); 2],
}

impl SeedExamples {
    /// All four pairs with their labels.
    pub fn labeled(&self) -> Vec<((u32, u32), bool)> {
        self.positive
            .iter()
            .map(|&p| (p, true))
            .chain(self.negative.iter().map(|&p| (p, false)))
            .collect()
    }
}

/// A complete synthetic EM task.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EmDataset {
    /// Dataset name (e.g. `"products"`).
    pub name: String,
    /// Table A (by convention the smaller one).
    pub table_a: Table,
    /// Table B.
    pub table_b: Table,
    /// Gold match set: `(a_id, b_id)` pairs that truly match. Backs the
    /// simulated crowd; Corleone itself never reads it.
    pub gold: HashSet<(u32, u32)>,
    /// The user's matching instruction shown to the crowd.
    pub instruction: String,
    /// The four seed examples.
    pub seeds: SeedExamples,
    /// Per-question pay in cents (paper: 1¢, 2¢ for Products).
    pub price_cents: f64,
}

/// Summary statistics (paper Table 1 plus skew).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetStats {
    /// |A|.
    pub n_a: usize,
    /// |B|.
    pub n_b: usize,
    /// Number of gold matches.
    pub n_matches: usize,
    /// |A × B|.
    pub cartesian: u64,
    /// Fraction of the Cartesian product that matches.
    pub positive_density: f64,
}

impl EmDataset {
    /// Compute Table 1-style statistics.
    pub fn stats(&self) -> DatasetStats {
        let cartesian = self.table_a.len() as u64 * self.table_b.len() as u64;
        DatasetStats {
            n_a: self.table_a.len(),
            n_b: self.table_b.len(),
            n_matches: self.gold.len(),
            cartesian,
            positive_density: self.gold.len() as f64 / cartesian as f64,
        }
    }
}

/// Size/seed knob shared by the generators. `scale = 1.0` reproduces the
/// paper's table sizes; smaller scales shrink every dimension
/// proportionally (useful for tests and quick experiments).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GenConfig {
    /// Proportional size factor in `(0, 1]`.
    pub scale: f64,
    /// RNG seed; fixed seed ⇒ identical dataset.
    pub seed: u64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig { scale: 1.0, seed: 42 }
    }
}

impl GenConfig {
    /// Config at a given scale with the default seed.
    pub fn at_scale(scale: f64) -> Self {
        GenConfig { scale, ..Default::default() }
    }

    /// Scale a paper-size count, keeping a sane minimum.
    pub(crate) fn scaled(&self, paper_size: usize, min: usize) -> usize {
        ((paper_size as f64 * self.scale).round() as usize).max(min)
    }
}

/// Everything a dataset module must provide to [`assemble`].
pub(crate) struct GenSpec<'a> {
    pub name: &'a str,
    pub schema: Schema,
    pub n_a: usize,
    pub n_b: usize,
    pub n_matches: usize,
    /// Maximum duplicates of one A entity in B (Citations: several Scholar
    /// records per DBLP paper; others: 1).
    pub max_dups_per_a: usize,
    pub profile: CorruptionProfile,
    /// Fraction of B's non-matching records that are *near-miss siblings*
    /// of A entities rather than fresh entities. This is the difficulty
    /// dial: siblings share brand/author/street surface with a real
    /// A record while denoting a different entity.
    pub near_miss_frac: f64,
    pub instruction: &'a str,
    pub price_cents: f64,
}

/// Per-dataset entity callbacks.
pub(crate) trait EntityModel {
    /// Generate a fresh clean entity.
    fn fresh(&self, rng: &mut StdRng) -> Vec<Value>;
    /// Derive a *different* entity with deliberately similar surface.
    fn sibling(&self, base: &[Value], rng: &mut StdRng) -> Vec<Value>;
}

/// Corrupt every field of an entity per the schema and profile.
pub(crate) fn corrupt_entity(
    schema: &Schema,
    values: &[Value],
    profile: &CorruptionProfile,
    rng: &mut StdRng,
) -> Vec<Value> {
    schema
        .attrs
        .iter()
        .zip(values)
        .map(|(attr, v)| match (attr.ty, v) {
            (AttrType::Text, Value::Text(s)) => corrupt_text(s, profile, rng)
                .map(Value::Text)
                .unwrap_or(Value::Null),
            (AttrType::Number, Value::Number(x)) => corrupt_number(*x, profile, rng)
                .map(Value::Number)
                .unwrap_or(Value::Null),
            _ => Value::Null,
        })
        .collect()
}

fn entity_key(values: &[Value]) -> String {
    values
        .iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join("\u{1f}")
}

/// Build an [`EmDataset`] from a spec and an entity model. Shared by all
/// three generators.
pub(crate) fn assemble(spec: GenSpec<'_>, model: &dyn EntityModel, seed: u64) -> EmDataset {
    assert!(spec.n_a >= 8, "table A too small to pick seed examples");
    assert!(spec.n_matches >= 4, "need at least 4 matches");
    assert!(
        spec.n_matches <= spec.n_b,
        "cannot have more matches than B records"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // 1. Distinct clean entities for A.
    let mut seen: HashSet<String> = HashSet::new();
    let mut a_rows: Vec<Vec<Value>> = Vec::with_capacity(spec.n_a);
    let mut attempts = 0usize;
    while a_rows.len() < spec.n_a {
        let e = model.fresh(&mut rng);
        attempts += 1;
        assert!(
            attempts < spec.n_a * 200,
            "entity space too small for requested table size"
        );
        if seen.insert(entity_key(&e)) {
            a_rows.push(e);
        }
    }

    // 2. Assign matches: walk A ids in random order, giving each matched
    //    entity 1..=max_dups duplicates until the target count is reached.
    let mut a_order: Vec<u32> = (0..spec.n_a as u32).collect();
    a_order.shuffle(&mut rng);
    let mut dup_plan: Vec<(u32, usize)> = Vec::new();
    let mut total = 0usize;
    for &aid in &a_order {
        if total >= spec.n_matches {
            break;
        }
        let dups = if spec.max_dups_per_a <= 1 {
            1
        } else {
            rng.gen_range(1..=spec.max_dups_per_a)
        }
        .min(spec.n_matches - total);
        dup_plan.push((aid, dups));
        total += dups;
    }
    assert_eq!(total, spec.n_matches, "A too small to host all matches");

    // 3. Build B rows: corrupted duplicates first, then fillers.
    let mut b_rows: Vec<(Vec<Value>, Option<u32>)> = Vec::with_capacity(spec.n_b);
    for &(aid, dups) in &dup_plan {
        for _ in 0..dups {
            let dup = corrupt_entity(
                &spec.schema,
                &a_rows[aid as usize],
                &spec.profile,
                &mut rng,
            );
            b_rows.push((dup, Some(aid)));
        }
    }
    while b_rows.len() < spec.n_b {
        let filler = if rng.gen_bool(spec.near_miss_frac) {
            let aid = rng.gen_range(0..spec.n_a);
            let sib = model.sibling(&a_rows[aid], &mut rng);
            corrupt_entity(&spec.schema, &sib, &spec.profile, &mut rng)
        } else {
            model.fresh(&mut rng)
        };
        b_rows.push((filler, None));
    }
    b_rows.shuffle(&mut rng);

    let gold: HashSet<(u32, u32)> = b_rows
        .iter()
        .enumerate()
        .filter_map(|(bid, (_, src))| src.map(|aid| (aid, bid as u32)))
        .collect();

    let schema = Arc::new(spec.schema);
    let table_a = Table::new(format!("{}_a", spec.name), schema.clone(), a_rows);
    let table_b = Table::new(
        format!("{}_b", spec.name),
        schema,
        b_rows.into_iter().map(|(v, _)| v).collect(),
    );

    // 4. Seed examples: two gold pairs, two random non-matches.
    let mut gold_vec: Vec<(u32, u32)> = gold.iter().copied().collect();
    gold_vec.sort_unstable();
    gold_vec.shuffle(&mut rng);
    let positive = [gold_vec[0], gold_vec[1]];
    let mut negative = Vec::new();
    while negative.len() < 2 {
        let a = rng.gen_range(0..table_a.len() as u32);
        let b = rng.gen_range(0..table_b.len() as u32);
        if !gold.contains(&(a, b)) && !negative.contains(&(a, b)) {
            negative.push((a, b));
        }
    }

    EmDataset {
        name: spec.name.to_string(),
        table_a,
        table_b,
        gold,
        instruction: spec.instruction.to_string(),
        seeds: SeedExamples {
            positive,
            negative: [negative[0], negative[1]],
        },
        price_cents: spec.price_cents,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use similarity::Attribute;

    struct Toy;
    impl EntityModel for Toy {
        fn fresh(&self, rng: &mut StdRng) -> Vec<Value> {
            vec![
                Value::Text(format!("entity {}", rng.gen::<u32>())),
                Value::Number(rng.gen_range(0.0..1000.0)),
            ]
        }
        fn sibling(&self, base: &[Value], rng: &mut StdRng) -> Vec<Value> {
            let name = base[0].as_text().unwrap_or("x");
            vec![
                Value::Text(format!("{name} mk2")),
                Value::Number(rng.gen_range(0.0..1000.0)),
            ]
        }
    }

    fn toy_spec() -> GenSpec<'static> {
        GenSpec {
            name: "toy",
            schema: Schema::new(vec![Attribute::text("name"), Attribute::number("price")]),
            n_a: 50,
            n_b: 80,
            n_matches: 20,
            max_dups_per_a: 2,
            profile: CorruptionProfile::light(),
            near_miss_frac: 0.3,
            instruction: "match if same entity",
            price_cents: 1.0,
        }
    }

    #[test]
    fn assemble_produces_requested_sizes() {
        let ds = assemble(toy_spec(), &Toy, 1);
        assert_eq!(ds.table_a.len(), 50);
        assert_eq!(ds.table_b.len(), 80);
        assert_eq!(ds.gold.len(), 20);
        let st = ds.stats();
        assert_eq!(st.cartesian, 50 * 80);
        assert!((st.positive_density - 20.0 / 4000.0).abs() < 1e-12);
    }

    #[test]
    fn gold_ids_are_in_range() {
        let ds = assemble(toy_spec(), &Toy, 2);
        for &(a, b) in &ds.gold {
            assert!((a as usize) < ds.table_a.len());
            assert!((b as usize) < ds.table_b.len());
        }
    }

    #[test]
    fn seeds_are_consistent_with_gold() {
        let ds = assemble(toy_spec(), &Toy, 3);
        for p in ds.seeds.positive {
            assert!(ds.gold.contains(&p));
        }
        for n in ds.seeds.negative {
            assert!(!ds.gold.contains(&n));
        }
        assert_eq!(ds.seeds.labeled().len(), 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let d1 = assemble(toy_spec(), &Toy, 7);
        let d2 = assemble(toy_spec(), &Toy, 7);
        assert_eq!(d1.gold, d2.gold);
        assert_eq!(d1.table_b.record(5), d2.table_b.record(5));
        let d3 = assemble(toy_spec(), &Toy, 8);
        assert_ne!(d1.gold, d3.gold);
    }

    #[test]
    fn dups_respect_cap() {
        let ds = assemble(toy_spec(), &Toy, 4);
        let mut per_a = std::collections::HashMap::new();
        for &(a, _) in &ds.gold {
            *per_a.entry(a).or_insert(0usize) += 1;
        }
        assert!(per_a.values().all(|&c| c <= 2));
    }

    #[test]
    fn corrupt_entity_types_respected() {
        let schema = Schema::new(vec![Attribute::text("t"), Attribute::number("n")]);
        let mut rng = StdRng::seed_from_u64(5);
        let vals = vec![Value::Text("hello world".into()), Value::Number(10.0)];
        let out = corrupt_entity(&schema, &vals, &CorruptionProfile::light(), &mut rng);
        assert!(matches!(out[0], Value::Text(_) | Value::Null));
        assert!(matches!(out[1], Value::Number(_) | Value::Null));
    }
}
