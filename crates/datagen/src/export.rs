//! CSV export of generated datasets, so the `corleone-cli` binary (and
//! any external tool) can consume them: `a.csv`, `b.csv`, and `gold.csv`.

use crate::dataset::EmDataset;
use similarity::{Table, Value};
use std::io;
use std::path::Path;

/// Quote a CSV field per RFC 4180 when needed.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render a table as CSV text (header + rows; `Null` becomes empty).
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema
        .attrs
        .iter()
        .map(|a| csv_field(&a.name))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for r in &table.records {
        let row: Vec<String> = r
            .values
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Number(x) => format!("{x}"),
                Value::Text(s) => csv_field(s),
            })
            .collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    out
}

/// Render the gold match set as `a_id,b_id` CSV text (with header).
pub fn gold_to_csv(ds: &EmDataset) -> String {
    let mut pairs: Vec<(u32, u32)> = ds.gold.iter().copied().collect();
    pairs.sort_unstable();
    let mut out = String::from("a_id,b_id\n");
    for (a, b) in pairs {
        out.push_str(&format!("{a},{b}\n"));
    }
    out
}

/// Write `a.csv`, `b.csv`, and `gold.csv` into `dir` (created if needed).
pub fn write_csv_files(ds: &EmDataset, dir: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    std::fs::write(dir.join("a.csv"), table_to_csv(&ds.table_a))?;
    std::fs::write(dir.join("b.csv"), table_to_csv(&ds.table_b))?;
    std::fs::write(dir.join("gold.csv"), gold_to_csv(ds))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{restaurants, GenConfig};
    use similarity::csv::{parse_csv, table_from_csv};

    #[test]
    fn csv_roundtrips_through_the_parser() {
        let ds = restaurants::generate(GenConfig { scale: 0.05, seed: 3 });
        let text = table_to_csv(&ds.table_a);
        let back = table_from_csv("a", &text).unwrap();
        assert_eq!(back.len(), ds.table_a.len());
        assert_eq!(back.schema.len(), ds.table_a.schema.len());
        // Spot-check a value survives quoting.
        assert_eq!(
            back.record(0).value(0).as_text(),
            ds.table_a.record(0).value(0).as_text()
        );
    }

    #[test]
    fn gold_csv_is_parseable_and_complete() {
        let ds = restaurants::generate(GenConfig { scale: 0.05, seed: 4 });
        let text = gold_to_csv(&ds);
        let rows = parse_csv(&text).unwrap();
        assert_eq!(rows.len() - 1, ds.gold.len(), "header + one row per match");
        assert_eq!(rows[0], vec!["a_id", "b_id"]);
    }

    #[test]
    fn fields_with_commas_are_quoted() {
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("plain"), "plain");
    }
}
