//! The Restaurants dataset: the smallest, easiest task of the paper's
//! three (Table 1: |A| = 533, |B| = 331, 112 matches). Distinctive names
//! and phone numbers with light corruption make matches easy to spot; the
//! Cartesian product is small enough that blocking is never triggered
//! (paper Table 3).

use crate::corrupt::{pick, CorruptionProfile};
use crate::dataset::{assemble, EmDataset, EntityModel, GenConfig, GenSpec};
use crate::vocab;
use rand::rngs::StdRng;
use rand::Rng;
use similarity::{Attribute, Schema, Value};

struct RestaurantModel;

fn phone(rng: &mut StdRng) -> String {
    format!(
        "({:03}) {:03}-{:04}",
        rng.gen_range(200..1000),
        rng.gen_range(200..1000),
        rng.gen_range(0..10_000)
    )
}

impl EntityModel for RestaurantModel {
    fn fresh(&self, rng: &mut StdRng) -> Vec<Value> {
        let name = format!(
            "{} {}",
            pick(vocab::RESTAURANT_FIRST, rng),
            pick(vocab::RESTAURANT_SECOND, rng)
        );
        let address = format!("{} {}", rng.gen_range(1..9999), pick(vocab::STREETS, rng));
        vec![
            Value::Text(name),
            Value::Text(address),
            Value::Text(pick(vocab::CITIES, rng).to_string()),
            Value::Text(phone(rng)),
            Value::Text(pick(vocab::CUISINES, rng).to_string()),
        ]
    }

    /// A different restaurant that shares the name's head word, the city,
    /// and the cuisine — the plausible near-miss of this domain.
    fn sibling(&self, base: &[Value], rng: &mut StdRng) -> Vec<Value> {
        let head = base[0]
            .as_text()
            .and_then(|n| n.split_whitespace().next())
            .unwrap_or("Golden")
            .to_string();
        let name = format!("{head} {}", pick(vocab::RESTAURANT_SECOND, rng));
        let address = format!("{} {}", rng.gen_range(1..9999), pick(vocab::STREETS, rng));
        vec![
            Value::Text(name),
            Value::Text(address),
            base[2].clone(),
            Value::Text(phone(rng)),
            base[4].clone(),
        ]
    }
}

/// Restaurant schema: five text attributes.
pub fn schema() -> Schema {
    Schema::new(vec![
        Attribute::text("name"),
        Attribute::text("address"),
        Attribute::text("city"),
        Attribute::text("phone"),
        Attribute::text("cuisine"),
    ])
}

/// Generate the Restaurants dataset at the configured scale.
pub fn generate(cfg: GenConfig) -> EmDataset {
    let spec = GenSpec {
        name: "restaurants",
        schema: schema(),
        n_a: cfg.scaled(533, 40),
        n_b: cfg.scaled(331, 30),
        n_matches: cfg.scaled(112, 10),
        max_dups_per_a: 1,
        profile: CorruptionProfile::light(),
        near_miss_frac: 0.15,
        instruction: "These records describe restaurants; they match if they \
                      refer to the same restaurant location.",
        price_cents: 1.0,
    };
    assemble(spec, &RestaurantModel, cfg.seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_statistics() {
        let ds = generate(GenConfig::default());
        let st = ds.stats();
        assert_eq!(st.n_a, 533);
        assert_eq!(st.n_b, 331);
        assert_eq!(st.n_matches, 112);
        assert_eq!(st.cartesian, 533 * 331);
    }

    #[test]
    fn scaled_down_statistics() {
        let ds = generate(GenConfig::at_scale(0.25));
        let st = ds.stats();
        assert_eq!(st.n_a, 133);
        assert_eq!(st.n_b, 83);
        assert_eq!(st.n_matches, 28);
    }

    #[test]
    fn matched_pairs_look_similar() {
        let ds = generate(GenConfig::at_scale(0.3));
        let mut sims = Vec::new();
        for &(a, b) in ds.gold.iter().take(20) {
            let ra = ds.table_a.record(a);
            let rb = ds.table_b.record(b);
            if let (Some(na), Some(nb)) = (ra.value(0).as_text(), rb.value(0).as_text()) {
                sims.push(similarity::jaro::jaro_winkler(na, nb));
            }
        }
        let mean = sims.iter().sum::<f64>() / sims.len() as f64;
        assert!(mean > 0.85, "matched names should stay similar, got {mean}");
    }

    #[test]
    fn deterministic() {
        let d1 = generate(GenConfig::at_scale(0.2));
        let d2 = generate(GenConfig::at_scale(0.2));
        assert_eq!(d1.gold, d2.gold);
    }
}
