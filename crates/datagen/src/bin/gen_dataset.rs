//! `gen_dataset` — write a synthetic EM dataset as CSV files for use with
//! `corleone-cli` or external tools.
//!
//! ```text
//! gen_dataset <restaurants|citations|products> [--scale 0.1] [--seed 42] [--out DIR]
//! ```
//!
//! Produces `DIR/a.csv`, `DIR/b.csv`, `DIR/gold.csv` and prints the seed
//! example pairs to pass as `--pos` / `--neg`.

use datagen::{by_name, export, GenConfig};
use std::path::PathBuf;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(name) = args.first() else {
        eprintln!("usage: gen_dataset <restaurants|citations|products> [--scale f] [--seed n] [--out dir]");
        exit(2);
    };
    let mut scale = 0.1;
    let mut seed = 42u64;
    let mut out = PathBuf::from(format!("./{name}_csv"));
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => scale = args[i + 1].parse().expect("bad --scale"),
            "--seed" => seed = args[i + 1].parse().expect("bad --seed"),
            "--out" => out = PathBuf::from(&args[i + 1]),
            other => {
                eprintln!("unknown flag {other}");
                exit(2);
            }
        }
        i += 2;
    }
    let Some(ds) = by_name(name, GenConfig { scale, seed }) else {
        eprintln!("unknown dataset '{name}'");
        exit(2);
    };
    export::write_csv_files(&ds, &out).unwrap_or_else(|e| {
        eprintln!("cannot write {}: {e}", out.display());
        exit(1);
    });
    let st = ds.stats();
    println!(
        "wrote {}/{{a,b,gold}}.csv  (|A|={}, |B|={}, matches={})",
        out.display(),
        st.n_a,
        st.n_b,
        st.n_matches
    );
    let p = ds.seeds.positive;
    let n = ds.seeds.negative;
    println!("seed flags for corleone-cli:");
    println!("  --pos {}:{},{}:{}", p[0].0, p[0].1, p[1].0, p[1].1);
    println!("  --neg {}:{},{}:{}", n[0].0, n[0].1, n[1].0, n[1].1);
    println!("  --instruction \"{}\"", ds.instruction);
}
