#![forbid(unsafe_code)]
//! # datagen — synthetic EM datasets with gold standards
//!
//! The paper evaluates Corleone on three real-world datasets (Table 1):
//! Restaurants, Citations (DBLP ↔ Google Scholar), and Products
//! (Amazon ↔ Walmart). Those datasets are not redistributable, so this
//! crate generates *synthetic equivalents that reproduce each dataset's
//! published statistics and difficulty profile*:
//!
//! | dataset | |A| | |B| | matches | profile |
//! |---|---|---|---|---|
//! | [`restaurants`] | 533 | 331 | 112 | light corruption, few near-misses |
//! | [`citations`] | 2616 | 64263 | 5347 | moderate corruption, multi-duplicates |
//! | [`products`] | 2554 | 22074 | 1154 | heavy corruption, many near-miss SKUs |
//!
//! The load-bearing properties for reproducing the paper's experiment
//! *shapes* are preserved: table sizes and Cartesian-product scale
//! (blocking triggers on Citations/Products, not Restaurants), extreme
//! label skew (0.06–2.6% positive density), and the difficulty ordering
//! Restaurants < Citations < Products. Every generator is deterministic
//! given its [`GenConfig`] seed and supports proportional down-scaling for
//! tests and quick runs.

pub mod citations;
pub mod corrupt;
pub mod dataset;
pub mod export;
pub mod products;
pub mod restaurants;
pub mod vocab;

pub use corrupt::CorruptionProfile;
pub use dataset::{DatasetStats, EmDataset, GenConfig, SeedExamples};

/// Generate a dataset by name (`"restaurants"`, `"citations"`,
/// `"products"`). Returns `None` for unknown names.
pub fn by_name(name: &str, cfg: GenConfig) -> Option<EmDataset> {
    match name {
        "restaurants" => Some(restaurants::generate(cfg)),
        "citations" => Some(citations::generate(cfg)),
        "products" => Some(products::generate(cfg)),
        _ => None,
    }
}

/// The three dataset names in paper order.
pub const DATASET_NAMES: [&str; 3] = ["restaurants", "citations", "products"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn by_name_dispatches() {
        let cfg = GenConfig::at_scale(0.02);
        for name in DATASET_NAMES {
            let ds = by_name(name, cfg).unwrap();
            assert_eq!(ds.name, name);
            assert!(ds.gold.len() >= 4);
        }
        assert!(by_name("nope", cfg).is_none());
    }
}
