//! Property-based tests for the dataset generators: structural invariants
//! that must hold at any scale and seed.

use datagen::{by_name, GenConfig, DATASET_NAMES};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn generated_datasets_are_structurally_sound(
        scale in 0.01f64..0.08,
        seed in 0u64..500,
        which in 0usize..3,
    ) {
        let name = DATASET_NAMES[which];
        let ds = by_name(name, GenConfig { scale, seed }).unwrap();
        let st = ds.stats();

        // Sizes and gold consistency.
        prop_assert_eq!(st.n_a, ds.table_a.len());
        prop_assert_eq!(st.n_b, ds.table_b.len());
        prop_assert_eq!(st.n_matches, ds.gold.len());
        prop_assert!(st.n_matches >= 4, "need enough matches for seeds");
        for &(a, b) in &ds.gold {
            prop_assert!((a as usize) < st.n_a);
            prop_assert!((b as usize) < st.n_b);
        }
        // Each B record matches at most one A record (B-side uniqueness).
        let mut b_seen = std::collections::HashSet::new();
        for &(_, b) in &ds.gold {
            prop_assert!(b_seen.insert(b), "B record {b} matched twice");
        }
        // Seeds agree with gold.
        for p in ds.seeds.positive {
            prop_assert!(ds.gold.contains(&p));
        }
        for n in ds.seeds.negative {
            prop_assert!(!ds.gold.contains(&n));
        }
        // Tables share the schema.
        prop_assert_eq!(&ds.table_a.schema, &ds.table_b.schema);
        // Row arity matches schema everywhere.
        for r in ds.table_a.records.iter().chain(ds.table_b.records.iter()) {
            prop_assert_eq!(r.values.len(), ds.table_a.schema.len());
        }
        // EM skew: positives are a small minority of the Cartesian product.
        prop_assert!(st.positive_density < 0.05, "density {}", st.positive_density);
    }

    #[test]
    fn same_seed_same_dataset(seed in 0u64..200, which in 0usize..3) {
        let name = DATASET_NAMES[which];
        let cfg = GenConfig { scale: 0.02, seed };
        let d1 = by_name(name, cfg).unwrap();
        let d2 = by_name(name, cfg).unwrap();
        prop_assert_eq!(&d1.gold, &d2.gold);
        prop_assert_eq!(&d1.seeds, &d2.seeds);
        prop_assert_eq!(d1.table_b.records.len(), d2.table_b.records.len());
        for i in (0..d1.table_b.len()).step_by(17) {
            prop_assert_eq!(d1.table_b.record(i as u32), d2.table_b.record(i as u32));
        }
    }

    #[test]
    fn different_seeds_differ(seed in 0u64..200, which in 0usize..3) {
        let name = DATASET_NAMES[which];
        let d1 = by_name(name, GenConfig { scale: 0.03, seed }).unwrap();
        let d2 = by_name(name, GenConfig { scale: 0.03, seed: seed + 1 }).unwrap();
        prop_assert_ne!(&d1.gold, &d2.gold);
    }
}
