//! Demonstrates the §10 extension: using the crowd to *clean a learning
//! model* — find and disable bad rules in a random forest that was
//! trained on noisy labels.
//!
//! A matcher is trained with a deliberately careless protocol (labels
//! from single noisy workers, no voting) so some of its leaves encode
//! systematic mistakes; the cleaner then audits the most suspicious rules
//! with a proper crowd and condemns the bad ones.

use bench::{dataset, make_platform, make_task, mean, parse_args, pct, render_table};
use corleone::{clean_forest, CandidateSet, CleanerConfig};
use crowd::TruthOracle;
use forest::{Dataset, ForestConfig, RandomForest};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

fn main() {
    let opts = parse_args();
    println!(
        "Model cleaning (§10 extension): crowd audits of forest rules (scale {}, {} runs)\n",
        opts.scale, opts.runs
    );
    let mut rows = Vec::new();
    for name in &opts.datasets {
        let mut before_v = vec![];
        let mut after_v = vec![];
        let mut condemned_v = vec![];
        let mut cost_v = vec![];
        for run in 0..opts.runs {
            let ds = dataset(name, &opts, run);
            let (task, gold) = make_task(&ds);
            let mut rng = StdRng::seed_from_u64(opts.seed + run as u64);
            let mut pairs = Vec::new();
            for a in 0..task.table_a.len() as u32 {
                for b in 0..task.table_b.len() as u32 {
                    pairs.push(crowd::PairKey::new(a, b));
                }
            }
            pairs.shuffle(&mut rng);
            pairs.truncate(8_000);
            let cand = CandidateSet::build(&task, pairs);

            // Careless training: 600 random pairs labeled by single
            // workers with 25% error and no vote aggregation — plus
            // one-sided bias against positives.
            let mut train = Dataset::new(cand.n_features());
            let mut idx: Vec<usize> = (0..cand.len()).collect();
            idx.shuffle(&mut rng);
            // Ensure some positives make it into training.
            let mut chosen: Vec<usize> = idx
                .iter()
                .copied()
                .filter(|&i| gold.true_label(cand.pair(i)))
                .take(40)
                .collect();
            chosen.extend(idx.iter().copied().take(560));
            for &i in &chosen {
                let mut label = gold.true_label(cand.pair(i));
                if rng.gen_bool(0.25) {
                    label = !label;
                }
                train.push(cand.row(i), label);
            }
            let forest = RandomForest::train_all(&train, &ForestConfig::default(), &mut rng);

            let f1_of = |predict: &dyn Fn(&[f64]) -> bool| {
                let mut tp = 0;
                let mut pp = 0;
                let mut ap = 0;
                for i in 0..cand.len() {
                    let a = gold.true_label(cand.pair(i));
                    if predict(cand.row(i)) {
                        pp += 1;
                        if a {
                            tp += 1;
                        }
                    }
                    if a {
                        ap += 1;
                    }
                }
                let p = if pp > 0 { tp as f64 / pp as f64 } else { 0.0 };
                let r = if ap > 0 { tp as f64 / ap as f64 } else { 0.0 };
                corleone::metrics::Prf::new(p, r).f1
            };
            let before = f1_of(&|x| forest.predict(x));

            // Clean with a careful crowd (5% error, hybrid voting).
            let mut platform = make_platform(&ds, 0.05, opts.seed + run as u64);
            let (cleaned, report) = clean_forest(
                &forest,
                &cand,
                &HashMap::new(),
                &mut platform,
                &gold,
                &CleanerConfig { min_coverage: 5, ..Default::default() },
                &mut rng,
            );
            let after = f1_of(&|x| cleaned.predict(x));
            before_v.push(before);
            after_v.push(after);
            condemned_v.push(report.rules_condemned as f64);
            cost_v.push(report.cost_cents);
        }
        rows.push(vec![
            name.clone(),
            pct(mean(&before_v)),
            pct(mean(&after_v)),
            format!("{:+.1}", (mean(&after_v) - mean(&before_v)) * 100.0),
            format!("{:.1}", mean(&condemned_v)),
            format!("${:.1}", mean(&cost_v) / 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Dataset", "F1 before", "F1 after", "ΔF1", "Rules condemned", "Cost"],
            &rows
        )
    );
    println!("\nShape: cleaning condemns rules in noisy models and never hurts a clean");
    println!("one — the crowd acts as a model debugger, not just a labeler (§10).");
}
