//! Reproduces **Figure 2**: a toy random forest over book pairs and the
//! negative rules extracted from it — the mechanism the Blocker (§4),
//! Estimator (§6), and Locator (§7) are built on.

use forest::{extract_rules, Dataset, ForestConfig, RandomForest};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Features mirror the figure: isbn_match, #pages_match, title_match.
    let names: Vec<String> = ["isbn_match", "pages_match", "title_match"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    // Books match iff isbn matches and pages match (tree 1), and
    // title+pages correlate (tree 2's view).
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for isbn in [0.0, 1.0] {
        for pages in [0.0, 1.0] {
            for title in [0.0, 1.0] {
                for _ in 0..6 {
                    rows.push(vec![isbn, pages, title]);
                    labels.push(isbn == 1.0 && pages == 1.0 && title == 1.0);
                }
            }
        }
    }
    let ds = Dataset::from_rows(&rows, &labels);
    let cfg = ForestConfig {
        n_trees: 2,
        bagging_fraction: 1.0,
        m_features: Some(2),
        ..Default::default()
    };
    let forest = RandomForest::train_all(&ds, &cfg, &mut StdRng::seed_from_u64(2014));

    println!("Figure 2: a toy random forest and its extracted rules\n");
    for (i, tree) in forest.trees().iter().enumerate() {
        println!(
            "Tree {} — {} leaves, depth {}",
            i + 1,
            tree.n_leaves(),
            tree.depth()
        );
    }
    println!("\nExtracted rules (paths to leaves):");
    let mut neg = 0;
    let mut pos = 0;
    for rule in extract_rules(&forest) {
        let kind = if rule.label {
            pos += 1;
            "positive"
        } else {
            neg += 1;
            "negative"
        };
        println!("  [{kind}] {}", rule.display_with(&names));
    }
    println!("\n{neg} negative rules (candidate blocking rules), {pos} positive rules.");
    println!("Paper Fig. 2c shows 5 negative rules from its 2-tree toy forest;");
    println!("e.g. \"(isbn_match = N) => NO\" is the first blocking rule.");
}
