//! Blocking hot-path benchmark: record-analysis build, blocking-rule
//! application over `A × B`, and full pair vectorization, on all three
//! synthetic datasets — comparing the string-based reference kernels
//! ("string"), the precomputed-analysis Cartesian scan ("pre"), and the
//! output-sensitive indexed join ("index_probe").
//!
//! Writes `BENCH_blocking.json` (v3: `{schema_version, records}` where
//! each record is `{dataset, scale, phase, wall_ms, pairs_per_sec,
//! analysis_bytes}` — the last being the resident bytes of the arena
//! analysis for that dataset × scale) so future PRs have a perf
//! trajectory, and prints a before/after table.
//!
//! Phases per dataset × scale:
//! * `analysis_build`   — one-time `TableAnalysis` build (rate = records/s)
//! * `rule_apply_string` — rule sweep via the string kernels (sampled
//!   A-rows at large scales; the rate extrapolates)
//! * `rule_apply_pre`   — [`CartesianScan`] over the full `A × B`
//! * `index_probe`      — [`IndexedJoin`] (index build + probe + verify);
//!   the rate is *effective* pairs/s (Cartesian size / wall), so the
//!   speedup over `rule_apply_pre` is read directly off the two rates
//! * `vectorize_string` / `vectorize_pre` — full feature vectors on a
//!   deterministic sample of pairs
//! * `char_kernels_string` / `char_kernels_pre` — only the five
//!   character-level measures (Levenshtein, Jaro, Jaro-Winkler,
//!   Monge-Elkan, Smith-Waterman) on the same pair sample, isolating the
//!   bit-parallel/scratch kernels from the set/vector ones
//!
//! Every dataset × scale also asserts (a) the indexed candidate list is
//! byte-identical to the scan's (`index_equivalence=ok` marker),
//! (b) every char-kernel feature value is bit-identical between the two
//! paths on every sampled pair (`char_equivalence=ok` marker), and
//! (c) the *full* feature vector off the arena-packed analysis is
//! bit-identical to the string path on every sampled pair
//! (`arena_equivalence=ok` marker); all three markers are grepped by
//! `scripts/ci.sh`.
//!
//! Flags: `--quick` (CI-sized run), `--out PATH`, `--scales a,b`,
//! `--datasets a,b`, `--threads N`, `--kinds` (per-kernel ns/pair table,
//! used to calibrate `FeatureKind::unit_cost`).

use bench::{dataset, make_task, render_table, ExpOptions};
use corleone::source::{CandidateSource, CartesianScan, IndexedJoin};
use corleone::task::MatchTask;
use exec::Threads;
use forest::{Op, Predicate, Rule};
use serde::Serialize;
use similarity::{FeatureKind, TaskAnalysis};
use std::time::Instant;

/// Bump when the JSON layout changes. v2 added the envelope object and
/// the `index_probe` phase; v3 added the `char_kernels_string` /
/// `char_kernels_pre` phases and the per-record `analysis_bytes` field.
const BENCH_SCHEMA_VERSION: u32 = 3;

#[derive(Debug, Clone, Serialize)]
struct BenchRecord {
    dataset: String,
    scale: f64,
    phase: String,
    wall_ms: f64,
    pairs_per_sec: f64,
    /// Resident bytes of the arena-packed analysis for this dataset ×
    /// scale (same value on every phase record of the combination;
    /// backfilled after the analysis builds).
    analysis_bytes: u64,
}

#[derive(Debug, Serialize)]
struct BenchReport {
    schema_version: u32,
    records: Vec<BenchRecord>,
}

struct Args {
    quick: bool,
    kinds: bool,
    defs: bool,
    out: String,
    scales: Vec<f64>,
    datasets: Vec<String>,
    threads: Threads,
}

fn parse() -> Args {
    let mut args = Args {
        quick: false,
        kinds: false,
        defs: false,
        out: "BENCH_blocking.json".to_string(),
        scales: vec![0.3, 1.0, 3.0],
        datasets: vec!["restaurants".into(), "citations".into(), "products".into()],
        threads: Threads::auto(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {
                args.quick = true;
                args.scales = vec![0.05];
                args.datasets = vec!["restaurants".into()];
            }
            "--kinds" => args.kinds = true,
            "--defs" => {
                args.kinds = true;
                args.defs = true;
            }
            "--out" => args.out = it.next().expect("--out needs a path"),
            "--scales" => {
                args.scales = it
                    .next()
                    .expect("--scales needs a list")
                    .split(',')
                    .map(|s| s.parse().expect("scale"))
                    .collect();
            }
            "--datasets" => {
                args.datasets = it
                    .next()
                    .expect("--datasets needs a list")
                    .split(',')
                    .map(String::from)
                    .collect();
            }
            "--threads" => {
                args.threads =
                    Threads::new(it.next().expect("--threads needs a number").parse().expect("n"));
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

/// First feature index of `kind`, if the library has one.
fn find_kind(task: &MatchTask, kind: FeatureKind) -> Option<usize> {
    task.vectorizer.library().defs.iter().position(|d| d.kind == kind)
}

/// Synthetic blocking rules over cheap features, shaped like the negative
/// rules the Blocker extracts: "not an exact match and low word overlap"
/// plus a low-cosine rule.
fn bench_rules(task: &MatchTask) -> Vec<Rule> {
    let pred = |feature: usize, threshold: f64| Predicate {
        feature,
        op: Op::Le,
        threshold,
        nan_satisfies: true,
    };
    let mut rules = Vec::new();
    if let (Some(exact), Some(jac)) = (
        find_kind(task, FeatureKind::ExactMatch),
        find_kind(task, FeatureKind::JaccardWords),
    ) {
        rules.push(Rule {
            predicates: vec![pred(exact, 0.5), pred(jac, 0.2)],
            label: false,
            tree: 0,
            n_pos: 0,
            n_neg: 1,
        });
    }
    if let Some(cos) = find_kind(task, FeatureKind::CosineTfIdf) {
        rules.push(Rule {
            predicates: vec![pred(cos, 0.1)],
            label: false,
            tree: 0,
            n_pos: 0,
            n_neg: 1,
        });
    }
    assert!(!rules.is_empty(), "dataset has no text features to block on");
    rules
}

/// Reference rule sweep through the string kernels (what the hot path did
/// before the analysis layer), over a subset of A-rows.
fn rule_sweep_string(task: &MatchTask, rules: &[Rule], rows: &[u32], threads: Threads) -> usize {
    let n_b = task.table_b.len() as u32;
    let n_features = task.n_features();
    let survivors: Vec<usize> = exec::indexed_par_map(threads, rows.len(), |ri| {
        let rec_a = task.table_a.record(rows[ri]);
        let mut memo = vec![f64::NAN; n_features];
        let mut computed = vec![false; n_features];
        let mut kept = 0usize;
        for b in 0..n_b {
            let rec_b = task.table_b.record(b);
            computed.iter_mut().for_each(|c| *c = false);
            let mut blocked = false;
            'rules: for rule in rules {
                for p in &rule.predicates {
                    if !computed[p.feature] {
                        memo[p.feature] = task.vectorizer.feature(p.feature, rec_a, rec_b);
                        computed[p.feature] = true;
                    }
                }
                if rule.matches(&memo) {
                    blocked = true;
                    break 'rules;
                }
            }
            if !blocked {
                kept += 1;
            }
        }
        kept
    });
    survivors.iter().sum()
}

/// Deterministic stride sample of `n` pairs over the Cartesian product.
fn sample_pairs(task: &MatchTask, n: usize) -> Vec<(u32, u32)> {
    let n_a = task.table_a.len() as u64;
    let n_b = task.table_b.len() as u64;
    let total = n_a * n_b;
    let take = (n as u64).min(total);
    let stride = (total / take).max(1);
    (0..take)
        .map(|i| {
            let idx = (i * stride) % total;
            ((idx / n_b) as u32, (idx % n_b) as u32)
        })
        .collect()
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    t0.elapsed().as_secs_f64() * 1000.0
}

/// Per-kernel ns/pair on both paths (calibration data for
/// `FeatureKind::unit_cost`). With `all_defs`, times every feature def
/// (per attribute) instead of the first def per kind — the per-def
/// breakdown of a full `vectorize_pre` pass.
fn kind_timings(task: &MatchTask, an: &TaskAnalysis, threads: Threads, all_defs: bool) {
    let pairs = sample_pairs(task, 20_000);
    let vz = &task.vectorizer;
    let mut rows = Vec::new();
    for def_idx in 0..task.n_features() {
        let def = &vz.library().defs[def_idx];
        // One def per kind: skip repeats on later attributes.
        if !all_defs && vz.library().defs[..def_idx].iter().any(|d| d.kind == def.kind) {
            continue;
        }
        let run = |pre: bool| {
            let t0 = Instant::now();
            let sums: Vec<f64> = exec::indexed_par_map(threads, pairs.len(), |i| {
                let (a, b) = pairs[i];
                let (ra, rb) = (task.table_a.record(a), task.table_b.record(b));
                let x = if pre {
                    vz.feature_pre(def_idx, ra, rb, an)
                } else {
                    vz.feature(def_idx, ra, rb)
                };
                if x.is_nan() {
                    0.0
                } else {
                    x
                }
            });
            let ns = t0.elapsed().as_nanos() as f64 / pairs.len() as f64;
            (ns, sums.iter().sum::<f64>())
        };
        let (ns_string, s1) = run(false);
        let (ns_pre, s2) = run(true);
        assert_eq!(s1.to_bits(), s2.to_bits(), "paths diverged on {}", def.name());
        rows.push(vec![
            if all_defs { def.name() } else { format!("{:?}", def.kind) },
            format!("{:.0}", ns_string),
            format!("{:.0}", ns_pre),
            format!("{:.1}x", ns_string / ns_pre.max(1.0)),
            format!("{:.1}", def.kind.unit_cost()),
        ]);
    }
    println!(
        "{}",
        render_table(&["kind", "string ns/pair", "pre ns/pair", "speedup", "unit_cost"], &rows)
    );
}

fn main() {
    let args = parse();
    let threads = args.threads;
    let vec_sample = if args.quick { 10_000 } else { 100_000 };
    // Cap the (slow) string-path reference sweep; the pre path always
    // runs the full Cartesian product.
    let string_pair_cap: u64 = if args.quick { 200_000 } else { 4_000_000 };

    let mut records: Vec<BenchRecord> = Vec::new();
    let mut table_rows: Vec<Vec<String>> = Vec::new();

    for name in &args.datasets {
        for &scale in &args.scales {
            let opts = ExpOptions { scale, ..Default::default() };
            let ds = dataset(name, &opts, 0);
            let (task, _gold) = make_task(&ds);
            let n_a = task.table_a.len();
            let n_b = task.table_b.len();
            let cartesian = task.cartesian_size();
            let rules = bench_rules(&task);
            eprintln!(
                "[{name} @ {scale}] |A|={n_a} |B|={n_b} cartesian={cartesian} rules={}",
                rules.len()
            );

            let ds_start = records.len();
            let mut push = |phase: &str, wall_ms: f64, items: f64| {
                let rate = items / (wall_ms / 1000.0).max(1e-9);
                records.push(BenchRecord {
                    dataset: name.clone(),
                    scale,
                    phase: phase.to_string(),
                    wall_ms,
                    pairs_per_sec: rate,
                    analysis_bytes: 0,
                });
                (wall_ms, rate)
            };

            // String-path rule sweep FIRST (before the analysis exists on
            // this task object it would not matter — the reference sweep
            // calls the string kernels explicitly — but measuring it first
            // keeps cache-warming effects comparable).
            let a_rows: Vec<u32> = {
                let max_rows =
                    ((string_pair_cap / n_b.max(1) as u64).max(1) as usize).min(n_a);
                let stride = (n_a / max_rows).max(1);
                (0..n_a).step_by(stride).take(max_rows).map(|a| a as u32).collect()
            };
            let string_pairs = a_rows.len() as u64 * n_b as u64;
            let mut kept_string = 0usize;
            let wall = time_ms(|| {
                kept_string = rule_sweep_string(&task, &rules, &a_rows, threads);
            });
            let (_, rate_string) = push("rule_apply_string", wall, string_pairs as f64);

            // One-time analysis build.
            let wall = time_ms(|| {
                task.ensure_analysis(threads);
            });
            push("analysis_build", wall, (n_a + n_b) as f64);
            let an = task.analysis.get().expect("analysis just built");
            let stats = an.stats;
            let mib = |x: usize| x as f64 / (1024.0 * 1024.0);
            eprintln!(
                "[{name} @ {scale}] analysis: {} values, {} words, {} grams, \
                 {:.1} MiB arena ({:.1} ids + {:.1} weights + {:.1} text + \
                 {:.1} headers) vs {:.1} MiB owned layout",
                stats.values,
                stats.distinct_words,
                stats.distinct_grams,
                mib(stats.resident_bytes),
                mib(stats.id_bytes),
                mib(stats.weight_bytes),
                mib(stats.text_bytes + stats.char_bytes + stats.narrow_bytes),
                mib(stats.header_bytes),
                mib(stats.owned_layout_bytes)
            );

            // Pre-path rule application over the full Cartesian product.
            let scan = CartesianScan::new(&task, rules.clone());
            let mut scan_pairs = Vec::new();
            let wall = time_ms(|| {
                scan_pairs = scan.generate(threads);
            });
            let survivors = scan_pairs.len();
            let (_, rate_pre) = push("rule_apply_pre", wall, cartesian as f64);
            eprintln!(
                "[{name} @ {scale}] rule application: {:.2}M pairs/s string, {:.2}M pairs/s pre \
                 ({:.1}x), {survivors} survivors",
                rate_string / 1e6,
                rate_pre / 1e6,
                rate_pre / rate_string.max(1.0)
            );

            // Output-sensitive indexed join: index build + probes + full
            // verification, timed end to end. The bench rules are all
            // `Le`/`nan_satisfies` set-similarity predicates, so the
            // planner must find them indexable.
            let join =
                IndexedJoin::plan(&task, &rules).expect("bench rules must plan an indexed join");
            let mut idx_pairs = Vec::new();
            let wall_idx = time_ms(|| {
                idx_pairs = join.generate(threads);
            });
            let (_, rate_idx) = push("index_probe", wall_idx, cartesian as f64);
            assert_eq!(
                scan_pairs, idx_pairs,
                "indexed join diverged from Cartesian scan on {name} @ {scale}"
            );
            println!(
                "index_equivalence=ok dataset={name} scale={scale} candidates={survivors} \
                 speedup={:.1}x",
                rate_idx / rate_pre.max(1.0)
            );

            // Full vectorization on a deterministic pair sample. Both
            // paths collect the vector's bits per pair (one small Vec per
            // pair on each path, so the timing overhead cancels), which
            // feeds the whole-vector byte-identity assertion below.
            let pairs = sample_pairs(&task, vec_sample);
            let vectorize = |pre: bool| -> (f64, Vec<Vec<u64>>) {
                // Reused per-thread output buffer: the pre phase measures
                // the allocation-free `vectorize_pre_into` hot path.
                thread_local! {
                    static VBUF: std::cell::RefCell<Vec<f64>> =
                        const { std::cell::RefCell::new(Vec::new()) };
                }
                let mut bits = Vec::new();
                let wall = time_ms(|| {
                    bits = exec::indexed_par_map(threads, pairs.len(), |i| {
                        let (a, b) = pairs[i];
                        let (ra, rb) = (task.table_a.record(a), task.table_b.record(b));
                        if pre {
                            VBUF.with(|v| {
                                let mut v = v.borrow_mut();
                                task.vectorizer.vectorize_pre_into(ra, rb, an, &mut v);
                                v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>()
                            })
                        } else {
                            let v = task.vectorizer.vectorize(ra, rb);
                            v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>()
                        }
                    });
                });
                (wall, bits)
            };
            let (wall_s, vbits_s) = vectorize(false);
            let (_, vrate_s) = push("vectorize_string", wall_s, pairs.len() as f64);
            let (wall_p, vbits_p) = vectorize(true);
            let (_, vrate_p) = push("vectorize_pre", wall_p, pairs.len() as f64);
            for (pi, (bs, bp)) in vbits_s.iter().zip(&vbits_p).enumerate() {
                assert_eq!(
                    bs, bp,
                    "arena vectorization diverged on {name} @ {scale}, pair {:?}",
                    pairs[pi]
                );
            }
            println!(
                "arena_equivalence=ok dataset={name} scale={scale} features={} pairs={} \
                 speedup={:.1}x",
                task.n_features(),
                pairs.len(),
                vrate_p / vrate_s.max(1.0)
            );

            // Char-kernel phase: the five character-level measures alone,
            // on the same pair sample, with per-pair per-feature bit
            // equality between the two paths asserted afterwards.
            let char_defs: Vec<usize> = task
                .vectorizer
                .library()
                .defs
                .iter()
                .enumerate()
                .filter(|(_, d)| {
                    matches!(
                        d.kind,
                        FeatureKind::Levenshtein
                            | FeatureKind::Jaro
                            | FeatureKind::JaroWinkler
                            | FeatureKind::MongeElkan
                            | FeatureKind::SmithWaterman
                    )
                })
                .map(|(i, _)| i)
                .collect();
            let char_run = |pre: bool| -> (f64, Vec<Vec<u64>>) {
                let mut bits = Vec::new();
                let wall = time_ms(|| {
                    bits = exec::indexed_par_map(threads, pairs.len(), |i| {
                        let (a, b) = pairs[i];
                        let (ra, rb) = (task.table_a.record(a), task.table_b.record(b));
                        char_defs
                            .iter()
                            .map(|&fi| {
                                let x = if pre {
                                    task.vectorizer.feature_pre(fi, ra, rb, an)
                                } else {
                                    task.vectorizer.feature(fi, ra, rb)
                                };
                                x.to_bits()
                            })
                            .collect::<Vec<u64>>()
                    });
                });
                (wall, bits)
            };
            let (wall_cs, bits_s) = char_run(false);
            let (_, crate_s) = push("char_kernels_string", wall_cs, pairs.len() as f64);
            let (wall_cp, bits_p) = char_run(true);
            let (_, crate_p) = push("char_kernels_pre", wall_cp, pairs.len() as f64);
            for (pi, (bs, bp)) in bits_s.iter().zip(&bits_p).enumerate() {
                assert_eq!(
                    bs, bp,
                    "char kernels diverged on {name} @ {scale}, pair {:?}",
                    pairs[pi]
                );
            }
            println!(
                "char_equivalence=ok dataset={name} scale={scale} features={} pairs={} \
                 speedup={:.1}x",
                char_defs.len(),
                pairs.len(),
                crate_p / crate_s.max(1.0)
            );

            table_rows.push(vec![
                name.clone(),
                format!("{scale}"),
                format!("{:.2}M", rate_string / 1e6),
                format!("{:.2}M", rate_pre / 1e6),
                format!("{:.2}M", rate_idx / 1e6),
                format!("{:.1}x", rate_idx / rate_pre.max(1.0)),
                format!("{:.0}k", vrate_s / 1e3),
                format!("{:.0}k", vrate_p / 1e3),
                format!("{:.0}k", crate_s / 1e3),
                format!("{:.0}k", crate_p / 1e3),
            ]);

            if args.kinds {
                kind_timings(&task, an, threads, args.defs);
            }

            let analysis_bytes = stats.resident_bytes as u64;
            for r in &mut records[ds_start..] {
                r.analysis_bytes = analysis_bytes;
            }
        }
    }

    println!(
        "{}",
        render_table(
            &[
                "dataset",
                "scale",
                "rules str p/s",
                "rules pre p/s",
                "index eff p/s",
                "idx speedup",
                "vec str p/s",
                "vec pre p/s",
                "char str p/s",
                "char pre p/s",
            ],
            &table_rows
        )
    );

    let report = BenchReport { schema_version: BENCH_SCHEMA_VERSION, records };
    let json = serde_json::to_string_pretty(&report).expect("serialize bench records");
    std::fs::write(&args.out, json + "\n").expect("write bench json");
    eprintln!("wrote {}", args.out);
}
