//! Reproduces **Table 4**: Corleone's performance per iteration —
//! matcher (#pairs, true P/R/F1), estimation (#pairs, estimated P/R/F1),
//! and reduction (#pairs, difficult-set size) for each iteration.

use bench::{parse_args, pct, render_table, run_corleone};

fn main() {
    let opts = parse_args();
    println!(
        "Table 4: per-iteration performance (scale {}, run 0 shown, {}% crowd error)\n",
        opts.scale,
        opts.error_rate * 100.0
    );
    for name in &opts.datasets {
        let (report, _) = run_corleone(name, &opts, 0);
        println!("== {name} ==");
        let mut rows = Vec::new();
        for it in &report.iterations {
            let t = it.true_prf.expect("gold supplied");
            rows.push(vec![
                format!("Iteration {}", it.iteration),
                it.matcher_pairs_labeled.to_string(),
                pct(t.precision),
                pct(t.recall),
                pct(t.f1),
                String::new(),
            ]);
            rows.push(vec![
                format!("Estimation {}", it.iteration),
                it.estimate.pairs_labeled.to_string(),
                pct(it.estimate.precision),
                pct(it.estimate.recall),
                pct(it.estimate.f1),
                format!("(rules {})", it.estimate.rules_used),
            ]);
            if let Some(loc) = &it.locator {
                rows.push(vec![
                    format!("Reduction {}", it.iteration),
                    loc.pairs_labeled.to_string(),
                    String::new(),
                    String::new(),
                    String::new(),
                    format!(
                        "difficult {} of {}{}",
                        loc.difficult_size,
                        loc.input_size,
                        loc.termination
                            .as_ref()
                            .map(|t| format!(" [stop: {t}]"))
                            .unwrap_or_default()
                    ),
                ]);
            }
        }
        println!(
            "{}",
            render_table(&["Phase", "#Pairs", "P", "R", "F1", "Notes"], &rows)
        );
    }
    println!("Paper: restaurants stops after 1 iteration (difficult set 157 < 200);");
    println!("       citations/products take 2 iterations, estimated F1 within 0.5-5.4% of true F1.");
}
