//! The §10 money–time trade-off: "paying more per question often gets the
//! crowd to answer faster. How should we manage this money-time
//! trade-off?"
//!
//! Runs the full pipeline on one dataset at several pay rates and prints
//! the (cost, simulated crowd time, F1) frontier.

use bench::{dataset, make_task, mean, parse_args, pct, render_table};
use corleone::Engine;
use crowd::{CrowdConfig, CrowdPlatform, WorkerPool};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let opts = parse_args();
    let name = opts.datasets.first().cloned().unwrap_or_else(|| "restaurants".into());
    println!(
        "Money-time trade-off (§10) on {name} (scale {}, {} runs, {:.0}% error)\n",
        opts.scale,
        opts.runs,
        opts.error_rate * 100.0
    );
    let mut rows = Vec::new();
    for price in [0.5, 1.0, 2.0, 4.0] {
        let mut costs = vec![];
        let mut hours = vec![];
        let mut f1s = vec![];
        for run in 0..opts.runs {
            let ds = dataset(&name, &opts, run);
            let (task, gold) = make_task(&ds);
            let mut rng = StdRng::seed_from_u64(opts.seed + run as u64);
            let pool = if opts.error_rate == 0.0 {
                WorkerPool::perfect(50)
            } else {
                WorkerPool::heterogeneous(50, opts.error_rate, opts.error_rate / 2.0, &mut rng)
            };
            let mut platform = CrowdPlatform::new(
                pool,
                CrowdConfig {
                    price_cents: price,
                    seed: opts.seed + run as u64,
                    ..Default::default()
                },
            );
            let report = Engine::new(bench::experiment_config())
                .with_seed(opts.seed + 1000 * run as u64)
                .session(&task)
                .platform(&mut platform)
                .oracle(&gold)
                .gold(gold.matches())
                .run();
            costs.push(report.total_cost_cents);
            hours.push(platform.ledger().simulated_secs / 3600.0);
            f1s.push(report.final_true.expect("gold").f1);
        }
        rows.push(vec![
            format!("{price}¢"),
            format!("${:.2}", mean(&costs) / 100.0),
            format!("{:.1}h", mean(&hours)),
            pct(mean(&f1s)),
        ]);
    }
    println!(
        "{}",
        render_table(&["Pay/answer", "Total cost", "Crowd time", "F1"], &rows)
    );
    println!("\nShape: accuracy is flat across pay rates (same labels, same votes);");
    println!("cost scales linearly with pay while crowd time falls as pay^-0.5 —");
    println!("the knob trades money for latency, not for quality.");
}
