//! Ablation of the §8.2 voting-scheme design choice: run the Accuracy
//! Estimator under a noisy crowd with each answer-combination scheme and
//! compare estimate error and cost.
//!
//! The paper's claim: `2+1` is too weak for estimation (false positives
//! corrupt the recall denominator), full strong-majority is accurate but
//! needlessly expensive, and the asymmetric hybrid gets strong-majority
//! accuracy at close to `2+1` cost.

use bench::{dataset, dollars, make_platform, make_task, mean, parse_args, pct, render_table};
use corleone::{estimate_accuracy, run_active_learning, CandidateSet, CorleoneConfig, RunEnv, Threads};
use crowd::TruthOracle;
use crowd::Scheme;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() {
    let mut opts = parse_args();
    if opts.error_rate < 0.12 {
        opts.error_rate = 0.15; // the ablation needs a visibly noisy crowd
    }
    let name = opts.datasets.first().cloned().unwrap_or_else(|| "citations".into());
    println!(
        "Voting-scheme ablation in the estimator on {name} (scale {}, {} runs, {:.0}% crowd error)\n",
        opts.scale,
        opts.runs,
        opts.error_rate * 100.0
    );

    let schemes = [
        ("2+1", Scheme::TwoPlusOne),
        ("strong", Scheme::StrongMajority),
        ("hybrid", Scheme::Hybrid),
    ];
    let mut rows = Vec::new();
    for (label, scheme) in schemes {
        let mut errs = vec![];
        let mut costs = vec![];
        for run in 0..opts.runs {
            let ds = dataset(&name, &opts, run);
            let (task, gold) = make_task(&ds);
            let mut platform = make_platform(&ds, opts.error_rate, opts.seed + run as u64);
            let mut rng = StdRng::seed_from_u64(opts.seed + run as u64);

            // Bounded slice of A×B; train one matcher per run (shared
            // across schemes via identical seeds).
            let mut pairs = Vec::new();
            for a in 0..task.table_a.len() as u32 {
                for b in 0..task.table_b.len() as u32 {
                    pairs.push(crowd::PairKey::new(a, b));
                }
            }
            pairs.shuffle(&mut rng);
            pairs.truncate(20_000);
            for &(s, _) in &task.seeds {
                if !pairs.contains(&s) {
                    pairs.push(s);
                }
            }
            let cand = CandidateSet::build(&task, pairs);
            let seeds: Vec<(Vec<f64>, bool)> = task
                .seeds
                .iter()
                .map(|&(k, l)| (task.vectorize(k), l))
                .collect();
            let cfg = CorleoneConfig::default();
            let learn = run_active_learning(
                &cand,
                &seeds,
                &mut platform,
                &gold,
                &cfg.matcher,
                &mut rng,
                Threads::auto(),
            );
            let predictions: Vec<bool> =
                (0..cand.len()).map(|i| learn.forest.predict(cand.row(i))).collect();
            let known: HashMap<usize, bool> = learn.crowd_labels().collect();

            let mut est_cfg = cfg.estimator;
            est_cfg.scheme = scheme;
            let cents_before = platform.ledger().total_cents;
            let est = estimate_accuracy(
                &cand,
                &predictions,
                &learn.forest,
                &known,
                &mut platform,
                &gold,
                &est_cfg,
                &mut rng,
                &RunEnv::default(),
            );
            // Ground truth over the same population.
            let mut tp = 0;
            let mut pp = 0;
            let mut ap = 0;
            for (i, &pred) in predictions.iter().enumerate() {
                let a = gold.true_label(cand.pair(i));
                if pred {
                    pp += 1;
                    if a {
                        tp += 1;
                    }
                }
                if a {
                    ap += 1;
                }
            }
            let true_p = if pp > 0 { tp as f64 / pp as f64 } else { 0.0 };
            let true_r = if ap > 0 { tp as f64 / ap as f64 } else { 0.0 };
            let true_f1 = corleone::metrics::Prf::new(true_p, true_r).f1;
            errs.push((est.f1 - true_f1).abs());
            costs.push(platform.ledger().total_cents - cents_before);
        }
        rows.push(vec![
            label.to_string(),
            pct(mean(&errs)),
            dollars(mean(&costs)),
        ]);
    }
    println!(
        "{}",
        render_table(&["Scheme", "|est F1 - true F1|", "Estimation cost"], &rows)
    );
    println!("\nExpected shape (§8.2): hybrid ≈ strong-majority estimate quality at a");
    println!("cost much closer to 2+1; plain 2+1 drifts under noise.");
}
