//! Reproduces **Figure 3**: the confidence patterns the §5.3 stopping
//! rules exploit. Runs the crowdsourced active-learning matcher in three
//! regimes (easy task + perfect crowd, normal crowd, very noisy crowd)
//! and prints each run's smoothed monitoring-set confidence series with
//! the detected stopping pattern.

use bench::{make_platform, make_task, parse_args};
use corleone::stopping::smooth;
use corleone::{run_active_learning, CandidateSet, MatcherConfig, Threads};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    values
        .iter()
        .map(|&v| {
            let t = if hi > lo { (v - lo) / (hi - lo) } else { 0.5 };
            BARS[((t * 7.0).round() as usize).min(7)]
        })
        .collect()
}

fn main() {
    let opts = parse_args();
    println!("Figure 3: confidence patterns driving the stopping rules\n");
    // Crowd noise is the main driver of which pattern fires: clean easy
    // tasks reach near-absolute confidence, moderate noise plateaus
    // (converged), heavy noise peaks then degrades.
    let scenarios = [
        ("perfect crowd, restaurants", "restaurants", 0.0),
        ("15% crowd error, citations", "citations", 0.15),
        ("25% crowd error, products", "products", 0.25),
    ];
    for (label, name, err) in scenarios {
        let ds = datagen::by_name(
            name,
            datagen::GenConfig { scale: opts.scale, seed: opts.seed },
        )
        .unwrap();
        let (task, gold) = make_task(&ds);
        let mut platform = make_platform(&ds, err, opts.seed);
        // Learn over a random slice of the Cartesian product so every
        // scenario runs in seconds regardless of dataset size.
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut pairs = Vec::new();
        for a in 0..task.table_a.len() as u32 {
            for b in 0..task.table_b.len() as u32 {
                pairs.push(crowd::PairKey::new(a, b));
            }
        }
        use rand::seq::SliceRandom;
        pairs.shuffle(&mut rng);
        pairs.truncate(20_000);
        for &(s, _) in &task.seeds {
            if !pairs.contains(&s) {
                pairs.push(s);
            }
        }
        let cand = CandidateSet::build(&task, pairs);
        let seeds: Vec<(Vec<f64>, bool)> = task
            .seeds
            .iter()
            .map(|&(k, l)| (task.vectorize(k), l))
            .collect();
        let cfg = MatcherConfig::default();
        let out = run_active_learning(
            &cand,
            &seeds,
            &mut platform,
            &gold,
            &cfg,
            &mut rng,
            Threads::auto(),
        );
        let smoothed = smooth(&out.conf_history, cfg.stopping.window);
        println!("{label}");
        println!("  iterations: {}, stop: {:?}", out.iterations, out.stop);
        println!("  conf (smoothed): {}", sparkline(&smoothed));
        let series: Vec<String> = smoothed.iter().map(|v| format!("{v:.3}")).collect();
        println!("  series: {}\n", series.join(" "));
    }
    println!("Paper Fig. 3: (a) converged confidence plateaus within ±ε for 20");
    println!("iterations; (b) near-absolute confidence ≥ 1−ε for 3 iterations, or a");
    println!("peak followed by degradation detected over two 15-iteration windows.");
}
