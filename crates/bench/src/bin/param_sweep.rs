//! Reproduces the **§9.4 "Evaluating and Setting System Parameters"**
//! analysis: Corleone should be robust to the number of candidate rules
//! `k` (down to 5), the rule-precision threshold `P_min` (0.9–0.99), and
//! the active-learning batch size `q`.

use bench::{dataset, dollars, make_platform, make_task, mean, parse_args, pct, render_table};
use corleone::{CorleoneConfig, Engine};

fn run_with(
    name: &str,
    opts: &bench::ExpOptions,
    cfg: CorleoneConfig,
) -> (f64, f64) {
    let mut f1s = vec![];
    let mut costs = vec![];
    for run in 0..opts.runs {
        let ds = dataset(name, opts, run);
        let (task, gold) = make_task(&ds);
        let mut platform = make_platform(&ds, opts.error_rate, opts.seed + run as u64);
        let engine = Engine::new(cfg).with_seed(opts.seed + 1000 * run as u64);
        let report = engine
            .session(&task)
            .platform(&mut platform)
            .oracle(&gold)
            .gold(gold.matches())
            .run();
        f1s.push(report.final_true.expect("gold").f1);
        costs.push(report.total_cost_cents);
    }
    (mean(&f1s), mean(&costs))
}

fn main() {
    let opts = parse_args();
    // Parameter sweeps multiply runtime; default to one dataset unless
    // the user asked for specific ones.
    let name = opts.datasets.first().cloned().unwrap_or_else(|| "citations".into());
    println!(
        "Parameter robustness (§9.4) on {name} (scale {}, {} runs, {}% error)\n",
        opts.scale,
        opts.runs,
        opts.error_rate * 100.0
    );
    let base = bench::experiment_config();

    let mut rows = Vec::new();
    for k in [5usize, 10, 20] {
        let mut cfg = base;
        cfg.blocker.k_rules = k;
        cfg.estimator.k_rules = k;
        cfg.locator.k_rules = k;
        let (f1, cost) = run_with(&name, &opts, cfg);
        rows.push(vec![format!("k_rules = {k}"), pct(f1), dollars(cost)]);
    }
    for p_min in [0.90, 0.95, 0.99] {
        let mut cfg = base;
        cfg.blocker.p_min = p_min;
        let (f1, cost) = run_with(&name, &opts, cfg);
        rows.push(vec![format!("P_min = {p_min}"), pct(f1), dollars(cost)]);
    }
    for q in [10usize, 20, 40] {
        let mut cfg = base;
        cfg.matcher.batch_size = q;
        let (f1, cost) = run_with(&name, &opts, cfg);
        rows.push(vec![format!("q = {q}"), pct(f1), dollars(cost)]);
    }
    println!("{}", render_table(&["Setting", "F1", "Cost"], &rows));
    println!("\nPaper: k can drop to 5 without hurting accuracy; P_min can vary over");
    println!("0.9-0.99 with no noticeable effect (rules are either very precise or");
    println!("clearly bad); q = 20 balances crowd overhead and informativeness.");
}
