//! Reproduces **Table 2**: overall performance of Corleone vs. Baseline 1
//! (developer blocking + random training of the same size as Corleone's
//! label budget) vs. Baseline 2 (20% of the candidate set as training),
//! per dataset: P, R, F1, crowd cost, and pairs labeled — averaged over
//! `--runs` independent runs like the paper's three weekly runs.

use baselines::{baseline1, baseline2};
use bench::{dataset, dollars, make_task, mean, parse_args, pct, render_table, run_corleone};

fn main() {
    let opts = parse_args();
    println!(
        "Table 2: Corleone vs traditional solutions (scale {}, {} runs, {}% crowd error)\n",
        opts.scale,
        opts.runs,
        opts.error_rate * 100.0
    );
    let mut rows: Vec<Vec<String>> = Vec::new();
    for name in &opts.datasets {
        let mut c_p = vec![];
        let mut c_r = vec![];
        let mut c_f1 = vec![];
        let mut c_cost = vec![];
        let mut c_pairs = vec![];
        let mut b1_p = vec![];
        let mut b1_r = vec![];
        let mut b1_f1 = vec![];
        let mut b2_p = vec![];
        let mut b2_r = vec![];
        let mut b2_f1 = vec![];
        for run in 0..opts.runs {
            let (report, ds) = run_corleone(name, &opts, run);
            let t = report.final_true.expect("gold supplied");
            c_p.push(t.precision);
            c_r.push(t.recall);
            c_f1.push(t.f1);
            c_cost.push(report.total_cost_cents);
            c_pairs.push(report.total_pairs_labeled as f64);

            // Baselines use the same dataset instance and gold labels.
            let (task, gold) = make_task(&ds);
            let n_train = report.total_pairs_labeled as usize;
            let b1 = baseline1::run(&task, name, &gold, n_train, opts.seed + run as u64);
            b1_p.push(b1.prf.precision);
            b1_r.push(b1.prf.recall);
            b1_f1.push(b1.prf.f1);
            let b2 = baseline2::run(&task, name, &gold, opts.seed + run as u64);
            b2_p.push(b2.prf.precision);
            b2_r.push(b2.prf.recall);
            b2_f1.push(b2.prf.f1);
        }
        let _ = dataset(name, &opts, 0);
        rows.push(vec![
            name.clone(),
            pct(mean(&c_p)),
            pct(mean(&c_r)),
            pct(mean(&c_f1)),
            dollars(mean(&c_cost)),
            format!("{:.0}", mean(&c_pairs)),
            pct(mean(&b1_p)),
            pct(mean(&b1_r)),
            pct(mean(&b1_f1)),
            pct(mean(&b2_p)),
            pct(mean(&b2_r)),
            pct(mean(&b2_f1)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Dataset", "P", "R", "F1", "Cost", "#Pairs", "B1-P", "B1-R", "B1-F1", "B2-P",
                "B2-R", "B2-F1",
            ],
            &rows
        )
    );
    println!("Paper (real data, real crowd):");
    println!("  restaurants  Corleone 97.0/96.1/96.5 $9.2 274   | B1 10.0/6.1/7.6    | B2 99.2/93.8/96.4");
    println!("  citations    Corleone 89.9/94.3/92.1 $69.5 2082 | B1 90.4/84.3/87.1  | B2 93.0/91.1/92.0");
    println!("  products     Corleone 91.5/87.4/89.3 $256.8 3205| B1 92.9/26.6/40.5  | B2 95.0/54.8/69.5");
    println!("Shape to check: Corleone >> B1 everywhere; Corleone ~ B2 on easy sets; Corleone > B2 on products.");
}
