//! Ablation of the §5.3 stopping-rule design choice: compare the
//! confidence-pattern stopper against fixed-iteration training (too few /
//! far too many iterations).
//!
//! The paper's claim: stopping at the confidence plateau gets peak
//! accuracy; training longer wastes money and — under a noisy crowd —
//! can *decrease* accuracy.

use bench::{dataset, dollars, make_platform, make_task, mean, parse_args, pct, render_table};
use corleone::{run_active_learning, CandidateSet, CorleoneConfig, StoppingConfig, Threads};
use crowd::TruthOracle;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let mut opts = parse_args();
    if opts.error_rate < 0.12 {
        opts.error_rate = 0.15; // over-training hurts most under noise
    }
    let name = opts.datasets.first().cloned().unwrap_or_else(|| "products".into());
    println!(
        "Stopping-rule ablation on {name} (scale {}, {} runs, {:.0}% crowd error)\n",
        opts.scale,
        opts.runs,
        opts.error_rate * 100.0
    );

    // never_stop pushes min_iterations past max_iterations so only the
    // hard cap ends the loop.
    type Tweak = Box<dyn Fn(&mut corleone::MatcherConfig)>;
    let variants: Vec<(&str, Tweak)> = vec![
        ("paper stopping rules", Box::new(|_m| {})),
        (
            "fixed 5 iterations",
            Box::new(|m| {
                m.max_iterations = 5;
                m.stopping.min_iterations = 99;
            }),
        ),
        (
            "fixed 80 iterations",
            Box::new(|m| {
                m.max_iterations = 80;
                m.stopping = StoppingConfig { min_iterations: 99, ..m.stopping };
                m.stopping.n_converged = 999;
                m.stopping.n_high = 999;
                m.stopping.n_degrade = 999;
            }),
        ),
    ];

    let mut rows = Vec::new();
    for (label, tweak) in &variants {
        let mut f1s = vec![];
        let mut costs = vec![];
        let mut iters = vec![];
        for run in 0..opts.runs {
            let ds = dataset(&name, &opts, run);
            let (task, gold) = make_task(&ds);
            let mut platform = make_platform(&ds, opts.error_rate, opts.seed + run as u64);
            let mut rng = StdRng::seed_from_u64(opts.seed + run as u64);
            let mut pairs = Vec::new();
            for a in 0..task.table_a.len() as u32 {
                for b in 0..task.table_b.len() as u32 {
                    pairs.push(crowd::PairKey::new(a, b));
                }
            }
            pairs.shuffle(&mut rng);
            pairs.truncate(15_000);
            for &(s, _) in &task.seeds {
                if !pairs.contains(&s) {
                    pairs.push(s);
                }
            }
            let cand = CandidateSet::build(&task, pairs);
            let seeds: Vec<(Vec<f64>, bool)> = task
                .seeds
                .iter()
                .map(|&(k, l)| (task.vectorize(k), l))
                .collect();
            let mut mcfg = CorleoneConfig::default().matcher;
            tweak(&mut mcfg);
            let cents_before = platform.ledger().total_cents;
            let learn = run_active_learning(
                &cand,
                &seeds,
                &mut platform,
                &gold,
                &mcfg,
                &mut rng,
                Threads::auto(),
            );
            costs.push(platform.ledger().total_cents - cents_before);
            iters.push(learn.iterations as f64);

            let mut tp = 0;
            let mut pp = 0;
            let mut ap = 0;
            for i in 0..cand.len() {
                let a = gold.true_label(cand.pair(i));
                let p = learn.forest.predict(cand.row(i));
                if p {
                    pp += 1;
                    if a {
                        tp += 1;
                    }
                }
                if a {
                    ap += 1;
                }
            }
            let prec = if pp > 0 { tp as f64 / pp as f64 } else { 0.0 };
            let rec = if ap > 0 { tp as f64 / ap as f64 } else { 0.0 };
            f1s.push(corleone::metrics::Prf::new(prec, rec).f1);
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", mean(&iters)),
            pct(mean(&f1s)),
            dollars(mean(&costs)),
        ]);
    }
    println!(
        "{}",
        render_table(&["Variant", "AL iters", "F1", "Training cost"], &rows)
    );
    println!("\nExpected shape (§5.3): the pattern stopper lands near the 80-iteration");
    println!("F1 at a fraction of the cost; 5 iterations undertrains; under heavy");
    println!("noise the long run can even fall below the stopper (degrading pattern).");
}
