//! Reproduces the **§9.3 "Effectiveness of Rule Evaluation"** experiment:
//! the *true* precision of the rules Corleone's crowd evaluation keeps, at
//! each step that uses rules (blocking, estimation/reduction, locating),
//! and the average number of rules used.
//!
//! Paper: blocking rules reach 99.9–99.99% precision; rules found in later
//! steps are 97.5–99.99% precise; the locator uses ~11–17 negative and
//! ~9–16 positive rules on Citations/Products.

use bench::{dataset, make_platform, make_task, mean, parse_args, render_table};
use corleone::ruleeval::{evaluate_rules_jointly, select_top_rules, RuleEvalConfig};
use corleone::{run_active_learning, CandidateSet, CorleoneConfig, Threads};
use crowd::TruthOracle;
use forest::{negative_rules, positive_rules, Rule};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::{HashMap, HashSet};

/// True precision of a rule over the candidate subset it covers.
fn true_precision(
    rule: &Rule,
    coverage: &[usize],
    cand: &CandidateSet,
    gold: &dyn TruthOracle,
) -> f64 {
    if coverage.is_empty() {
        return 1.0;
    }
    let ok = coverage
        .iter()
        .filter(|&&i| gold.true_label(cand.pair(i)) == rule.label)
        .count();
    ok as f64 / coverage.len() as f64
}

fn main() {
    let opts = parse_args();
    println!(
        "Rule evaluation quality (§9.3): true precision of kept rules\n(scale {}, {}% crowd error)\n",
        opts.scale,
        opts.error_rate * 100.0
    );
    let cfg = CorleoneConfig::default();
    let mut rows = Vec::new();
    for name in &opts.datasets {
        let ds = dataset(name, &opts, 0);
        let (task, gold) = make_task(&ds);
        let mut platform = make_platform(&ds, opts.error_rate, opts.seed);
        let mut rng = StdRng::seed_from_u64(opts.seed);

        // Bounded random slice of A×B (same trick as the other §9.3 bins).
        let mut pairs = Vec::new();
        for a in 0..task.table_a.len() as u32 {
            for b in 0..task.table_b.len() as u32 {
                pairs.push(crowd::PairKey::new(a, b));
            }
        }
        pairs.shuffle(&mut rng);
        pairs.truncate(30_000);
        for &(s, _) in &task.seeds {
            if !pairs.contains(&s) {
                pairs.push(s);
            }
        }
        let cand = CandidateSet::build(&task, pairs);
        let seeds: Vec<(Vec<f64>, bool)> = task
            .seeds
            .iter()
            .map(|&(k, l)| (task.vectorize(k), l))
            .collect();
        let learn =
            run_active_learning(
                &cand,
                &seeds,
                &mut platform,
                &gold,
                &cfg.matcher,
                &mut rng,
                Threads::auto(),
            );
        let known: HashMap<usize, bool> = learn.crowd_labels().collect();
        let known_pos: HashSet<usize> =
            known.iter().filter_map(|(&i, &l)| l.then_some(i)).collect();
        let known_neg: HashSet<usize> =
            known.iter().filter_map(|(&i, &l)| (!l).then_some(i)).collect();

        let mut audit = |rules: Vec<Rule>, opposite: &HashSet<usize>| -> (usize, Vec<f64>) {
            let scored = select_top_rules(
                rules,
                &cand,
                None,
                opposite,
                cfg.blocker.k_rules,
                Threads::auto(),
            );
            let mut pool = known.clone();
            let kept: Vec<_> = evaluate_rules_jointly(
                scored,
                &cand,
                &mut platform,
                &gold,
                &RuleEvalConfig::default(),
                &mut rng,
                &mut pool,
            )
            .into_iter()
            .filter(|e| e.kept)
            .collect();
            let precisions: Vec<f64> = kept
                .iter()
                .map(|e| true_precision(&e.rule, &e.coverage, &cand, &gold))
                .collect();
            (kept.len(), precisions)
        };

        let (n_neg, p_neg) = audit(negative_rules(&learn.forest), &known_pos);
        let (n_pos, p_pos) = audit(positive_rules(&learn.forest), &known_neg);

        let fmt = |ps: &[f64]| {
            if ps.is_empty() {
                "-".to_string()
            } else {
                let lo = ps.iter().cloned().fold(f64::INFINITY, f64::min);
                format!("{:.2}% (min {:.2}%)", mean(ps) * 100.0, lo * 100.0)
            }
        };
        rows.push(vec![
            name.clone(),
            n_neg.to_string(),
            fmt(&p_neg),
            n_pos.to_string(),
            fmt(&p_pos),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Dataset", "#Neg kept", "Neg precision", "#Pos kept", "Pos precision"],
            &rows
        )
    );
    println!("\nPaper: blocking rules 99.9-99.99% precise; later-step rules 97.5-99.99%;");
    println!("citations avg 11.33 negative + 16.33 positive rules, products 17.33 + 9.33.");
}
