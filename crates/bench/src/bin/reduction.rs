//! Reproduces the **§9.3 "Effectiveness of Reduction"** experiment: the
//! iterative process (locate difficult pairs → train a dedicated matcher)
//! should improve F1 overall and substantially improve recall *on the
//! difficult-to-match subset*.
//!
//! This binary drives the components directly: it trains the iteration-1
//! matcher, locates the difficult pairs, trains the iteration-2 matcher on
//! them, and compares accuracy on the difficult subset before and after.

use bench::{dataset, make_platform, make_task, parse_args, pct, render_table};
use corleone::ruleeval::RuleEvalConfig;
use corleone::{
    locate_difficult_pairs, run_active_learning, CandidateSet, CorleoneConfig, RunEnv, Threads,
};
use crowd::TruthOracle;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

fn prf(
    cand: &CandidateSet,
    idx: &[usize],
    preds: &dyn Fn(usize) -> bool,
    gold: &dyn TruthOracle,
) -> (f64, f64, f64) {
    let mut tp = 0;
    let mut pp = 0;
    let mut ap = 0;
    for &i in idx {
        let p = preds(i);
        let a = gold.true_label(cand.pair(i));
        if p {
            pp += 1;
        }
        if a {
            ap += 1;
        }
        if p && a {
            tp += 1;
        }
    }
    let precision = if pp > 0 { tp as f64 / pp as f64 } else { 0.0 };
    let recall = if ap > 0 { tp as f64 / ap as f64 } else { 0.0 };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    (precision, recall, f1)
}

fn main() {
    let mut opts = parse_args();
    // A near-perfect crowd lets iteration 1 learn everything, leaving no
    // difficult region to measure; the paper's real crowds were noisier.
    if opts.error_rate < 0.12 {
        opts.error_rate = 0.12;
    }
    println!(
        "Effectiveness of reduction (§9.3) — accuracy on the difficult subset\n(scale {}, {}% crowd error)\n",
        opts.scale,
        opts.error_rate * 100.0
    );
    let cfg = CorleoneConfig::default();
    let mut rows = Vec::new();
    for name in &opts.datasets {
        let ds = dataset(name, &opts, 0);
        let (task, gold) = make_task(&ds);
        let mut platform = make_platform(&ds, opts.error_rate, opts.seed);
        let mut rng = StdRng::seed_from_u64(opts.seed);

        // Work over a bounded random slice of A×B so the experiment runs
        // in seconds at any scale (difficult-pair dynamics are unchanged).
        let mut pairs = Vec::new();
        for a in 0..task.table_a.len() as u32 {
            for b in 0..task.table_b.len() as u32 {
                pairs.push(crowd::PairKey::new(a, b));
            }
        }
        pairs.shuffle(&mut rng);
        pairs.truncate(30_000);
        for &(s, _) in &task.seeds {
            if !pairs.contains(&s) {
                pairs.push(s);
            }
        }
        let cand = CandidateSet::build(&task, pairs);
        let seeds: Vec<(Vec<f64>, bool)> = task
            .seeds
            .iter()
            .map(|&(k, l)| (task.vectorize(k), l))
            .collect();

        // Iteration 1.
        let m1 = run_active_learning(
            &cand,
            &seeds,
            &mut platform,
            &gold,
            &cfg.matcher,
            &mut rng,
            Threads::auto(),
        );
        let known: HashMap<usize, bool> = m1.crowd_labels().collect();
        let within: Vec<usize> = (0..cand.len()).collect();
        let located = locate_difficult_pairs(
            &cand,
            &within,
            &m1.forest,
            &known,
            &mut platform,
            &gold,
            &corleone::LocatorConfig { min_difficult: 20, ..Default::default() },
            &RuleEvalConfig::default(),
            &mut rng,
            &RunEnv::default(),
        );
        let Some(difficult) = located.difficult else {
            println!(
                "{name}: locator terminated ({}); nothing to measure\n",
                located.report.termination.unwrap_or_default()
            );
            continue;
        };

        // Accuracy of M1 on the difficult subset.
        let before = prf(&cand, &difficult, &|i| m1.forest.predict(cand.row(i)), &gold);

        // Iteration 2: dedicated matcher on the difficult pairs.
        let sub = cand.subset(&difficult);
        let m2 = run_active_learning(
            &sub,
            &seeds,
            &mut platform,
            &gold,
            &cfg.matcher,
            &mut rng,
            Threads::auto(),
        );
        let sub_pred: Vec<bool> = (0..sub.len()).map(|j| m2.forest.predict(sub.row(j))).collect();
        let pos_in_sub: HashMap<usize, bool> = difficult
            .iter()
            .enumerate()
            .map(|(j, &g)| (g, sub_pred[j]))
            .collect();
        let after = prf(&cand, &difficult, &|i| pos_in_sub[&i], &gold);

        rows.push(vec![
            name.clone(),
            difficult.len().to_string(),
            pct(before.0),
            pct(before.1),
            pct(before.2),
            pct(after.0),
            pct(after.1),
            pct(after.2),
            format!("{:+.1}", (after.2 - before.2) * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Dataset", "#Difficult", "P(M1)", "R(M1)", "F1(M1)", "P(M2)", "R(M2)", "F1(M2)",
                "ΔF1",
            ],
            &rows
        )
    );
    println!("\nPaper: on the difficult subset recall improves 3.3% (Citations) and");
    println!("11.8% (Products), for F1 gains of 2.1% and 9.2%; overall F1 +0.4-3.3%.");
}
