//! Reproduces the **§9.3 "Estimating Matching Accuracy"** experiment:
//! how many labeled examples the naive method of §6.1 would need to
//! estimate P and R within the target margin, vs. what Corleone's
//! probe-eval-reduce estimator actually used.
//!
//! Paper: "For Restaurants, the baseline method needs 100,000+ examples
//! ... while ours uses just 170"; 50% / 92% fewer for Citations /
//! Products.

use bench::{mean, parse_args, render_table, run_corleone};
use crowd::stats::{required_sample_size, z_for_confidence};

fn main() {
    let opts = parse_args();
    println!(
        "Estimator cost vs naive sampling (scale {}, {} runs, eps = 0.05)\n",
        opts.scale, opts.runs
    );
    let z = z_for_confidence(0.95);
    let eps = 0.05;
    let mut rows = Vec::new();
    for name in &opts.datasets {
        let mut ours = vec![];
        let mut naive = vec![];
        let mut densities = vec![];
        for run in 0..opts.runs {
            let (report, _ds) = run_corleone(name, &opts, run);
            let last = report.iterations.last().expect("at least one iteration");
            ours.push(last.estimate.pairs_labeled as f64);

            // Naive method (§6.1) on the same population: the sample must
            // contain enough actual positives for the recall margin and
            // enough predicted positives for the precision margin, drawn
            // uniformly from the post-blocking candidate set.
            let population = report.blocker.umbrella_size.max(1);
            // Actual positives surviving blocking: recall × |gold|.
            let n_matches = (report.blocking_recall.unwrap_or(1.0)
                * _ds.gold.len() as f64)
                .max(1.0);
            let density = n_matches / population as f64;
            densities.push(density);
            let r_est = last.true_prf.map(|t| t.recall).unwrap_or(0.8).clamp(0.05, 0.95);
            let p_est = last
                .true_prf
                .map(|t| t.precision)
                .unwrap_or(0.9)
                .clamp(0.05, 0.95);
            let n_ap_needed = required_sample_size(r_est, n_matches as usize, z, eps);
            let labels_recall = (n_ap_needed as f64 / density).ceil();
            let pp = report.predicted_matches.len().max(1);
            let pp_density = pp as f64 / population as f64;
            let n_pp_needed = required_sample_size(p_est, pp, z, eps);
            let labels_precision = (n_pp_needed as f64 / pp_density).ceil();
            naive.push(labels_recall.max(labels_precision).min(population as f64));
        }
        let saving = 1.0 - mean(&ours) / mean(&naive).max(1.0);
        rows.push(vec![
            name.clone(),
            format!("{:.4}%", mean(&densities) * 100.0),
            format!("{:.0}", mean(&naive)),
            format!("{:.0}", mean(&ours)),
            format!("{:.0}%", saving * 100.0),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Dataset", "Pos density", "Naive #labels", "Corleone #labels", "Saved"],
            &rows
        )
    );
    println!("\nPaper: Restaurants 100,000+ → 170; Citations 50% fewer; Products 92% fewer.");
    println!("Shape: the skewier the dataset, the bigger the saving from reduction rules.");
}
