//! Ablation of the paper's model choice (§4.1): random forest vs.
//! logistic regression on the *same* crowd-labeled training data.
//!
//! The paper uses forests "because blocking rules can be naturally
//! extracted from them". This experiment quantifies the other side of the
//! ledger: raw matching accuracy. Both models train on exactly the
//! labeled set the forest's active-learning run gathered; the table also
//! counts the machine-readable rules each model offers the Blocker /
//! Estimator / Locator (a linear model offers none — the capability the
//! whole hands-off pipeline is built on).

use bench::{dataset, make_platform, make_task, mean, parse_args, pct, render_table};
use corleone::{run_active_learning, CandidateSet, CorleoneConfig, Threads};
use crowd::TruthOracle;
use forest::{extract_rules, Dataset, LogRegConfig, LogisticRegression};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn main() {
    let opts = parse_args();
    println!(
        "Model ablation: random forest vs logistic regression (scale {}, {} runs, {:.0}% error)\n",
        opts.scale,
        opts.runs,
        opts.error_rate * 100.0
    );
    let mut rows = Vec::new();
    for name in &opts.datasets {
        let mut rf_f1 = vec![];
        let mut lr_f1 = vec![];
        let mut n_rules = vec![];
        for run in 0..opts.runs {
            let ds = dataset(name, &opts, run);
            let (task, gold) = make_task(&ds);
            let mut platform = make_platform(&ds, opts.error_rate, opts.seed + run as u64);
            let mut rng = StdRng::seed_from_u64(opts.seed + run as u64);
            let mut pairs = Vec::new();
            for a in 0..task.table_a.len() as u32 {
                for b in 0..task.table_b.len() as u32 {
                    pairs.push(crowd::PairKey::new(a, b));
                }
            }
            pairs.shuffle(&mut rng);
            pairs.truncate(15_000);
            for &(s, _) in &task.seeds {
                if !pairs.contains(&s) {
                    pairs.push(s);
                }
            }
            let cand = CandidateSet::build(&task, pairs);
            let seeds: Vec<(Vec<f64>, bool)> = task
                .seeds
                .iter()
                .map(|&(k, l)| (task.vectorize(k), l))
                .collect();
            let cfg = CorleoneConfig::default();
            let learn = run_active_learning(
                &cand,
                &seeds,
                &mut platform,
                &gold,
                &cfg.matcher,
                &mut rng,
                Threads::auto(),
            );
            n_rules.push(extract_rules(&learn.forest).len() as f64);

            // Logistic regression on exactly the same labeled data.
            let mut train = Dataset::new(cand.n_features());
            for (x, l) in &seeds {
                train.push(x, *l);
            }
            for (idx, label) in learn.crowd_labels() {
                train.push(cand.row(idx), label);
            }
            let lr = LogisticRegression::train(&train, &LogRegConfig::default());

            let f1_of = |predict: &dyn Fn(&[f64]) -> bool| {
                let mut tp = 0;
                let mut pp = 0;
                let mut ap = 0;
                for i in 0..cand.len() {
                    let a = gold.true_label(cand.pair(i));
                    if predict(cand.row(i)) {
                        pp += 1;
                        if a {
                            tp += 1;
                        }
                    }
                    if a {
                        ap += 1;
                    }
                }
                let p = if pp > 0 { tp as f64 / pp as f64 } else { 0.0 };
                let r = if ap > 0 { tp as f64 / ap as f64 } else { 0.0 };
                corleone::metrics::Prf::new(p, r).f1
            };
            rf_f1.push(f1_of(&|x| learn.forest.predict(x)));
            lr_f1.push(f1_of(&|x| lr.predict(x)));
        }
        rows.push(vec![
            name.clone(),
            pct(mean(&rf_f1)),
            pct(mean(&lr_f1)),
            format!("{:.0}", mean(&n_rules)),
            "0".to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Dataset", "Forest F1", "LogReg F1", "Forest rules", "LogReg rules"],
            &rows
        )
    );
    println!("\nThe forest must be competitive on accuracy while being the only model");
    println!("that yields the machine-readable rules the Blocker (§4), Estimator (§6),");
    println!("and Locator (§7) are built on — the paper's §4.1 design argument.");
}
