//! Reproduces **Table 3**: blocking results — Cartesian product size,
//! umbrella-set size, blocking recall, crowd cost, and pairs labeled —
//! plus the developer-blocker comparison of §9.2.

use baselines::dev_blocker;
use bench::{dollars, make_task, mean, parse_args, pct, render_table, run_corleone};
use corleone::metrics::blocking_recall;
use crowd::PairKey;
use std::collections::HashSet;

fn main() {
    let opts = parse_args();
    println!(
        "Table 3: blocking results (scale {}, {} runs, {}% crowd error)\n",
        opts.scale,
        opts.runs,
        opts.error_rate * 100.0
    );
    let mut rows = Vec::new();
    for name in &opts.datasets {
        let mut umbrella = vec![];
        let mut recall = vec![];
        let mut cost = vec![];
        let mut pairs = vec![];
        let mut n_rules = vec![];
        let mut cartesian = 0u64;
        let mut triggered = false;
        let mut dev_recall = vec![];
        let mut dev_size = vec![];
        for run in 0..opts.runs {
            let (report, ds) = run_corleone(name, &opts, run);
            cartesian = report.blocker.cartesian;
            triggered = report.blocker.triggered;
            umbrella.push(report.blocker.umbrella_size as f64);
            recall.push(report.blocking_recall.unwrap_or(1.0));
            cost.push(report.blocker.cost_cents);
            pairs.push(report.blocker.pairs_labeled as f64);
            n_rules.push(report.blocker.rules_applied.len() as f64);

            // Developer blocker comparison (§9.2).
            let (task, gold) = make_task(&ds);
            let kept = dev_blocker::apply(&task, dev_blocker::rule_for(name));
            let kept_set: HashSet<PairKey> = kept.iter().copied().collect();
            dev_recall.push(blocking_recall(&kept_set, gold.matches()));
            dev_size.push(kept.len() as f64);
        }
        rows.push(vec![
            name.clone(),
            format!("{:.2}M", cartesian as f64 / 1e6),
            if triggered { format!("{:.1}K", mean(&umbrella) / 1e3) } else { "no blocking".into() },
            pct(mean(&recall)),
            dollars(mean(&cost)),
            format!("{:.0}", mean(&pairs)),
            format!("{:.1}", mean(&n_rules)),
            pct(mean(&dev_recall)),
            format!("{:.1}K", mean(&dev_size) / 1e3),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Dataset", "Cartesian", "Umbrella", "Recall", "Cost", "#Pairs", "#Rules",
                "Dev-Recall", "Dev-Size",
            ],
            &rows
        )
    );
    println!("Paper: restaurants 176.4K / no blocking / 100% / $0 / 0");
    println!("       citations  168.1M / 38.2K / 99% / $7.2 / 214  (developer: 100% recall, 202.5K pairs)");
    println!("       products    56.4M / 173.4K / 92% / $22 / 333  (developer: 90% recall)");
    println!("Shape: blocking triggers only on citations/products; 1-3 rules; high recall at low cost.");
}
