//! Quick end-to-end smoke run: one Corleone run per dataset at the given
//! scale, printing headline numbers. Not a paper table — a sanity tool.

use bench::{dollars, parse_args, pct, run_corleone};

fn main() {
    let opts = parse_args();
    for name in &opts.datasets {
        let t0 = std::time::Instant::now();
        let (report, ds) = run_corleone(name, &opts, 0);
        let stats = ds.stats();
        let t = report.final_true.expect("gold supplied");
        let e = report.final_estimate.as_ref().expect("estimate present");
        println!(
            "{name}: |A|={} |B|={} gold={} | blocked={} umbrella={} recall={} | \
             iters={} | true P/R/F1 = {}/{}/{} | est F1 = {} (±p {:.3} ±r {:.3}) | \
             cost {} labels {} | {:.1}s",
            stats.n_a,
            stats.n_b,
            stats.n_matches,
            report.blocker.triggered,
            report.blocker.umbrella_size,
            report
                .blocking_recall
                .map(pct)
                .unwrap_or_else(|| "-".into()),
            report.iterations.len(),
            pct(t.precision),
            pct(t.recall),
            pct(t.f1),
            pct(e.f1),
            e.eps_p,
            e.eps_r,
            dollars(report.total_cost_cents),
            report.total_pairs_labeled,
            t0.elapsed().as_secs_f64(),
        );
    }
}
