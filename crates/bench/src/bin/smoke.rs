//! Quick end-to-end smoke run: one Corleone run per dataset at the given
//! scale, printing headline numbers. Not a paper table — a sanity tool.
//!
//! With `--fault-expiry`/`--fault-abandon`/`--fault-outage` the simulated
//! marketplace injects failures; the run then reports its `termination`
//! label and fault counters, or a typed error if it could not complete —
//! never a panic. CI uses this as the fault-injection smoke test.
//!
//! With `--checkpoint-dir` the run writes crash-safe snapshots and the
//! summary line reports how many; with `--resume-from` it continues a
//! previous run and reports the iteration it resumed from. `--emit-json`
//! writes each run's `deterministic_json` next to the summary so CI can
//! diff a resumed run against an uninterrupted reference.

use bench::{dollars, parse_args, pct, try_run_corleone};

fn main() {
    let opts = parse_args();
    let mut failed = false;
    for name in &opts.datasets {
        let t0 = std::time::Instant::now();
        let (result, ds) = try_run_corleone(name, &opts, 0);
        let stats = ds.stats();
        let report = match result {
            Ok(r) => r,
            Err(e) => {
                // A typed failure is a legitimate outcome under faults;
                // report it and move on.
                println!(
                    "{name}: |A|={} |B|={} gold={} | run failed: {e} | {:.1}s",
                    stats.n_a,
                    stats.n_b,
                    stats.n_matches,
                    t0.elapsed().as_secs_f64(),
                );
                failed = true;
                continue;
            }
        };
        let truth = report
            .final_true
            .map(|t| format!("{}/{}/{}", pct(t.precision), pct(t.recall), pct(t.f1)))
            .unwrap_or_else(|| "-".into());
        let est = report
            .final_estimate
            .as_ref()
            .map(|e| format!("{} (±p {:.3} ±r {:.3})", pct(e.f1), e.eps_p, e.eps_r))
            .unwrap_or_else(|| "-".into());
        let fs = &report.perf.faults;
        let fault_note = if fs.any() {
            format!(
                " | faults: {} expired {} abandoned {} outages, {} reposts {} failed",
                fs.hits_expired, fs.assignments_abandoned, fs.outages, fs.reposts, fs.hits_failed,
            )
        } else {
            String::new()
        };
        let ckpt_note = match (report.perf.snapshots_written, report.perf.resumed_from_iteration) {
            (0, None) => String::new(),
            (n, None) => format!(" | snapshots={n}"),
            (n, Some(it)) => format!(" | snapshots={n} resumed-from-iter={it}"),
        };
        if let Some(dir) = &opts.emit_json {
            if let Err(e) = std::fs::create_dir_all(dir)
                .and_then(|_| std::fs::write(format!("{dir}/{name}.json"), report.deterministic_json()))
            {
                eprintln!("cannot write {dir}/{name}.json: {e}");
                std::process::exit(1);
            }
        }
        println!(
            "{name}: |A|={} |B|={} gold={} | blocked={} umbrella={} recall={} | \
             iters={} | true P/R/F1 = {truth} | est F1 = {est} | \
             cost {} labels {} | termination={:?}{fault_note}{ckpt_note} | {:.1}s",
            stats.n_a,
            stats.n_b,
            stats.n_matches,
            report.blocker.triggered,
            report.blocker.umbrella_size,
            report
                .blocking_recall
                .map(pct)
                .unwrap_or_else(|| "-".into()),
            report.iterations.len(),
            dollars(report.total_cost_cents),
            report.total_pairs_labeled,
            report.termination,
            t0.elapsed().as_secs_f64(),
        );
    }
    // A typed failure is tolerated when faults were requested — that is
    // the scenario being smoked — but a clean run must always succeed.
    if failed && !opts.fault_config().enabled() {
        std::process::exit(1);
    }
}
