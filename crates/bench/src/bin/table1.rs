//! Reproduces **Table 1**: dataset statistics (|A|, |B|, # of matches),
//! plus the positive-density skew the estimator discussion (§6.1) relies
//! on.

use bench::{dataset, parse_args, render_table};

fn main() {
    let opts = parse_args();
    println!(
        "Table 1: data sets (scale = {}; paper sizes at --scale 1.0)\n",
        opts.scale
    );
    let rows: Vec<Vec<String>> = opts
        .datasets
        .iter()
        .map(|name| {
            let ds = dataset(name, &opts, 0);
            let st = ds.stats();
            vec![
                name.clone(),
                st.n_a.to_string(),
                st.n_b.to_string(),
                st.n_matches.to_string(),
                format!("{:.1}M", st.cartesian as f64 / 1e6),
                format!("{:.4}%", st.positive_density * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["Dataset", "Table A", "Table B", "# Matches", "A x B", "Density"],
            &rows
        )
    );
    println!("Paper values (scale 1.0): Restaurants 533/331/112, Citations 2616/64263/5347, Products 2554/22074/1154.");
}
