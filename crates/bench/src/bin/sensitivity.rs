//! Reproduces the **§9.3 "Sensitivity Analysis"** experiment: vary the
//! simulated crowd's error rate (0%, 10%, 20%) and report F1 and cost.
//!
//! Paper: with a perfect crowd Corleone performs extremely well; at 10%
//! error F1 drops only 2-4% while cost rises up to $20; at 20% error F1
//! dips a further 1-10% (28% on Restaurants) and cost shoots up $250-500.

use bench::{dollars, mean, parse_args, pct, render_table, ExpOptions};

fn main() {
    let opts = parse_args();
    println!(
        "Sensitivity to crowd error rate (scale {}, {} runs)\n",
        opts.scale, opts.runs
    );
    let error_rates = [0.0, 0.10, 0.20];
    let mut rows = Vec::new();
    for name in &opts.datasets {
        let mut cells = vec![name.clone()];
        let mut baseline_f1 = 0.0;
        let mut baseline_cost = 0.0;
        for (ei, &err) in error_rates.iter().enumerate() {
            let run_opts = ExpOptions { error_rate: err, ..opts.clone() };
            let mut f1s = vec![];
            let mut costs = vec![];
            for run in 0..opts.runs {
                let (report, _) = bench::run_corleone(name, &run_opts, run);
                f1s.push(report.final_true.expect("gold").f1);
                costs.push(report.total_cost_cents);
            }
            let f1 = mean(&f1s);
            let cost = mean(&costs);
            if ei == 0 {
                baseline_f1 = f1;
                baseline_cost = cost;
                cells.push(pct(f1));
                cells.push(dollars(cost));
            } else {
                cells.push(format!("{} ({:+.1})", pct(f1), (f1 - baseline_f1) * 100.0));
                cells.push(format!(
                    "{} ({:+.0}%)",
                    dollars(cost),
                    (cost - baseline_cost) / baseline_cost.max(1.0) * 100.0
                ));
            }
        }
        rows.push(cells);
    }
    println!(
        "{}",
        render_table(
            &["Dataset", "F1@0%", "Cost@0%", "F1@10%", "Cost@10%", "F1@20%", "Cost@20%"],
            &rows
        )
    );
    println!("\nPaper shape: small error-rate changes barely move F1; 10% error costs a");
    println!("few percent F1 and modest extra dollars; 20% error hurts F1 noticeably");
    println!("(worst on the smallest dataset) and drives cost up sharply.");
}
