#![forbid(unsafe_code)]
//! # bench — the experiment harness that regenerates the paper's tables
//! and figures
//!
//! Each binary under `src/bin/` reproduces one table or figure of the
//! paper's evaluation (§9); this library holds the shared glue: dataset →
//! task conversion, simulated-crowd construction, multi-run averaging, and
//! plain-text table rendering.
//!
//! All binaries accept the same flags:
//!
//! ```text
//! --scale <f>         dataset scale factor (default 0.1; 1.0 = paper sizes)
//! --runs <n>          independent runs to average (default 3, like the paper)
//! --error <f>         mean worker error rate (default 0.05)
//! --seed <n>          base RNG seed (default 42)
//! --datasets a,b      comma-separated subset of restaurants,citations,products
//! --fault-expiry <f>  per-HIT expiry probability (default 0: no faults)
//! --fault-abandon <f> per-assignment abandonment probability (default 0)
//! --fault-outage <f>  per-posting transient-outage probability (default 0)
//! --checkpoint-dir <d>   write crash-safe run snapshots into this directory
//! --checkpoint-every <n> snapshot every n engine iterations (default 1)
//! --checkpoint-keep <n>  retain the last n snapshots, 0 = all (default 3)
//! --resume-from <path>   resume from a snapshot instead of starting fresh
//! --emit-json <d>        write each run's deterministic_json to <d>/<dataset>.json
//! ```

use corleone::error::CorleoneError;
use corleone::task::task_from_parts;
use corleone::{BlockerConfig, CorleoneConfig, Engine, MatchTask, RunReport};
use crowd::{CrowdConfig, CrowdPlatform, FaultConfig, GoldOracle, RetryPolicy, WorkerPool};
use datagen::{EmDataset, GenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Parsed common command-line options.
#[derive(Debug, Clone)]
pub struct ExpOptions {
    /// Dataset scale factor (1.0 = the paper's table sizes).
    pub scale: f64,
    /// Independent runs to average.
    pub runs: usize,
    /// Mean worker error rate for the simulated crowd.
    pub error_rate: f64,
    /// Base seed.
    pub seed: u64,
    /// Datasets to run.
    pub datasets: Vec<String>,
    /// Per-HIT expiry probability (0 disables fault injection).
    pub fault_expiry: f64,
    /// Per-assignment abandonment probability.
    pub fault_abandon: f64,
    /// Per-posting transient-outage probability.
    pub fault_outage: f64,
    /// Directory to write run snapshots into (`None` disables
    /// checkpointing).
    pub checkpoint_dir: Option<String>,
    /// Snapshot every this many engine iterations.
    pub checkpoint_every: usize,
    /// Retain only the last N snapshots (0 = keep all).
    pub checkpoint_keep: usize,
    /// Snapshot file to resume the (single) run from.
    pub resume_from: Option<String>,
    /// Directory to write each run's `deterministic_json` into
    /// (`<dir>/<dataset>.json`), for byte-level comparisons in CI.
    pub emit_json: Option<String>,
}

impl Default for ExpOptions {
    fn default() -> Self {
        ExpOptions {
            scale: 0.1,
            runs: 3,
            error_rate: 0.05,
            seed: 42,
            datasets: datagen::DATASET_NAMES.iter().map(|s| s.to_string()).collect(),
            fault_expiry: 0.0,
            fault_abandon: 0.0,
            fault_outage: 0.0,
            checkpoint_dir: None,
            checkpoint_every: 1,
            checkpoint_keep: store::DEFAULT_KEEP_LAST,
            resume_from: None,
            emit_json: None,
        }
    }
}

impl ExpOptions {
    /// The fault configuration the flags describe (all-zero when no
    /// `--fault-*` flag was given, which disables injection entirely).
    pub fn fault_config(&self) -> FaultConfig {
        FaultConfig {
            hit_expiry_prob: self.fault_expiry,
            abandonment_prob: self.fault_abandon,
            outage_prob: self.fault_outage,
            seed: self.seed,
            ..Default::default()
        }
    }
}

/// Parse the common flags from `std::env::args`. Unknown flags abort with
/// a usage message.
pub fn parse_args() -> ExpOptions {
    let mut opts = ExpOptions::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need_value = |i: usize| {
            args.get(i + 1).unwrap_or_else(|| {
                eprintln!("missing value for {}", args[i]);
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--scale" => opts.scale = need_value(i).parse().expect("bad --scale"),
            "--runs" => opts.runs = need_value(i).parse().expect("bad --runs"),
            "--error" => opts.error_rate = need_value(i).parse().expect("bad --error"),
            "--seed" => opts.seed = need_value(i).parse().expect("bad --seed"),
            "--datasets" => {
                opts.datasets = need_value(i).split(',').map(|s| s.to_string()).collect()
            }
            "--fault-expiry" => {
                opts.fault_expiry = need_value(i).parse().expect("bad --fault-expiry")
            }
            "--fault-abandon" => {
                opts.fault_abandon = need_value(i).parse().expect("bad --fault-abandon")
            }
            "--fault-outage" => {
                opts.fault_outage = need_value(i).parse().expect("bad --fault-outage")
            }
            "--checkpoint-dir" => opts.checkpoint_dir = Some(need_value(i).to_string()),
            "--checkpoint-every" => {
                opts.checkpoint_every =
                    need_value(i).parse().expect("bad --checkpoint-every")
            }
            "--checkpoint-keep" => {
                opts.checkpoint_keep = need_value(i).parse().expect("bad --checkpoint-keep")
            }
            "--resume-from" => opts.resume_from = Some(need_value(i).to_string()),
            "--emit-json" => opts.emit_json = Some(need_value(i).to_string()),
            "--help" | "-h" => {
                eprintln!(
                    "flags: --scale <f> --runs <n> --error <f> --seed <n> --datasets a,b,c \
                     --fault-expiry <f> --fault-abandon <f> --fault-outage <f> \
                     --checkpoint-dir <d> --checkpoint-every <n> --checkpoint-keep <n> \
                     --resume-from <path> --emit-json <d>"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    opts
}

/// Generate a dataset by name at the options' scale and seed.
pub fn dataset(name: &str, opts: &ExpOptions, run: usize) -> EmDataset {
    datagen::by_name(
        name,
        GenConfig { scale: opts.scale, seed: opts.seed + run as u64 },
    )
    .unwrap_or_else(|| panic!("unknown dataset {name}"))
}

/// Convert a generated dataset into a `MatchTask` + gold oracle.
pub fn make_task(ds: &EmDataset) -> (MatchTask, GoldOracle) {
    let task = task_from_parts(
        ds.table_a.clone(),
        ds.table_b.clone(),
        &ds.instruction,
        ds.seeds.positive,
        ds.seeds.negative,
    );
    let gold = GoldOracle::from_pairs(ds.gold.iter().copied());
    (task, gold)
}

/// Build the simulated crowd for a dataset: a heterogeneous worker pool
/// around the requested mean error rate, paid the dataset's per-question
/// price.
pub fn make_platform(ds: &EmDataset, error_rate: f64, seed: u64) -> CrowdPlatform {
    make_faulty_platform(ds, error_rate, seed, FaultConfig::default())
}

/// [`make_platform`] with fault injection. A zeroed `faults` is exactly
/// `make_platform` (the fault layer is pay-for-what-you-use).
pub fn make_faulty_platform(
    ds: &EmDataset,
    error_rate: f64,
    seed: u64,
    faults: FaultConfig,
) -> CrowdPlatform {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let pool = if error_rate == 0.0 {
        WorkerPool::perfect(50)
    } else {
        WorkerPool::heterogeneous(50, error_rate, error_rate / 2.0, &mut rng)
    };
    CrowdPlatform::with_faults(
        pool,
        CrowdConfig { price_cents: ds.price_cents, seed, ..Default::default() },
        faults,
        RetryPolicy::default(),
    )
}

/// The Corleone configuration used by the experiments: paper parameters
/// with a laptop-scale blocking threshold.
pub fn experiment_config() -> CorleoneConfig {
    CorleoneConfig {
        blocker: BlockerConfig { t_b: 100_000, ..Default::default() },
        ..Default::default()
    }
}

/// Run Corleone once on a dataset and return the report. Honors the
/// options' `--fault-*` flags; panics if the run fails outright (use
/// [`try_run_corleone`] to handle that).
pub fn run_corleone(name: &str, opts: &ExpOptions, run: usize) -> (RunReport, EmDataset) {
    let (result, ds) = try_run_corleone(name, opts, run);
    (result.unwrap_or_else(|e| panic!("run on {name} failed: {e}")), ds)
}

/// Fallible form of [`run_corleone`]: a run that cannot complete (e.g.
/// under injected faults) comes back as `Err` instead of panicking.
pub fn try_run_corleone(
    name: &str,
    opts: &ExpOptions,
    run: usize,
) -> (Result<RunReport, CorleoneError>, EmDataset) {
    let ds = dataset(name, opts, run);
    let (task, gold) = make_task(&ds);
    let mut platform = make_faulty_platform(
        &ds,
        opts.error_rate,
        opts.seed + run as u64,
        opts.fault_config(),
    );
    let engine = Engine::new(experiment_config()).with_seed(opts.seed + 1000 * run as u64);
    let mut session = engine
        .session(&task)
        .platform(&mut platform)
        .oracle(&gold)
        .gold(gold.matches());
    if let Some(dir) = &opts.checkpoint_dir {
        // One subdirectory per (dataset, run) so multi-dataset sweeps
        // don't interleave their snapshot sequences.
        session = session
            .checkpoint_dir(format!("{dir}/{name}-run{run}"))
            .checkpoint_every(opts.checkpoint_every)
            .checkpoint_keep(opts.checkpoint_keep);
    }
    if let Some(path) = &opts.resume_from {
        session = session.resume_from(path);
    }
    let result = session.try_run();
    (result, ds)
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Render a plain-text table: header row + aligned columns.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    let sep = widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>()
        .join("  ");
    let mut out = String::new();
    out.push_str(&fmt_row(&header));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Format a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Format cents as dollars.
pub fn dollars(cents: f64) -> String {
    format!("${:.1}", cents / 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["name", "f1"],
            &[
                vec!["restaurants".into(), "96.5".into()],
                vec!["x".into(), "7".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("96.5"));
    }

    #[test]
    fn helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(pct(0.965), "96.5");
        assert_eq!(dollars(920.0), "$9.2");
    }

    #[test]
    fn task_and_platform_glue() {
        let opts = ExpOptions { scale: 0.05, runs: 1, ..Default::default() };
        let ds = dataset("restaurants", &opts, 0);
        let (task, gold) = make_task(&ds);
        assert_eq!(task.table_a.len(), ds.table_a.len());
        assert_eq!(gold.n_matches(), ds.gold.len());
        let platform = make_platform(&ds, 0.05, 1);
        assert_eq!(platform.ledger().total_cents, 0.0);
    }
}
