//! Criterion benchmarks for the end-to-end hot paths: pair vectorization
//! (the dominant cost of materializing `C`), parallel blocking-rule
//! application over `A × B`, and crowd vote resolution.

use bench::make_task;
use corleone::source::{CandidateSource, CartesianScan};
use corleone::CandidateSet;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use crowd::voting::{resolve, Scheme};
use crowd::{PairKey, WorkerPool};
use datagen::{products, GenConfig};
use forest::{Op, Predicate, Rule};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_pipeline(c: &mut Criterion) {
    let ds = products::generate(GenConfig { scale: 0.02, seed: 5 });
    let (task, _gold) = make_task(&ds);

    let mut g = c.benchmark_group("pipeline");
    let n_pairs = 2000usize;
    let pairs: Vec<PairKey> = (0..n_pairs as u32)
        .map(|i| PairKey::new(i % task.table_a.len() as u32, i % task.table_b.len() as u32))
        .collect();
    g.throughput(Throughput::Elements(n_pairs as u64));
    g.bench_function("vectorize_2k_product_pairs", |b| {
        b.iter(|| CandidateSet::build(black_box(&task), pairs.clone()))
    });

    // A realistic 2-predicate blocking rule on cheap features.
    let names = task.feature_names();
    let brand_exact = names.iter().position(|n| n == "brand_exact").unwrap();
    let name_jac = names.iter().position(|n| n == "name_jac_w").unwrap();
    let rule = Rule {
        predicates: vec![
            Predicate { feature: brand_exact, op: Op::Le, threshold: 0.5, nan_satisfies: false },
            Predicate { feature: name_jac, op: Op::Le, threshold: 0.2, nan_satisfies: true },
        ],
        label: false,
        tree: 0,
        n_pos: 0,
        n_neg: 0,
    };
    g.throughput(Throughput::Elements(task.cartesian_size()));
    let scan = CartesianScan::new(&task, vec![rule]);
    g.bench_function("block_full_cartesian", |b| {
        b.iter(|| black_box(&scan).generate(corleone::Threads::auto()))
    });
    g.finish();

    let mut g = c.benchmark_group("crowd");
    let pool = WorkerPool::uniform(25, 0.1);
    for (label, scheme) in [
        ("vote_2plus1", Scheme::TwoPlusOne),
        ("vote_strong", Scheme::StrongMajority),
        ("vote_hybrid", Scheme::Hybrid),
    ] {
        g.bench_function(label, |b| {
            let mut rng = StdRng::seed_from_u64(3);
            b.iter(|| resolve(scheme, &pool, black_box(true), &mut rng))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
