//! Criterion benchmarks for the learning substrate: forest training,
//! prediction/entropy throughput (the per-AL-iteration scan of `C`), and
//! rule extraction + application (the blocking hot path).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use forest::{extract_rules, Dataset, ForestConfig, RandomForest};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic(n: usize, f: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ds = Dataset::new(f);
    for _ in 0..n {
        let row: Vec<f64> = (0..f).map(|_| rng.gen_range(0.0..1.0)).collect();
        let label = row[0] + row[1] > 1.0;
        ds.push(&row, label);
    }
    ds
}

fn bench_forest(c: &mut Criterion) {
    let train = synthetic(1000, 40, 1);
    let mut g = c.benchmark_group("forest");
    g.bench_function("train_1000x40", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            RandomForest::train_all(black_box(&train), &ForestConfig::default(), &mut rng)
        })
    });

    let mut rng = StdRng::seed_from_u64(7);
    let forest = RandomForest::train_all(&train, &ForestConfig::default(), &mut rng);
    let probe = synthetic(10_000, 40, 2);
    g.throughput(Throughput::Elements(probe.len() as u64));
    g.bench_function("entropy_scan_10k", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for i in 0..probe.len() {
                acc += forest.entropy(black_box(probe.row(i)));
            }
            acc
        })
    });

    g.bench_function("extract_rules", |b| b.iter(|| extract_rules(black_box(&forest))));

    let rules = extract_rules(&forest);
    let negatives: Vec<_> = rules.into_iter().filter(|r| !r.label).take(3).collect();
    g.throughput(Throughput::Elements(probe.len() as u64));
    g.bench_function("apply_3_rules_10k", |b| {
        b.iter(|| {
            let mut blocked = 0usize;
            for i in 0..probe.len() {
                if negatives.iter().any(|r| r.matches(probe.row(i))) {
                    blocked += 1;
                }
            }
            blocked
        })
    });
    g.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);
