//! Criterion micro-benchmarks for the similarity kernels — the per-pair
//! cost model behind the Blocker's rule ranking (§4.3) assumes these
//! relative costs; this bench validates the ordering.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use similarity::cosine::TfIdfModel;
use similarity::{edit, exact, jaccard, jaro, monge_elkan};

const A: &str = "Kingston HyperX 4GB Kit 2 x 2GB DDR3 Memory";
const B: &str = "Kingston HyperX 12GB Kit 3 x 4GB DDR3 Memory Module";

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("similarity");
    g.bench_function("exact_match", |b| {
        b.iter(|| exact::exact_match(black_box(A), black_box(B)))
    });
    g.bench_function("jaccard_words", |b| {
        b.iter(|| jaccard::jaccard_words(black_box(A), black_box(B)))
    });
    g.bench_function("jaccard_3grams", |b| {
        b.iter(|| jaccard::jaccard_qgrams(black_box(A), black_box(B), 3))
    });
    g.bench_function("jaro_winkler", |b| {
        b.iter(|| jaro::jaro_winkler(black_box(A), black_box(B)))
    });
    g.bench_function("levenshtein", |b| {
        b.iter(|| edit::levenshtein_similarity(black_box(A), black_box(B)))
    });
    g.bench_function("monge_elkan", |b| {
        b.iter(|| monge_elkan::monge_elkan_sym(black_box(A), black_box(B)))
    });
    let model = TfIdfModel::fit([A, B, "Corsair Vengeance 8GB", "Samsung EVO SSD 1TB"]);
    g.bench_function("cosine_tfidf", |b| {
        b.iter(|| model.cosine(black_box(A), black_box(B)))
    });
    g.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
