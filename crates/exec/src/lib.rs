#![forbid(unsafe_code)]
//! Shared parallel-execution core for the Corleone pipeline.
//!
//! Every hot loop in the workspace — pair vectorization, blocking-rule
//! application over the Cartesian product, per-tree forest training,
//! batched prediction, entropy scans, probe scoring — funnels through the
//! three primitives here instead of hand-rolled `crossbeam::scope` blocks:
//!
//! * [`par_map`] — chunked data-parallel map with work stealing;
//! * [`par_for_each`] — the side-effect variant;
//! * [`par_map_seeded`] — deterministic randomized map: per-item RNG
//!   seeds are drawn *serially* from the parent generator, so results are
//!   byte-identical at any thread count.
//!
//! # Scheduling model
//!
//! Work is split into chunks of a size chosen from the input length and
//! thread count (several chunks per thread, so an expensive straggler
//! chunk does not serialize the tail). Worker threads claim chunks from a
//! shared atomic counter — classic self-scheduling, which steals work
//! naturally: fast threads simply claim more chunks. Outputs land in
//! per-chunk slots keyed by chunk index, so the result order never
//! depends on which thread ran what.
//!
//! # Thread count
//!
//! The caller passes an explicit [`Threads`] budget (sessions own one;
//! see `corleone::RunSession::threads`). `Threads::auto()` resolves to
//! [`std::thread::available_parallelism`]. A budget of 1 runs inline on
//! the caller's thread with zero spawning overhead, which also makes
//! single-threaded runs trivially deterministic.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An explicit parallelism budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads(NonZeroUsize);

impl Threads {
    /// Use exactly `n` worker threads (clamped up to 1).
    pub fn new(n: usize) -> Self {
        Threads(NonZeroUsize::new(n.max(1)).expect("max(1) is nonzero"))
    }

    /// Use the machine's available parallelism.
    pub fn auto() -> Self {
        Threads(
            std::thread::available_parallelism()
                .unwrap_or(NonZeroUsize::new(1).expect("1 is nonzero")),
        )
    }

    /// The resolved thread count.
    pub fn get(&self) -> usize {
        self.0.get()
    }
}

impl Default for Threads {
    fn default() -> Self {
        Threads::auto()
    }
}

impl From<usize> for Threads {
    fn from(n: usize) -> Self {
        Threads::new(n)
    }
}

/// Chunk size giving each thread several chunks to claim, bounded below
/// so tiny items are not swamped by scheduling overhead.
fn chunk_size(len: usize, threads: usize) -> usize {
    const CHUNKS_PER_THREAD: usize = 8;
    let target = len / (threads * CHUNKS_PER_THREAD).max(1);
    target.clamp(1, len.max(1))
}

/// Map `f` over `items` in parallel, preserving input order.
///
/// Falls back to a plain serial loop when the budget is one thread or the
/// input is small enough that spawning would dominate.
pub fn par_map<T, U, F>(threads: Threads, items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    indexed_par_map(threads, items.len(), |i| f(&items[i]))
}

/// Apply `f` to every item in parallel; order of side effects is
/// unspecified (use only with independent effects).
pub fn par_for_each<T, F>(threads: Threads, items: &[T], f: F)
where
    T: Sync,
    F: Fn(&T) + Sync,
{
    indexed_par_map(threads, items.len(), |i| f(&items[i]));
}

/// Map over `0..len` by index in parallel, preserving index order.
///
/// The most general form: callers that need the index, or that index into
/// several slices at once, use this directly.
pub fn indexed_par_map<U, F>(threads: Threads, len: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    let n_threads = threads.get().min(len.max(1));
    if n_threads <= 1 || len < 2 {
        return (0..len).map(f).collect();
    }

    let chunk = chunk_size(len, n_threads);
    let n_chunks = len.div_ceil(chunk);
    let next_chunk = AtomicUsize::new(0);
    // One slot per chunk; each chunk is claimed by exactly one thread, so
    // slot writes never race. Collected in chunk order afterwards.
    let slots: Vec<std::sync::Mutex<Vec<U>>> =
        (0..n_chunks).map(|_| std::sync::Mutex::new(Vec::new())).collect();

    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| loop {
                let c = next_chunk.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let start = c * chunk;
                let end = (start + chunk).min(len);
                let out: Vec<U> = (start..end).map(&f).collect();
                *slots[c].lock().unwrap_or_else(|e| e.into_inner()) = out;
            });
        }
    });

    let mut result = Vec::with_capacity(len);
    for slot in slots {
        result.extend(slot.into_inner().unwrap_or_else(|e| e.into_inner()));
    }
    result
}

/// Deterministic randomized parallel map.
///
/// Draws one `u64` seed per item *serially* from `rng`, then maps in
/// parallel handing `f` a fresh `StdRng` per item. Because the seed
/// stream depends only on the parent generator — never on scheduling —
/// the output is identical at every thread count, including 1.
pub fn par_map_seeded<T, U, F>(threads: Threads, items: &[T], rng: &mut StdRng, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T, &mut StdRng) -> U + Sync,
{
    let seeds: Vec<u64> = (0..items.len()).map(|_| rng.gen()).collect();
    indexed_par_map(threads, items.len(), |i| {
        let mut item_rng = StdRng::seed_from_u64(seeds[i]);
        f(&items[i], &mut item_rng)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        for threads in [1, 2, 8] {
            let out = par_map(Threads::new(threads), &items, |&x| x * 3 + 1);
            assert_eq!(out.len(), items.len());
            assert!(out.iter().enumerate().all(|(i, &v)| v == i as u64 * 3 + 1));
        }
    }

    #[test]
    fn par_map_handles_edge_sizes() {
        for len in [0usize, 1, 2, 3] {
            let items: Vec<usize> = (0..len).collect();
            let out = par_map(Threads::new(4), &items, |&x| x + 1);
            assert_eq!(out, (1..=len).collect::<Vec<_>>());
        }
    }

    #[test]
    fn par_for_each_visits_every_item_once() {
        use std::sync::atomic::AtomicU64;
        let items: Vec<usize> = (0..5_000).collect();
        let sum = AtomicU64::new(0);
        par_for_each(Threads::new(8), &items, |&x| {
            sum.fetch_add(x as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 5_000 * 4_999 / 2);
    }

    #[test]
    fn seeded_map_is_thread_count_invariant() {
        let items: Vec<u32> = (0..500).collect();
        let runs: Vec<Vec<u64>> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                let mut rng = StdRng::seed_from_u64(42);
                par_map_seeded(Threads::new(t), &items, &mut rng, |&x, r| {
                    x as u64 ^ r.gen::<u64>()
                })
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0], runs[2]);
    }

    #[test]
    fn seeded_map_advances_parent_rng_identically() {
        // The parent generator must end in the same state regardless of
        // thread count, so downstream draws stay aligned.
        let items = [0u8; 64];
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        par_map_seeded(Threads::new(1), &items, &mut a, |_, r| r.gen::<u64>());
        par_map_seeded(Threads::new(8), &items, &mut b, |_, r| r.gen::<u64>());
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn threads_auto_is_at_least_one() {
        assert!(Threads::auto().get() >= 1);
        assert_eq!(Threads::new(0).get(), 1);
    }
}
