#![forbid(unsafe_code)]
//! # store — crash-safe, versioned run-state snapshots
//!
//! Long crowdsourced EM runs are dominated by marketplace latency and paid
//! for in unrecoverable crowd dollars: losing a multi-hour run to a crash
//! re-pays the whole label bill. This crate is the persistence layer the
//! engine writes through at iteration boundaries so a run can always be
//! resumed from its last checkpoint.
//!
//! ## The snapshot envelope
//!
//! Every snapshot file is a single JSON object:
//!
//! ```json
//! {
//!   "magic": "corleone.run-snapshot",
//!   "schema_version": 1,
//!   "checksum": "9f86d081884c7d65",
//!   "payload": { ... }
//! }
//! ```
//!
//! * `magic` rejects files that were never snapshots at all;
//! * `schema_version` makes incompatibility explicit — a reader refuses a
//!   snapshot written by a different schema rather than misinterpreting
//!   its fields;
//! * `checksum` is an FNV-1a 64 hash of the canonical payload JSON, so a
//!   truncated or bit-flipped file fails loudly with
//!   [`StoreError::ChecksumMismatch`] instead of resuming from garbage.
//!
//! ## Crash safety
//!
//! Writes are atomic: the envelope is written to a `*.tmp` sibling, synced
//! to disk, and renamed over the final name. A crash mid-write leaves at
//! worst a stale `*.tmp` that readers never look at — the previous
//! snapshot survives intact. [`Snapshotter`] adds a keep-last-K retention
//! policy on top so checkpointing a long run does not grow the directory
//! without bound.
//!
//! The payload type is generic: this crate knows nothing about engines or
//! crowds, only about getting a `serde` value to disk and back without
//! corruption. The engine-specific payload lives in
//! `corleone::snapshot::RunSnapshot`.

use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Schema version written into (and required from) every envelope.
///
/// v2: `BlockerReport` gained the `source` field (candidate-generation
/// strategy); v1 snapshots no longer decode and fail with a typed
/// [`StoreError::SchemaMismatch`] instead of a field error.
///
/// v3: feature *semantics* changed, not the layout — `tokenize::normalize`
/// switched to full Unicode lowercasing and Smith-Waterman normalizes by
/// the lower-cased scalar counts. Snapshots carry predictions and labels
/// derived from feature values, so resuming a v2 snapshot would silently
/// diverge from its uninterrupted run; a typed refusal is the contract.
///
/// v4: the envelope gained an optional `fingerprint` field — a hash of
/// the writer's run configuration, feature schema, and platform — so a
/// resume under a different `RunConfig` or feature schema refuses with a
/// typed [`StoreError::FingerprintMismatch`] instead of silently
/// diverging (see [`read_snapshot_checked`]).
pub const SCHEMA_VERSION: u32 = 4;

/// Magic string identifying a snapshot file.
pub const MAGIC: &str = "corleone.run-snapshot";

/// Snapshots retained by default by a [`Snapshotter`].
pub const DEFAULT_KEEP_LAST: usize = 3;

/// Everything that can go wrong reading or writing a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Filesystem failure (open, write, sync, rename, list).
    Io {
        /// Path involved.
        path: String,
        /// OS error text.
        message: String,
    },
    /// The file is not a parseable snapshot envelope at all.
    Corrupt {
        /// Path involved.
        path: String,
        /// What failed while parsing.
        message: String,
    },
    /// The envelope was written under a different schema version.
    SchemaMismatch {
        /// Path involved.
        path: String,
        /// Version found in the file.
        found: u32,
        /// Version this reader understands.
        expected: u32,
    },
    /// The payload does not hash to the recorded checksum — the file was
    /// truncated or corrupted after it was written.
    ChecksumMismatch {
        /// Path involved.
        path: String,
        /// Checksum recorded in the envelope.
        expected: String,
        /// Checksum of the payload as found.
        actual: String,
    },
    /// The payload parsed but does not decode into the requested type.
    Decode {
        /// Path involved.
        path: String,
        /// Decoder error text.
        message: String,
    },
    /// A resume was requested from a directory with no snapshots.
    NoSnapshots {
        /// Directory searched.
        dir: String,
    },
    /// The envelope's fingerprint does not match the reader's — the
    /// snapshot was written under a different run configuration, feature
    /// schema, or platform, and resuming it would silently diverge.
    FingerprintMismatch {
        /// Path involved.
        path: String,
        /// Fingerprint the reader expected.
        expected: String,
        /// Fingerprint recorded in the envelope (`None`: the envelope
        /// carries no fingerprint at all).
        found: Option<String>,
    },
    /// A [`Registry`] operation named a run id with no registered run.
    UnknownRun {
        /// The run id requested.
        run_id: String,
        /// Registry root directory.
        root: String,
    },
    /// A run id unusable as a directory name (empty, or containing
    /// characters outside `[A-Za-z0-9._-]`).
    InvalidRunId {
        /// The offending id.
        run_id: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, message } => write!(f, "snapshot I/O on {path}: {message}"),
            StoreError::Corrupt { path, message } => {
                write!(f, "corrupt snapshot {path}: {message}")
            }
            StoreError::SchemaMismatch { path, found, expected } => write!(
                f,
                "snapshot {path} has schema version {found}, this build reads {expected}"
            ),
            StoreError::ChecksumMismatch { path, expected, actual } => write!(
                f,
                "snapshot {path} failed checksum verification \
                 (recorded {expected}, computed {actual})"
            ),
            StoreError::Decode { path, message } => {
                write!(f, "snapshot {path} does not decode: {message}")
            }
            StoreError::NoSnapshots { dir } => {
                write!(f, "no snapshots found under {dir}")
            }
            StoreError::FingerprintMismatch { path, expected, found } => match found {
                Some(found) => write!(
                    f,
                    "snapshot {path} was written under a different run configuration \
                     (fingerprint {found}, this run is {expected}); resuming would \
                     silently diverge"
                ),
                None => write!(
                    f,
                    "snapshot {path} carries no run fingerprint but this reader \
                     requires {expected}; refusing to resume"
                ),
            },
            StoreError::UnknownRun { run_id, root } => {
                write!(f, "no run {run_id:?} registered under {root}")
            }
            StoreError::InvalidRunId { run_id } => write!(
                f,
                "run id {run_id:?} is not usable as a directory name \
                 (need non-empty `[A-Za-z0-9._-]+`)"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io { path: path.display().to_string(), message: e.to_string() }
}

/// Hex-encode a 4-word RNG stream position for a snapshot payload.
///
/// The vendored `serde_json` routes every number through `f64`, which
/// silently loses precision for integers above 2^53 — and xoshiro state
/// words span the full `u64` range. Hex strings round-trip all 64 bits
/// exactly, so RNG positions (and any other full-range `u64`) must travel
/// as strings, never as JSON numbers.
pub fn encode_rng_state(state: [u64; 4]) -> [String; 4] {
    state.map(|w| format!("{w:016x}"))
}

/// Decode an RNG stream position written by [`encode_rng_state`].
pub fn decode_rng_state(words: &[String; 4]) -> Result<[u64; 4], StoreError> {
    let mut out = [0u64; 4];
    for (i, w) in words.iter().enumerate() {
        out[i] = u64::from_str_radix(w, 16).map_err(|e| StoreError::Decode {
            path: String::new(),
            message: format!("bad RNG state word {w:?}: {e}"),
        })?;
    }
    Ok(out)
}

/// Hex-encode one full-range `u64` (see [`encode_rng_state`] for why).
pub fn encode_u64(v: u64) -> String {
    format!("{v:016x}")
}

/// Decode a `u64` written by [`encode_u64`].
pub fn decode_u64(s: &str) -> Result<u64, StoreError> {
    u64::from_str_radix(s, 16).map_err(|e| StoreError::Decode {
        path: String::new(),
        message: format!("bad u64 hex {s:?}: {e}"),
    })
}

/// FNV-1a 64-bit hash — tiny, dependency-free, and more than strong enough
/// to catch truncation and bit flips (this is integrity, not security).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn checksum_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv1a64(bytes))
}

/// Hex-rendered FNV-1a 64 of arbitrary bytes: the workspace's standard
/// content fingerprint. Used for the snapshot-envelope run fingerprint and
/// the service layer's content-addressed analysis cache keys.
pub fn fingerprint64(bytes: &[u8]) -> String {
    checksum_hex(bytes)
}

/// Serialize `payload` into a versioned, checksummed envelope and write it
/// to `path` atomically (temp file + rename). The parent directory must
/// exist.
pub fn write_snapshot<T: Serialize>(path: &Path, payload: &T) -> Result<(), StoreError> {
    write_snapshot_tagged(path, payload, None)
}

/// [`write_snapshot`] with an optional run fingerprint stamped into the
/// envelope (see [`read_snapshot_checked`] for the verification side).
pub fn write_snapshot_tagged<T: Serialize>(
    path: &Path,
    payload: &T,
    fingerprint: Option<&str>,
) -> Result<(), StoreError> {
    let payload_json = serde_json::to_string(payload)
        .map_err(|e| StoreError::Decode { path: path.display().to_string(), message: e.to_string() })?;
    let fp_field = match fingerprint {
        Some(fp) => format!("\"fingerprint\":\"{fp}\","),
        None => String::new(),
    };
    let envelope = format!(
        "{{\"magic\":\"{MAGIC}\",\"schema_version\":{SCHEMA_VERSION},{fp_field}\
         \"checksum\":\"{}\",\"payload\":{payload_json}}}",
        checksum_hex(payload_json.as_bytes()),
    );
    let tmp = path.with_extension("json.tmp");
    {
        let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(envelope.as_bytes()).map_err(|e| io_err(&tmp, e))?;
        // Flush to the medium before the rename makes the file visible:
        // either the complete snapshot exists or it never appears.
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
    }
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    Ok(())
}

/// Read, verify, and decode a snapshot envelope written by
/// [`write_snapshot`]. Verification order: parse → magic → schema version
/// → checksum → payload decode, each failing with its own typed error.
/// The envelope's fingerprint, if any, is not checked — use
/// [`read_snapshot_checked`] to require one.
pub fn read_snapshot<T: Deserialize>(path: &Path) -> Result<T, StoreError> {
    read_snapshot_checked(path, None)
}

/// [`read_snapshot`] that additionally requires the envelope to carry
/// exactly the expected run fingerprint. A missing or different
/// fingerprint fails with [`StoreError::FingerprintMismatch`] — the typed
/// refusal that keeps a resume under a different run configuration,
/// feature schema, or platform from silently diverging. The check runs
/// after schema-version verification and before the checksum.
pub fn read_snapshot_checked<T: Deserialize>(
    path: &Path,
    expected_fingerprint: Option<&str>,
) -> Result<T, StoreError> {
    let p = path.display().to_string();
    let text = fs::read_to_string(path).map_err(|e| io_err(path, e))?;
    let envelope: Value = serde_json::from_str(&text)
        .map_err(|e| StoreError::Corrupt { path: p.clone(), message: e.to_string() })?;
    match envelope.get("magic") {
        Some(Value::Str(m)) if m == MAGIC => {}
        _ => {
            return Err(StoreError::Corrupt {
                path: p,
                message: format!("missing or wrong magic (expected \"{MAGIC}\")"),
            })
        }
    }
    let found = match envelope.get("schema_version") {
        Some(Value::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => *n as u32,
        _ => {
            return Err(StoreError::Corrupt {
                path: p,
                message: "missing or non-integer schema_version".to_string(),
            })
        }
    };
    if found != SCHEMA_VERSION {
        return Err(StoreError::SchemaMismatch { path: p, found, expected: SCHEMA_VERSION });
    }
    if let Some(expected_fp) = expected_fingerprint {
        let recorded = match envelope.get("fingerprint") {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        };
        if recorded.as_deref() != Some(expected_fp) {
            return Err(StoreError::FingerprintMismatch {
                path: p,
                expected: expected_fp.to_string(),
                found: recorded,
            });
        }
    }
    let expected = match envelope.get("checksum") {
        Some(Value::Str(s)) => s.clone(),
        _ => {
            return Err(StoreError::Corrupt {
                path: p,
                message: "missing checksum".to_string(),
            })
        }
    };
    let payload = envelope.get("payload").ok_or_else(|| StoreError::Corrupt {
        path: p.clone(),
        message: "missing payload".to_string(),
    })?;
    // The writer checksums the canonical payload rendering; re-rendering
    // the parsed tree reproduces those exact bytes (the vendored writer is
    // deterministic), so any post-write mutation of the payload shows up
    // as a different hash.
    let canonical = serde_json::to_string(payload)
        .map_err(|e| StoreError::Corrupt { path: p.clone(), message: e.to_string() })?;
    let actual = checksum_hex(canonical.as_bytes());
    if actual != expected {
        return Err(StoreError::ChecksumMismatch { path: p, expected, actual });
    }
    T::from_json_value(payload)
        .map_err(|e| StoreError::Decode { path: p, message: e.to_string() })
}

/// Sequence-numbered snapshot files in one directory with keep-last-K
/// retention. File names are `snap-<seq, zero-padded>.json`, so
/// lexicographic order is sequence order.
#[derive(Debug, Clone)]
pub struct Snapshotter {
    dir: PathBuf,
    keep_last: usize,
    fingerprint: Option<String>,
}

impl Snapshotter {
    /// Open (creating if needed) a snapshot directory, with the default
    /// retention of [`DEFAULT_KEEP_LAST`].
    pub fn create(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        Ok(Snapshotter { dir, keep_last: DEFAULT_KEEP_LAST, fingerprint: None })
    }

    /// Retain only the newest `k` snapshots after each write; `0` keeps
    /// everything.
    pub fn keep_last(mut self, k: usize) -> Self {
        self.keep_last = k;
        self
    }

    /// Stamp every written envelope with this run fingerprint (see
    /// [`write_snapshot_tagged`] / [`read_snapshot_checked`]).
    pub fn with_fingerprint(mut self, fp: impl Into<String>) -> Self {
        self.fingerprint = Some(fp.into());
        self
    }

    /// The directory snapshots are written to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path a given sequence number is (or would be) stored at.
    pub fn path_for(&self, seq: u64) -> PathBuf {
        self.dir.join(format!("snap-{seq:08}.json"))
    }

    /// Atomically write the snapshot for sequence number `seq`, then prune
    /// per the retention policy. Returns the path written.
    pub fn write<T: Serialize>(&self, seq: u64, payload: &T) -> Result<PathBuf, StoreError> {
        let path = self.path_for(seq);
        write_snapshot_tagged(&path, payload, self.fingerprint.as_deref())?;
        self.prune()?;
        Ok(path)
    }

    /// All snapshot paths, oldest first.
    pub fn list(&self) -> Result<Vec<PathBuf>, StoreError> {
        let mut out = Vec::new();
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, e))?;
        for entry in entries {
            let entry = entry.map_err(|e| io_err(&self.dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("snap-") && name.ends_with(".json") {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    /// The newest snapshot path, or a [`StoreError::NoSnapshots`] error.
    pub fn latest(&self) -> Result<PathBuf, StoreError> {
        self.list()?
            .pop()
            .ok_or_else(|| StoreError::NoSnapshots { dir: self.dir.display().to_string() })
    }

    fn prune(&self) -> Result<(), StoreError> {
        if self.keep_last == 0 {
            return Ok(());
        }
        let list = self.list()?;
        if list.len() > self.keep_last {
            for stale in &list[..list.len() - self.keep_last] {
                fs::remove_file(stale).map_err(|e| io_err(stale, e))?;
            }
        }
        Ok(())
    }
}

/// Metadata for one registered run in a [`Registry`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunMeta {
    /// The run's id (also its directory name under `<root>/runs/`).
    pub run_id: String,
    /// Keep-last-K retention applied to the run's snapshots (`0` keeps
    /// everything).
    pub keep_last: usize,
    /// Run fingerprint stamped into the run's snapshot envelopes, if any.
    pub fingerprint: Option<String>,
}

/// The registry's on-disk index payload (`<root>/registry.json`), stored
/// through the same checksummed envelope as snapshots. Runs are kept
/// sorted by id so the index bytes are deterministic.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct RegistryIndex {
    runs: Vec<RunMeta>,
}

/// A multi-run snapshot store: run id → snapshot directory, with a
/// crash-safe metadata index and per-run keep-last-K retention.
///
/// Layout under the registry root:
///
/// ```text
/// <root>/registry.json          checksummed index of RunMeta entries
/// <root>/runs/<run_id>/snap-*.json
/// ```
///
/// This is the piece the multi-tenant service layer checkpoints through —
/// every tenant registers its run id and gets a [`Snapshotter`] scoped to
/// its own directory — and what bench sweeps can use to checkpoint and
/// resume a whole sweep as a unit. Operations naming an unregistered id
/// fail with the typed [`StoreError::UnknownRun`].
#[derive(Debug, Clone)]
pub struct Registry {
    root: PathBuf,
    index: RegistryIndex,
}

/// Run ids become directory names: restrict to a path-safe alphabet and
/// reject the `.`/`..` traversal names.
fn valid_run_id(id: &str) -> bool {
    !id.is_empty()
        && id != "."
        && id != ".."
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
}

impl Registry {
    /// Open (creating if needed) a registry rooted at `root`, loading the
    /// index if one exists.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        fs::create_dir_all(root.join("runs")).map_err(|e| io_err(&root, e))?;
        let index_path = root.join("registry.json");
        let index = if index_path.is_file() {
            read_snapshot::<RegistryIndex>(&index_path)?
        } else {
            RegistryIndex::default()
        };
        Ok(Registry { root, index })
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// All registered runs, sorted by run id.
    pub fn runs(&self) -> &[RunMeta] {
        &self.index.runs
    }

    /// Is this run id registered?
    pub fn contains(&self, run_id: &str) -> bool {
        self.index.runs.iter().any(|m| m.run_id == run_id)
    }

    /// The directory a run's snapshots live (or would live) in.
    pub fn run_dir(&self, run_id: &str) -> PathBuf {
        self.root.join("runs").join(run_id)
    }

    fn persist(&self) -> Result<(), StoreError> {
        write_snapshot(&self.root.join("registry.json"), &self.index)
    }

    fn meta(&self, run_id: &str) -> Result<&RunMeta, StoreError> {
        self.index.runs.iter().find(|m| m.run_id == run_id).ok_or_else(|| {
            StoreError::UnknownRun {
                run_id: run_id.to_string(),
                root: self.root.display().to_string(),
            }
        })
    }

    /// Register a run (idempotent: re-registering updates its retention
    /// and fingerprint) and return a [`Snapshotter`] scoped to its
    /// directory. The index write is atomic, so a crash leaves either the
    /// old or the new index, never a torn one.
    pub fn register(
        &mut self,
        run_id: &str,
        keep_last: usize,
        fingerprint: Option<&str>,
    ) -> Result<Snapshotter, StoreError> {
        if !valid_run_id(run_id) {
            return Err(StoreError::InvalidRunId { run_id: run_id.to_string() });
        }
        let meta = RunMeta {
            run_id: run_id.to_string(),
            keep_last,
            fingerprint: fingerprint.map(str::to_string),
        };
        match self.index.runs.iter_mut().find(|m| m.run_id == run_id) {
            Some(existing) => *existing = meta,
            None => {
                self.index.runs.push(meta);
                self.index.runs.sort_by(|a, b| a.run_id.cmp(&b.run_id));
            }
        }
        self.persist()?;
        self.snapshotter(run_id)
    }

    /// A [`Snapshotter`] for a registered run, configured with the run's
    /// recorded retention and fingerprint.
    pub fn snapshotter(&self, run_id: &str) -> Result<Snapshotter, StoreError> {
        let meta = self.meta(run_id)?;
        let mut sn = Snapshotter::create(self.run_dir(run_id))?.keep_last(meta.keep_last);
        if let Some(fp) = &meta.fingerprint {
            sn = sn.with_fingerprint(fp.clone());
        }
        Ok(sn)
    }

    /// The newest snapshot of a registered run
    /// ([`StoreError::NoSnapshots`] when it has not checkpointed yet).
    pub fn latest_snapshot(&self, run_id: &str) -> Result<PathBuf, StoreError> {
        self.snapshotter(run_id)?.latest()
    }

    /// Unregister a run and delete its snapshot directory.
    pub fn remove_run(&mut self, run_id: &str) -> Result<(), StoreError> {
        self.meta(run_id)?;
        let dir = self.run_dir(run_id);
        if dir.is_dir() {
            fs::remove_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        }
        self.index.runs.retain(|m| m.run_id != run_id);
        self.persist()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Payload {
        name: String,
        xs: Vec<f64>,
        flag: bool,
        words: Vec<String>,
    }

    fn sample() -> Payload {
        Payload {
            name: "iteration-3".to_string(),
            xs: vec![0.1, -2.5, 1e-9, 42.0, f64::NAN],
            flag: true,
            words: vec!["quoted \"text\"".to_string(), "line\nbreak".to_string()],
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).expect("create temp dir");
        d
    }

    #[test]
    fn round_trip_preserves_payload() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("snap-00000001.json");
        write_snapshot(&path, &sample()).expect("write");
        let back: Payload = read_snapshot(&path).expect("read");
        assert_eq!(back.name, "iteration-3");
        assert_eq!(back.xs[..4], sample().xs[..4]);
        assert!(back.xs[4].is_nan(), "NaN survives via null");
        assert_eq!(back.words, sample().words);
        assert!(!dir.join("snap-00000001.json.tmp").exists(), "tmp cleaned up");
    }

    #[test]
    fn bit_flip_in_payload_is_a_checksum_mismatch() {
        let dir = tmp_dir("bitflip");
        let path = dir.join("snap-00000001.json");
        write_snapshot(&path, &sample()).expect("write");
        let text = fs::read_to_string(&path).unwrap().replace("-2.5", "-2.6");
        fs::write(&path, text).unwrap();
        match read_snapshot::<Payload>(&path) {
            Err(StoreError::ChecksumMismatch { expected, actual, .. }) => {
                assert_ne!(expected, actual)
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_corrupt_not_a_panic() {
        let dir = tmp_dir("truncate");
        let path = dir.join("snap-00000001.json");
        write_snapshot(&path, &sample()).expect("write");
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() / 2]).unwrap();
        assert!(matches!(
            read_snapshot::<Payload>(&path),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn wrong_schema_version_is_typed() {
        let dir = tmp_dir("version");
        let path = dir.join("snap-00000001.json");
        write_snapshot(&path, &sample()).expect("write");
        let text = fs::read_to_string(&path)
            .unwrap()
            .replace(&format!("\"schema_version\":{SCHEMA_VERSION}"), "\"schema_version\":99");
        fs::write(&path, text).unwrap();
        match read_snapshot::<Payload>(&path) {
            Err(StoreError::SchemaMismatch { found, expected, .. }) => {
                assert_eq!((found, expected), (99, SCHEMA_VERSION))
            }
            other => panic!("expected SchemaMismatch, got {other:?}"),
        }
    }

    #[test]
    fn non_snapshot_json_is_rejected_by_magic() {
        let dir = tmp_dir("magic");
        let path = dir.join("snap-00000001.json");
        fs::write(&path, "{\"hello\": \"world\"}").unwrap();
        match read_snapshot::<Payload>(&path) {
            Err(StoreError::Corrupt { message, .. }) => assert!(message.contains("magic")),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn missing_file_is_io() {
        let dir = tmp_dir("missing");
        assert!(matches!(
            read_snapshot::<Payload>(&dir.join("nope.json")),
            Err(StoreError::Io { .. })
        ));
    }

    #[test]
    fn wrong_payload_shape_is_decode() {
        let dir = tmp_dir("decode");
        let path = dir.join("snap-00000001.json");
        write_snapshot(&path, &vec![1.0f64, 2.0]).expect("write");
        assert!(matches!(
            read_snapshot::<Payload>(&path),
            Err(StoreError::Decode { .. })
        ));
    }

    #[test]
    fn snapshotter_retention_keeps_last_k() {
        let dir = tmp_dir("retention");
        let snap = Snapshotter::create(dir.join("ck")).expect("create").keep_last(3);
        for seq in 1..=7u64 {
            snap.write(seq, &sample()).expect("write");
        }
        let list = snap.list().expect("list");
        assert_eq!(list.len(), 3);
        assert_eq!(snap.latest().expect("latest"), snap.path_for(7));
        assert!(list[0].ends_with("snap-00000005.json"), "{list:?}");
        // Retained snapshots all still verify.
        for p in &list {
            read_snapshot::<Payload>(p).expect("retained snapshot valid");
        }
    }

    #[test]
    fn keep_last_zero_keeps_everything() {
        let dir = tmp_dir("keepall");
        let snap = Snapshotter::create(dir.join("ck")).expect("create").keep_last(0);
        for seq in 1..=5u64 {
            snap.write(seq, &sample()).expect("write");
        }
        assert_eq!(snap.list().expect("list").len(), 5);
    }

    #[test]
    fn empty_dir_latest_is_no_snapshots() {
        let dir = tmp_dir("empty");
        let snap = Snapshotter::create(dir.join("ck")).expect("create");
        assert!(matches!(snap.latest(), Err(StoreError::NoSnapshots { .. })));
    }

    #[test]
    fn overwriting_same_seq_is_atomic_replace() {
        let dir = tmp_dir("overwrite");
        let snap = Snapshotter::create(dir.join("ck")).expect("create");
        snap.write(1, &sample()).expect("first");
        let mut other = sample();
        other.name = "rewritten".to_string();
        snap.write(1, &other).expect("second");
        let back: Payload = read_snapshot(&snap.path_for(1)).expect("read");
        assert_eq!(back.name, "rewritten");
        assert_eq!(snap.list().expect("list").len(), 1);
    }

    #[test]
    fn rng_state_hex_round_trips_full_u64_range() {
        // Values above 2^53 are exactly where the f64 number path loses
        // bits — the hex codec must not.
        let state = [u64::MAX, 0, 1 << 63, 0x0123_4567_89AB_CDEF];
        let enc = encode_rng_state(state);
        assert_eq!(decode_rng_state(&enc).expect("decode"), state);
        assert_eq!(decode_u64(&encode_u64(u64::MAX)).expect("u64"), u64::MAX);
        assert!(decode_u64("not-hex").is_err());
    }

    #[test]
    fn fingerprint_tag_round_trips_and_mismatch_is_typed() {
        let dir = tmp_dir("fingerprint");
        let path = dir.join("snap-00000001.json");
        let fp = fingerprint64(b"config+schema+platform");
        write_snapshot_tagged(&path, &sample(), Some(&fp)).expect("write");
        // Checked read with the matching fingerprint succeeds; the plain
        // reader ignores the tag entirely.
        let back: Payload = read_snapshot_checked(&path, Some(&fp)).expect("checked read");
        assert_eq!(back.name, "iteration-3");
        assert_eq!(back.words, sample().words);
        let _: Payload = read_snapshot(&path).expect("untagged read");
        // A different expected fingerprint refuses with the typed error.
        match read_snapshot_checked::<Payload>(&path, Some("deadbeef00000000")) {
            Err(StoreError::FingerprintMismatch { expected, found, .. }) => {
                assert_eq!(expected, "deadbeef00000000");
                assert_eq!(found.as_deref(), Some(fp.as_str()));
            }
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
    }

    #[test]
    fn untagged_snapshot_refuses_checked_read() {
        let dir = tmp_dir("fingerprint-missing");
        let path = dir.join("snap-00000001.json");
        write_snapshot(&path, &sample()).expect("write");
        match read_snapshot_checked::<Payload>(&path, Some("aa11")) {
            Err(StoreError::FingerprintMismatch { found, .. }) => assert_eq!(found, None),
            other => panic!("expected FingerprintMismatch, got {other:?}"),
        }
    }

    #[test]
    fn snapshotter_fingerprint_applies_to_every_write() {
        let dir = tmp_dir("fingerprint-snap");
        let snap = Snapshotter::create(dir.join("ck"))
            .expect("create")
            .with_fingerprint("feedface01020304");
        snap.write(1, &sample()).expect("write");
        let _: Payload =
            read_snapshot_checked(&snap.path_for(1), Some("feedface01020304")).expect("checked");
        assert!(matches!(
            read_snapshot_checked::<Payload>(&snap.path_for(1), Some("other")),
            Err(StoreError::FingerprintMismatch { .. })
        ));
    }

    #[test]
    fn registry_round_trips_runs_and_persists_across_reopen() {
        let dir = tmp_dir("registry");
        let mut reg = Registry::open(&dir).expect("open");
        assert!(reg.runs().is_empty());
        let snap = reg.register("tenant-b", 2, Some("fp-b")).expect("register b");
        snap.write(1, &sample()).expect("write");
        reg.register("tenant-a", 0, None).expect("register a");
        // Sorted by run id, independent of registration order.
        let ids: Vec<&str> = reg.runs().iter().map(|m| m.run_id.as_str()).collect();
        assert_eq!(ids, ["tenant-a", "tenant-b"]);
        // Reopen from disk: index survives, snapshotter is reconstructed
        // with the recorded retention + fingerprint.
        let reg2 = Registry::open(&dir).expect("reopen");
        assert!(reg2.contains("tenant-a") && reg2.contains("tenant-b"));
        assert_eq!(reg2.latest_snapshot("tenant-b").expect("latest"), snap.path_for(1));
        let _: Payload =
            read_snapshot_checked(&snap.path_for(1), Some("fp-b")).expect("tagged via registry");
        let snap2 = reg2.snapshotter("tenant-b").expect("snapshotter");
        for seq in 2..=5u64 {
            snap2.write(seq, &sample()).expect("write");
        }
        assert_eq!(snap2.list().expect("list").len(), 2, "keep-last-2 GC per run");
    }

    #[test]
    fn registry_unknown_and_invalid_run_ids_are_typed() {
        let dir = tmp_dir("registry-errs");
        let mut reg = Registry::open(&dir).expect("open");
        assert!(matches!(
            reg.snapshotter("ghost"),
            Err(StoreError::UnknownRun { run_id, .. }) if run_id == "ghost"
        ));
        assert!(matches!(
            reg.latest_snapshot("ghost"),
            Err(StoreError::UnknownRun { .. })
        ));
        assert!(matches!(
            reg.remove_run("ghost"),
            Err(StoreError::UnknownRun { .. })
        ));
        for bad in ["", "..", ".", "a/b", "a b", "x\u{e9}"] {
            assert!(
                matches!(reg.register(bad, 0, None), Err(StoreError::InvalidRunId { .. })),
                "id {bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn registry_remove_run_deletes_dir_and_index_entry() {
        let dir = tmp_dir("registry-rm");
        let mut reg = Registry::open(&dir).expect("open");
        let snap = reg.register("gone", 0, None).expect("register");
        snap.write(1, &sample()).expect("write");
        let run_dir = reg.run_dir("gone");
        assert!(run_dir.is_dir());
        reg.remove_run("gone").expect("remove");
        assert!(!run_dir.exists());
        assert!(!reg.contains("gone"));
        let reg2 = Registry::open(&dir).expect("reopen");
        assert!(!reg2.contains("gone"), "removal persisted");
    }

    #[test]
    fn errors_render_useful_messages() {
        let e = StoreError::SchemaMismatch { path: "x.json".into(), found: 2, expected: 1 };
        assert!(e.to_string().contains("schema version 2"));
        let c = StoreError::ChecksumMismatch {
            path: "x.json".into(),
            expected: "aa".into(),
            actual: "bb".into(),
        };
        assert!(c.to_string().contains("checksum"));
        assert!(StoreError::NoSnapshots { dir: "d".into() }.to_string().contains("no snapshots"));
    }
}
