#![forbid(unsafe_code)]
//! # service — the multi-tenant matching service
//!
//! Everything below this crate is a one-shot
//! [`RunSession`](corleone::RunSession): one task, one platform, one
//! report. This crate is the long-running layer the ROADMAP north star
//! asks for — a [`MatchService`] that accepts many concurrent
//! [`MatchTask`] submissions as *tenants* and drives each through the
//! unchanged blocker → learner → estimator loop, interleaved at
//! iteration granularity over one shared [`exec`] thread pool.
//!
//! ## Architecture
//!
//! * **Cooperative scheduler.** The service owns no threads (the
//!   determinism contract bans stray `thread::spawn`; parallelism lives
//!   inside `exec::par_map`). Each [`MatchService::tick`] runs exactly
//!   one quantum — one tenant's blocker, or one pipeline iteration —
//!   and rotates fair round-robin across active tenants, so one giant
//!   run cannot starve the rest. [`MatchService::run_all`] ticks to
//!   completion.
//! * **Content-addressed analysis sharing.** A tenant's record-analysis
//!   layer is a pure function of its tables + fitted vectorizer
//!   ([`MatchTask::analysis_fingerprint`]). The service keeps a registry
//!   of built analyses keyed by that fingerprint; two tenants matching
//!   the same table pay the build once. Because the shared value is
//!   bit-identical to what each tenant would build alone, sharing is
//!   invisible to run bytes — the hit shows up only in [`ServicePerf`].
//! * **Admission control.** Concurrency beyond `max_active` queues
//!   (FIFO); beyond `max_queued` rejects with
//!   [`ServiceError::QueueFull`]. With an aggregate budget cap, every
//!   submission must declare a per-run budget, and overcommitting the
//!   cap rejects with [`ServiceError::QuotaExceeded`] — quota is
//!   released when a tenant finishes.
//! * **Durability.** With a checkpoint root, every tenant registers in
//!   a [`store::Registry`] (run id → snapshot dir, fingerprint-stamped
//!   envelopes, keep-last-K GC). Killing the service and resubmitting
//!   the same run ids resumes every in-flight tenant from its newest
//!   snapshot, byte-identically.
//!
//! ## Determinism contract
//!
//! A tenant's final report is byte-identical
//! ([`RunReport::deterministic_json`](corleone::RunReport::deterministic_json))
//! to the same task run solo through `RunSession`, at any thread count
//! and any interleaving: each tenant owns its platform, RNG, cache, and
//! [`RunState`](corleone::RunState); the only shared mutable state is
//! the analysis registry, whose values are content-addressed and
//! therefore value-identical to a solo build.
//!
//! ```no_run
//! # use service::{MatchService, ServiceConfig, TenantSpec};
//! # use corleone::{CorleoneConfig, MatchTask};
//! # use crowd::{CrowdConfig, CrowdPlatform, GoldOracle, WorkerPool};
//! # fn get_task() -> (MatchTask, GoldOracle) { unimplemented!() }
//! let (task, oracle) = get_task();
//! let mut svc = MatchService::new(ServiceConfig::default()).unwrap();
//! svc.submit(TenantSpec {
//!     run_id: "acme-vs-globex".into(),
//!     task,
//!     platform: CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default()),
//!     oracle: Box::new(oracle),
//!     gold: None,
//!     config: CorleoneConfig::default(),
//!     seed: 7,
//! }).unwrap();
//! svc.run_all();
//! for ev in svc.poll_events() {
//!     println!("{}", serde_json::to_string(&ev).unwrap());
//! }
//! let report = svc.take_report("acme-vs-globex").unwrap();
//! ```

mod error;
mod events;

pub use error::ServiceError;
pub use events::{ServiceEvent, ServicePerf, TenantPerf};

use corleone::cache::DEFAULT_CACHE_CAPACITY;
use corleone::engine::{CheckpointPlan, RunState, StepOutcome};
use corleone::snapshot::RunSnapshot;
use corleone::{CorleoneConfig, CorleoneError, Engine, FeatureCache, MatchTask, RunReport};
use crowd::{CrowdPlatform, PairKey, TruthOracle};
use exec::Threads;
use similarity::TaskAnalysis;
use std::collections::{HashSet, VecDeque};
use std::path::PathBuf;
use std::sync::Arc;
use store::{Registry, Snapshotter, StoreError};

/// Service-wide knobs. The defaults match a solo
/// [`RunSession`](corleone::RunSession)'s execution settings, which is
/// what keeps tenant bytes identical to solo runs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads for every tenant's parallel loops (`0` = the
    /// machine's available parallelism). Results are identical at every
    /// setting.
    pub threads: usize,
    /// Tenants driven concurrently; further admissions queue.
    pub max_active: usize,
    /// Waiting-queue capacity; beyond this, submissions are rejected
    /// with [`ServiceError::QueueFull`].
    pub max_queued: usize,
    /// Aggregate crowd-budget cap, in cents, across queued + active
    /// tenants' declared budgets. `None` disables budget admission
    /// control.
    pub aggregate_budget_cents: Option<f64>,
    /// Root directory of the multi-run checkpoint registry. `None`
    /// disables durability.
    pub checkpoint_root: Option<PathBuf>,
    /// Checkpoint every N completed iterations per tenant (snapshot 0 is
    /// always written when durability is on).
    pub checkpoint_every: usize,
    /// Keep-last-K snapshot retention per tenant (`0` keeps everything).
    pub checkpoint_keep: usize,
    /// Per-tenant feature-cache capacity (`0` disables the cache).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            threads: 0,
            max_active: 4,
            max_queued: 64,
            aggregate_budget_cents: None,
            checkpoint_root: None,
            checkpoint_every: 1,
            checkpoint_keep: store::DEFAULT_KEEP_LAST,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }
}

/// One tenant's submission: the task, its collaborators, and its run
/// configuration. The service takes ownership of everything — tenants
/// outlive the submitting call.
pub struct TenantSpec {
    /// Unique id; also the run's directory name in the checkpoint
    /// registry (path-safe `[A-Za-z0-9._-]+`).
    pub run_id: String,
    /// The matching task.
    pub task: MatchTask,
    /// The tenant's own crowd platform (its ledger meters the tenant's
    /// spend).
    pub platform: CrowdPlatform,
    /// The truth oracle the simulated crowd consults.
    pub oracle: Box<dyn TruthOracle>,
    /// Gold matches for experiment metrics; omit in production.
    pub gold: Option<HashSet<PairKey>>,
    /// The engine configuration, including the tenant's own
    /// `engine.budget_cents` quota.
    pub config: CorleoneConfig,
    /// RNG seed for the tenant's run.
    pub seed: u64,
}

/// A tenant somewhere between admission and completion.
struct Tenant {
    run_id: String,
    engine: Engine,
    task: MatchTask,
    platform: CrowdPlatform,
    oracle: Box<dyn TruthOracle>,
    gold: Option<HashSet<PairKey>>,
    seed: u64,
    budget_cents: Option<f64>,
    snapshotter: Option<Snapshotter>,
    resume: Option<Box<RunSnapshot>>,
    cache: Option<FeatureCache>,
    state: Option<RunState>,
}

/// The long-running multi-tenant matching service. See the [crate
/// docs](self) for the architecture.
pub struct MatchService {
    cfg: ServiceConfig,
    threads: Threads,
    registry: Option<Registry>,
    queue: VecDeque<Tenant>,
    active: Vec<Tenant>,
    cursor: usize,
    /// Content-addressed analysis registry: fingerprint → built layer.
    /// A Vec, not a map — it is scanned (tiny) and never iterated for
    /// serialization, and insertion order is deterministic.
    analyses: Vec<(String, Arc<TaskAnalysis>)>,
    events: VecDeque<ServiceEvent>,
    reports: Vec<(String, RunReport)>,
    perf: ServicePerf,
}

impl MatchService {
    /// Open a service. With a `checkpoint_root`, the multi-run registry
    /// is opened (created if missing) and resubmitted run ids will
    /// resume from their newest snapshots.
    pub fn new(cfg: ServiceConfig) -> Result<Self, ServiceError> {
        let threads = if cfg.threads == 0 { Threads::auto() } else { Threads::new(cfg.threads) };
        let registry = match &cfg.checkpoint_root {
            Some(root) => Some(Registry::open(root.clone())?),
            None => None,
        };
        Ok(MatchService {
            cfg,
            threads,
            registry,
            queue: VecDeque::new(),
            active: Vec::new(),
            cursor: 0,
            analyses: Vec::new(),
            events: VecDeque::new(),
            reports: Vec::new(),
            perf: ServicePerf::default(),
        })
    }

    /// Submit a tenant. Passing admission control queues or activates it
    /// and emits [`ServiceEvent::Admitted`]; nothing expensive runs until
    /// the next [`Self::tick`].
    pub fn submit(&mut self, spec: TenantSpec) -> Result<(), ServiceError> {
        let TenantSpec { run_id, task, platform, oracle, gold, config, seed } = spec;
        if self.knows(&run_id) {
            return Err(ServiceError::DuplicateRunId(run_id));
        }
        let budget_cents = config.engine.budget_cents;
        if let Some(cap) = self.cfg.aggregate_budget_cents {
            let Some(b) = budget_cents else {
                return Err(ServiceError::UnboundedBudget { run_id });
            };
            let committed = self.committed_budget_cents();
            if committed + b > cap {
                return Err(ServiceError::QuotaExceeded {
                    run_id,
                    requested_cents: b,
                    available_cents: cap - committed,
                });
            }
        }
        let queued = self.active.len() >= self.cfg.max_active;
        if queued && self.queue.len() >= self.cfg.max_queued {
            return Err(ServiceError::QueueFull { run_id, capacity: self.cfg.max_queued });
        }

        let engine = Engine::new(config).with_seed(seed);
        // Durability: register the run and pick up any prior snapshot
        // (the kill-and-restart path). The engine's run fingerprint is
        // stamped into every envelope and demanded on resume, so a
        // resubmission under a different config or feature schema is a
        // typed refusal here, not a silent divergence.
        let mut snapshotter = None;
        let mut resume: Option<Box<RunSnapshot>> = None;
        if let Some(reg) = self.registry.as_mut() {
            let fingerprint = engine.run_fingerprint(&task)?;
            let sn = reg.register(&run_id, self.cfg.checkpoint_keep, Some(&fingerprint))?;
            match sn.latest() {
                Ok(path) => {
                    resume =
                        Some(Box::new(store::read_snapshot_checked(&path, Some(&fingerprint))?));
                }
                Err(StoreError::NoSnapshots { .. }) => {}
                Err(e) => return Err(e.into()),
            }
            snapshotter = Some(sn);
        }

        let resuming = resume.is_some();
        let tenant = Tenant {
            run_id: run_id.clone(),
            engine,
            task,
            platform,
            oracle,
            gold,
            seed,
            budget_cents,
            snapshotter,
            resume,
            cache: None,
            state: None,
        };
        if queued {
            self.queue.push_back(tenant);
        } else {
            self.active.push(tenant);
        }
        self.perf.tenants_admitted += 1;
        self.events.push_back(ServiceEvent::Admitted { run_id, queued, resuming });
        Ok(())
    }

    /// Run one scheduling quantum: the next active tenant (fair
    /// round-robin) advances by one unit — its start (analysis, blocker,
    /// snapshot 0) or one pipeline iteration. Returns `false` when the
    /// service is idle (no active or queued tenants).
    ///
    /// Tenant failures do not poison the service: they surface as
    /// [`ServiceEvent::Failed`] and the tenant is retired.
    pub fn tick(&mut self) -> bool {
        self.backfill();
        if self.active.is_empty() {
            return false;
        }
        self.perf.ticks += 1;
        if self.cursor >= self.active.len() {
            self.cursor = 0;
        }
        let idx = self.cursor;
        let retired = self.drive(idx);
        if retired {
            // The next tenant shifts into `idx`; leaving the cursor put
            // preserves rotation order.
            self.active.remove(idx);
        } else {
            self.cursor += 1;
        }
        true
    }

    /// Tick until every admitted tenant has terminated. Returns the
    /// number of quanta executed.
    pub fn run_all(&mut self) -> u64 {
        let mut n = 0;
        while self.tick() {
            n += 1;
        }
        n
    }

    /// Tick at most `n` times; returns `true` if the service went idle
    /// before exhausting them. The `corleone-serve` bin uses this to
    /// simulate a mid-flight kill.
    pub fn run_ticks(&mut self, n: u64) -> bool {
        for _ in 0..n {
            if !self.tick() {
                return true;
            }
        }
        !self.has_live_tenants()
    }

    /// Drain all pending progress events, in emission order.
    pub fn poll_events(&mut self) -> Vec<ServiceEvent> {
        self.events.drain(..).collect()
    }

    /// Remove and return a terminated tenant's final report.
    pub fn take_report(&mut self, run_id: &str) -> Result<RunReport, ServiceError> {
        match self.reports.iter().position(|(id, _)| id == run_id) {
            Some(i) => Ok(self.reports.remove(i).1),
            None => Err(ServiceError::UnknownTenant(run_id.to_string())),
        }
    }

    /// Run ids with a report ready, in completion order.
    pub fn finished(&self) -> Vec<&str> {
        self.reports.iter().map(|(id, _)| id.as_str()).collect()
    }

    /// Are any tenants still queued or active?
    pub fn has_live_tenants(&self) -> bool {
        !self.active.is_empty() || !self.queue.is_empty()
    }

    /// Currently active (started or about-to-start) tenant count.
    pub fn active_tenants(&self) -> usize {
        self.active.len()
    }

    /// Currently waiting tenant count.
    pub fn queued_tenants(&self) -> usize {
        self.queue.len()
    }

    /// The service-wide perf aggregation.
    pub fn service_perf(&self) -> &ServicePerf {
        &self.perf
    }

    /// Sum of declared budgets across queued + active tenants — the
    /// quantity admission control commits against.
    pub fn committed_budget_cents(&self) -> f64 {
        self.queue
            .iter()
            .chain(self.active.iter())
            .filter_map(|t| t.budget_cents)
            .sum()
    }

    fn knows(&self, run_id: &str) -> bool {
        self.queue.iter().any(|t| t.run_id == run_id)
            || self.active.iter().any(|t| t.run_id == run_id)
            || self.reports.iter().any(|(id, _)| id == run_id)
    }

    /// Promote queued tenants while the active set has room.
    fn backfill(&mut self) {
        while self.active.len() < self.cfg.max_active {
            match self.queue.pop_front() {
                Some(t) => self.active.push(t),
                None => break,
            }
        }
    }

    /// Advance `active[idx]` by one quantum. Returns `true` when the
    /// tenant is finished (report ready) or failed, i.e. should be
    /// retired from the active set.
    fn drive(&mut self, idx: usize) -> bool {
        let threads = self.threads;
        let every = self.cfg.checkpoint_every;
        let cache_capacity = self.cfg.cache_capacity;
        let MatchService { active, events, analyses, reports, perf, .. } = self;
        let t = &mut active[idx];

        if t.state.is_none() {
            match start_tenant(t, threads, every, cache_capacity, analyses, perf) {
                Ok(()) => {
                    if let Some(st) = &t.state {
                        if st.resumed_from_iteration().is_none() && st.snapshots_written() > 0 {
                            perf.snapshots_written += 1;
                            events.push_back(ServiceEvent::Checkpointed {
                                run_id: t.run_id.clone(),
                                iteration: 0,
                            });
                        }
                    }
                    false
                }
                Err(e) => {
                    perf.tenants_failed += 1;
                    events.push_back(ServiceEvent::Failed {
                        run_id: t.run_id.clone(),
                        message: e.to_string(),
                    });
                    true
                }
            }
        } else {
            match step_tenant(t, threads) {
                Ok(outcome) => {
                    if outcome.iterated {
                        if let Some(last) = t.state.as_ref().and_then(|s| s.iterations().last()) {
                            events.push_back(ServiceEvent::IterationCompleted {
                                run_id: t.run_id.clone(),
                                iteration: last.iteration as u64,
                                estimate: last.estimate.clone(),
                                spent_cents: t.platform.ledger().total_cents,
                            });
                        }
                    }
                    if outcome.checkpointed {
                        perf.snapshots_written += 1;
                        if let Some(st) = &t.state {
                            events.push_back(ServiceEvent::Checkpointed {
                                run_id: t.run_id.clone(),
                                iteration: st.completed_iterations() as u64,
                            });
                        }
                    }
                    if outcome.finished {
                        if let Some(st) = t.state.take() {
                            let report = t.engine.finish_run(
                                st,
                                &t.task,
                                &mut t.platform,
                                t.gold.as_ref(),
                                threads,
                                t.cache.as_ref(),
                            );
                            record_completion(t, &report, events, perf);
                            reports.push((t.run_id.clone(), report));
                        }
                        true
                    } else {
                        false
                    }
                }
                Err(e) => {
                    perf.tenants_failed += 1;
                    events.push_back(ServiceEvent::Failed {
                        run_id: t.run_id.clone(),
                        message: e.to_string(),
                    });
                    true
                }
            }
        }
    }
}

/// First quantum of a tenant: adopt or build the shared analysis, then
/// run the blocker (or restore the resume snapshot) via
/// [`Engine::start_run`].
fn start_tenant(
    t: &mut Tenant,
    threads: Threads,
    every: usize,
    cache_capacity: usize,
    analyses: &mut Vec<(String, Arc<TaskAnalysis>)>,
    perf: &mut ServicePerf,
) -> Result<(), CorleoneError> {
    // Content-addressed sharing: if any prior tenant built the analysis
    // for identical tables + vectorizer, adopt it. The shared value is
    // bit-identical to what this tenant would build, so run bytes are
    // unaffected — only build time (and this counter) changes.
    let afp = t.task.analysis_fingerprint().map_err(CorleoneError::Serialization)?;
    let mut adopted = false;
    if let Some((_, a)) = analyses.iter().find(|(k, _)| *k == afp) {
        adopted = t.task.install_analysis(Arc::clone(a));
    }
    if adopted {
        perf.analysis_cache_hits += 1;
        if let Some(a) = t.task.shared_analysis() {
            perf.analysis_bytes_saved += a.stats.resident_bytes as u64;
        }
    } else {
        perf.analysis_cache_misses += 1;
    }

    // Same cache semantics as a solo RunSession: resume restores the
    // snapshot's warm cache, a fresh run builds per the capacity knob.
    let cache = match &t.resume {
        Some(s) => s.cache.as_ref().map(FeatureCache::restore),
        None => (cache_capacity > 0).then(|| FeatureCache::with_capacity(cache_capacity)),
    };
    if t.resume.is_some() {
        perf.tenants_resumed += 1;
    }
    let ckpt = CheckpointPlan {
        snapshotter: t.snapshotter.take(),
        every,
        resume: t.resume.take(),
    };
    let state = t.engine.start_run(
        &t.task,
        &mut t.platform,
        t.oracle.as_ref(),
        t.gold.as_ref(),
        threads,
        cache.as_ref(),
        t.seed,
        ckpt,
    )?;
    if !adopted {
        if let Some(a) = t.task.shared_analysis() {
            perf.analysis_bytes_built += a.stats.resident_bytes as u64;
            analyses.push((afp, a));
        }
    }
    t.cache = cache;
    t.state = Some(state);
    Ok(())
}

/// One pipeline iteration of a started tenant.
fn step_tenant(t: &mut Tenant, threads: Threads) -> Result<StepOutcome, CorleoneError> {
    let Tenant { engine, task, platform, oracle, gold, cache, state, .. } = t;
    match state.as_mut() {
        Some(st) => engine.step_run(
            st,
            task,
            platform,
            oracle.as_ref(),
            gold.as_ref(),
            threads,
            cache.as_ref(),
        ),
        None => Ok(StepOutcome { iterated: false, checkpointed: false, finished: false }),
    }
}

/// Fold a finished tenant's report into the service perf view and emit
/// its termination event.
fn record_completion(
    t: &Tenant,
    report: &RunReport,
    events: &mut VecDeque<ServiceEvent>,
    perf: &mut ServicePerf,
) {
    perf.tenants_completed += 1;
    perf.total_cost_cents += report.total_cost_cents;
    perf.total_pairs_labeled += report.total_pairs_labeled;
    perf.tenants.push(TenantPerf {
        run_id: t.run_id.clone(),
        iterations: report.iterations.len() as u64,
        cost_cents: report.total_cost_cents,
        pairs_labeled: report.total_pairs_labeled,
        cache: report.perf.cache,
        analysis_build_ms: report.perf.kernels.analysis_build_ms,
        analysis_bytes: report.perf.kernels.analysis_memory.resident_bytes,
        pairs_vectorized: report.perf.kernels.pairs_vectorized,
        snapshots_written: report.perf.snapshots_written,
        resumed_from_iteration: report.perf.resumed_from_iteration,
    });
    events.push_back(ServiceEvent::Terminated {
        run_id: t.run_id.clone(),
        termination: report.termination,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use corleone::task::task_from_parts;
    use crowd::{CrowdConfig, GoldOracle, WorkerPool};
    use similarity::{Attribute, Schema, Table, Value};

    fn toy() -> (MatchTask, GoldOracle) {
        let schema = Arc::new(Schema::new(vec![Attribute::text("name")]));
        let a_rows: Vec<Vec<Value>> = (0..25)
            .map(|i| vec![Value::Text(format!("acme part number {i}"))])
            .collect();
        let mut b_rows: Vec<Vec<Value>> = (0..25)
            .map(|i| vec![Value::Text(format!("acme part number {i}"))])
            .collect();
        b_rows.extend((0..8).map(|i| vec![Value::Text(format!("globex unit {i}"))]));
        let a = Table::new("a", schema.clone(), a_rows);
        let b = Table::new("b", schema, b_rows);
        let task = task_from_parts(a, b, "same part", [(0, 0), (1, 1)], [(0, 30), (2, 28)]);
        let gold = GoldOracle::from_pairs((0..25).map(|i| (i, i)));
        (task, gold)
    }

    fn spec(run_id: &str, budget_cents: Option<f64>, seed: u64) -> TenantSpec {
        let (task, gold) = toy();
        let matches = gold.matches().clone();
        let mut config = CorleoneConfig::small();
        config.engine.budget_cents = budget_cents;
        TenantSpec {
            run_id: run_id.to_string(),
            task,
            platform: CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default()),
            oracle: Box::new(gold),
            gold: Some(matches),
            config,
            seed,
        }
    }

    #[test]
    fn duplicate_run_id_is_rejected() {
        let mut svc = MatchService::new(ServiceConfig::default()).expect("no registry");
        svc.submit(spec("r", None, 1)).expect("first admission");
        match svc.submit(spec("r", None, 1)) {
            Err(ServiceError::DuplicateRunId(id)) => assert_eq!(id, "r"),
            other => panic!("expected DuplicateRunId, got {other:?}"),
        }
    }

    #[test]
    fn queue_overflow_is_a_typed_error() {
        let cfg = ServiceConfig { max_active: 1, max_queued: 1, ..Default::default() };
        let mut svc = MatchService::new(cfg).expect("no registry");
        svc.submit(spec("a", None, 1)).expect("activates");
        svc.submit(spec("b", None, 2)).expect("queues");
        assert_eq!((svc.active_tenants(), svc.queued_tenants()), (1, 1));
        match svc.submit(spec("c", None, 3)) {
            Err(ServiceError::QueueFull { run_id, capacity }) => {
                assert_eq!((run_id.as_str(), capacity), ("c", 1));
            }
            other => panic!("expected QueueFull, got {other:?}"),
        }
    }

    #[test]
    fn aggregate_budget_admission_control() {
        let cfg = ServiceConfig { aggregate_budget_cents: Some(1000.0), ..Default::default() };
        let mut svc = MatchService::new(cfg).expect("no registry");
        // Under a cap, every tenant must declare a budget.
        match svc.submit(spec("unbounded", None, 1)) {
            Err(ServiceError::UnboundedBudget { run_id }) => assert_eq!(run_id, "unbounded"),
            other => panic!("expected UnboundedBudget, got {other:?}"),
        }
        svc.submit(spec("a", Some(600.0), 1)).expect("fits the cap");
        match svc.submit(spec("b", Some(600.0), 2)) {
            Err(ServiceError::QuotaExceeded { run_id, requested_cents, available_cents }) => {
                assert_eq!(run_id, "b");
                assert_eq!(requested_cents, 600.0);
                assert_eq!(available_cents, 400.0);
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // Completion releases the quota.
        svc.run_all();
        svc.submit(spec("b", Some(600.0), 2)).expect("quota released after completion");
    }

    #[test]
    fn events_stream_in_order_and_reports_are_claimable() {
        let mut svc = MatchService::new(ServiceConfig::default()).expect("no registry");
        svc.submit(spec("solo", None, 3)).expect("admitted");
        svc.run_all();
        let events = svc.poll_events();
        assert!(matches!(
            events.first(),
            Some(ServiceEvent::Admitted { queued: false, resuming: false, .. })
        ));
        assert!(matches!(events.last(), Some(ServiceEvent::Terminated { .. })));
        assert!(
            events.iter().any(|e| matches!(e, ServiceEvent::IterationCompleted { .. })),
            "interim estimates must stream"
        );
        assert!(events.iter().all(|e| e.run_id() == "solo"));
        assert!(svc.poll_events().is_empty(), "poll drains");
        let report = svc.take_report("solo").expect("finished");
        assert!(!report.iterations.is_empty());
        match svc.take_report("solo") {
            Err(ServiceError::UnknownTenant(id)) => assert_eq!(id, "solo"),
            other => panic!("expected UnknownTenant, got {other:?}"),
        }
    }

    #[test]
    fn identical_tables_share_one_analysis_build() {
        let mut svc = MatchService::new(ServiceConfig::default()).expect("no registry");
        svc.submit(spec("first", None, 7)).expect("admitted");
        svc.submit(spec("second", None, 7)).expect("admitted");
        svc.run_all();
        let perf = svc.service_perf();
        assert_eq!(perf.analysis_cache_misses, 1, "first tenant builds");
        assert_eq!(perf.analysis_cache_hits, 1, "second tenant adopts");
        // Sharing must be invisible to run bytes: same task + seed ⇒
        // identical reports whether the analysis was built or adopted.
        let a = svc.take_report("first").expect("finished");
        let b = svc.take_report("second").expect("finished");
        assert_eq!(a.deterministic_json(), b.deterministic_json());
    }

    #[test]
    fn interleaved_tenant_matches_solo_session_bytes() {
        let mut svc = MatchService::new(ServiceConfig::default()).expect("no registry");
        // Two competing tenants so "svc"'s quanta genuinely interleave.
        svc.submit(spec("svc", None, 11)).expect("admitted");
        svc.submit(spec("other", None, 12)).expect("admitted");
        svc.run_all();
        let service_report = svc.take_report("svc").expect("finished");

        let (task, gold) = toy();
        let mut platform = CrowdPlatform::new(WorkerPool::perfect(5), CrowdConfig::default());
        let solo_report = Engine::new(CorleoneConfig::small())
            .with_seed(11)
            .session(&task)
            .platform(&mut platform)
            .oracle(&gold)
            .gold(gold.matches())
            .run();
        assert_eq!(service_report.deterministic_json(), solo_report.deterministic_json());
    }
}
