//! The streamed progress API and the service-wide perf view.
//!
//! Events are poll-based: the scheduler pushes them as tenants progress
//! and [`MatchService::poll_events`](crate::MatchService::poll_events)
//! drains them in order. Everything is serializable so a driver can
//! stream them as JSON lines (the `corleone-serve` bin does).

use corleone::engine::Termination;
use corleone::estimator::AccuracyEstimate;
use corleone::CacheStats;
use serde::{Deserialize, Serialize};

/// One progress notification from the service.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ServiceEvent {
    /// The submission passed admission control.
    Admitted {
        /// The tenant's run id.
        run_id: String,
        /// `true` if the active set was full and the tenant is waiting.
        queued: bool,
        /// `true` if a prior checkpoint was found and the run will
        /// continue from it instead of starting fresh.
        resuming: bool,
    },
    /// One pipeline iteration (matcher → estimator → locator) completed.
    IterationCompleted {
        /// The tenant's run id.
        run_id: String,
        /// 1-based iteration number (counts iterations restored from a
        /// resumed snapshot too).
        iteration: u64,
        /// The estimator's interim view of the combined predictions.
        estimate: AccuracyEstimate,
        /// Crowd spend so far across the whole run, in cents.
        spent_cents: f64,
    },
    /// A checkpoint snapshot was written (iteration 0 is the
    /// post-blocking snapshot).
    Checkpointed {
        /// The tenant's run id.
        run_id: String,
        /// The completed-iteration count the snapshot captured.
        iteration: u64,
    },
    /// The run ended; its [`RunReport`](corleone::RunReport) is ready via
    /// [`MatchService::take_report`](crate::MatchService::take_report).
    Terminated {
        /// The tenant's run id.
        run_id: String,
        /// Why the run ended.
        termination: Termination,
    },
    /// The run failed with a typed error before producing a report.
    Failed {
        /// The tenant's run id.
        run_id: String,
        /// The rendered error.
        message: String,
    },
}

impl ServiceEvent {
    /// The run id this event concerns.
    pub fn run_id(&self) -> &str {
        match self {
            ServiceEvent::Admitted { run_id, .. }
            | ServiceEvent::IterationCompleted { run_id, .. }
            | ServiceEvent::Checkpointed { run_id, .. }
            | ServiceEvent::Terminated { run_id, .. }
            | ServiceEvent::Failed { run_id, .. } => run_id,
        }
    }
}

/// Aggregated execution telemetry across every tenant the service has
/// driven — the service-level analogue of
/// [`PerfReport`](corleone::PerfReport). Like per-run perf, nothing here
/// feeds back into any run's bytes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ServicePerf {
    /// Submissions that passed admission control.
    pub tenants_admitted: u64,
    /// Tenants that ran to completion (a report exists).
    pub tenants_completed: u64,
    /// Tenants that failed with a typed error.
    pub tenants_failed: u64,
    /// Tenants that continued from a prior checkpoint instead of
    /// starting fresh.
    pub tenants_resumed: u64,
    /// Tenant starts that adopted another tenant's record-analysis build
    /// through the content-addressed registry.
    pub analysis_cache_hits: u64,
    /// Tenant starts that had to build the analysis themselves (the
    /// build is then published for later tenants).
    pub analysis_cache_misses: u64,
    /// Resident arena bytes of analyses built by cache-missing tenants.
    pub analysis_bytes_built: u64,
    /// Resident arena bytes cache-hitting tenants did NOT have to build
    /// (the byte-denominated value of the shared-analysis registry).
    pub analysis_bytes_saved: u64,
    /// Scheduling quanta executed (one tenant iteration each).
    pub ticks: u64,
    /// Checkpoint snapshots written across all tenants.
    pub snapshots_written: u64,
    /// Total crowd spend across completed tenants, in cents.
    pub total_cost_cents: f64,
    /// Total pairs labeled across completed tenants.
    pub total_pairs_labeled: u64,
    /// Per-tenant summaries, in completion order.
    pub tenants: Vec<TenantPerf>,
}

/// One completed tenant's slice of the service perf view, distilled from
/// its [`RunReport`](corleone::RunReport).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TenantPerf {
    /// The tenant's run id.
    pub run_id: String,
    /// Pipeline iterations the run executed.
    pub iterations: u64,
    /// Crowd spend, in cents.
    pub cost_cents: f64,
    /// Distinct pairs the crowd labeled.
    pub pairs_labeled: u64,
    /// The tenant's feature-cache counters.
    pub cache: CacheStats,
    /// Milliseconds spent building the record-analysis layer (0 when it
    /// was adopted from the shared registry — the hit is visible here).
    pub analysis_build_ms: f64,
    /// Resident arena bytes of the tenant's analysis (slabs + headers),
    /// whether built locally or adopted from the shared registry.
    pub analysis_bytes: u64,
    /// Pairs vectorized during the run.
    pub pairs_vectorized: u64,
    /// Snapshots written, cumulative across the tenant's resume chain.
    pub snapshots_written: u64,
    /// The snapshot iteration this tenant resumed from, if any.
    pub resumed_from_iteration: Option<usize>,
}
