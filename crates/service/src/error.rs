//! Typed service-layer errors.
//!
//! Admission control rejects with these instead of queueing forever or
//! silently dropping work; engine and store failures inside a tenant's
//! run are wrapped so a caller can tell *whose* layer refused.

use corleone::CorleoneError;
use store::StoreError;

/// Why the service refused an operation.
#[derive(Debug)]
pub enum ServiceError {
    /// A tenant with this run id is already queued, running, or finished
    /// in this service instance.
    DuplicateRunId(String),
    /// The active set and the waiting queue are both full.
    QueueFull {
        /// The rejected submission's run id.
        run_id: String,
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// Admitting this tenant's declared budget would overcommit the
    /// service's aggregate crowd budget.
    QuotaExceeded {
        /// The rejected submission's run id.
        run_id: String,
        /// The budget the submission declared, in cents.
        requested_cents: f64,
        /// What the aggregate cap still has uncommitted, in cents.
        available_cents: f64,
    },
    /// The service enforces an aggregate budget, so every tenant must
    /// declare a per-run budget (`config.engine.budget_cents`).
    UnboundedBudget {
        /// The rejected submission's run id.
        run_id: String,
    },
    /// No tenant with this run id is known to the service.
    UnknownTenant(String),
    /// The checkpoint store refused (registry, snapshot, or fingerprint).
    Store(StoreError),
    /// The engine refused before any iteration ran.
    Engine(CorleoneError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::DuplicateRunId(id) => {
                write!(f, "run id {id:?} is already registered with this service")
            }
            ServiceError::QueueFull { run_id, capacity } => {
                write!(f, "cannot admit {run_id:?}: waiting queue is at capacity {capacity}")
            }
            ServiceError::QuotaExceeded { run_id, requested_cents, available_cents } => write!(
                f,
                "cannot admit {run_id:?}: declared budget {requested_cents:.1}¢ exceeds the \
                 {available_cents:.1}¢ still uncommitted under the aggregate cap"
            ),
            ServiceError::UnboundedBudget { run_id } => write!(
                f,
                "cannot admit {run_id:?}: the service enforces an aggregate budget, so the \
                 submission must declare engine.budget_cents"
            ),
            ServiceError::UnknownTenant(id) => {
                write!(f, "no tenant {id:?} in this service")
            }
            ServiceError::Store(e) => write!(f, "store: {e}"),
            ServiceError::Engine(e) => write!(f, "engine: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<StoreError> for ServiceError {
    fn from(e: StoreError) -> Self {
        ServiceError::Store(e)
    }
}

impl From<CorleoneError> for ServiceError {
    fn from(e: CorleoneError) -> Self {
        // Store failures keep their own variant even when they surface
        // through the engine, so callers match one shape either way.
        match e {
            CorleoneError::Store(s) => ServiceError::Store(s),
            other => ServiceError::Engine(other),
        }
    }
}
