//! `corleone-serve` — drive the multi-tenant [`MatchService`] from the
//! command line.
//!
//! Submits one tenant per requested dataset and ticks the service,
//! streaming [`ServiceEvent`]s as JSON lines on stdout. With
//! `--max-ticks N` the process stops after N quanta even if tenants are
//! still in flight — the CI smoke uses that to simulate a mid-run kill,
//! then reruns the same command (same `--root`) and asserts every tenant
//! resumed and finished with bytes identical to an uninterrupted run.
//!
//! ```text
//! corleone-serve --root /tmp/reg --out /tmp/reports \
//!     --datasets restaurants,citations,products --scale 0.2 --seed 7
//! ```

use corleone::{BlockerConfig, CorleoneConfig};
use corleone::task::task_from_parts;
use crowd::{CrowdConfig, CrowdPlatform, FaultConfig, GoldOracle, RetryPolicy, WorkerPool};
use datagen::{EmDataset, GenConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use service::{MatchService, ServiceConfig, TenantSpec};
use std::path::PathBuf;
use std::process::ExitCode;

struct Options {
    root: Option<PathBuf>,
    out: Option<PathBuf>,
    datasets: Vec<String>,
    scale: f64,
    seed: u64,
    error_rate: f64,
    threads: usize,
    max_active: usize,
    max_ticks: Option<u64>,
    quiet: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            root: None,
            out: None,
            datasets: datagen::DATASET_NAMES.iter().map(|s| s.to_string()).collect(),
            scale: 0.2,
            seed: 42,
            error_rate: 0.0,
            threads: 0,
            max_active: 4,
            max_ticks: None,
            quiet: false,
        }
    }
}

const HELP: &str = "corleone-serve: run the multi-tenant matching service

USAGE: corleone-serve [FLAGS]

  --root DIR        checkpoint-registry root (enables durability/resume)
  --out DIR         write each finished run's deterministic report JSON
                    to DIR/<run_id>.json
  --datasets CSV    datasets to submit, one tenant each
                    (default: restaurants,citations,products)
  --scale F         dataset scale factor (default 0.2)
  --seed N          base RNG seed (default 42)
  --error-rate F    mean simulated-worker error rate (default 0 = perfect)
  --threads N       worker threads, 0 = auto (default 0)
  --max-active N    tenants driven concurrently (default 4)
  --max-ticks N     stop after N scheduling quanta (simulates a kill);
                    exits 0 with a {\"killed\":...} marker if work remains
  --quiet           suppress per-event JSON lines
  --help            this text

Events stream to stdout as JSON lines; the final line is
{\"service_perf\": ...}.";

fn parse_args() -> Options {
    let mut opts = Options::default();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        match flag {
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            "--quiet" => {
                opts.quiet = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        let Some(value) = argv.get(i + 1) else {
            eprintln!("flag {flag} needs a value; see --help");
            std::process::exit(2);
        };
        match flag {
            "--root" => opts.root = Some(PathBuf::from(value)),
            "--out" => opts.out = Some(PathBuf::from(value)),
            "--datasets" => {
                opts.datasets = value.split(',').map(|s| s.trim().to_string()).collect()
            }
            "--scale" => opts.scale = value.parse().expect("--scale takes a float"),
            "--seed" => opts.seed = value.parse().expect("--seed takes an integer"),
            "--error-rate" => {
                opts.error_rate = value.parse().expect("--error-rate takes a float")
            }
            "--threads" => opts.threads = value.parse().expect("--threads takes an integer"),
            "--max-active" => {
                opts.max_active = value.parse().expect("--max-active takes an integer")
            }
            "--max-ticks" => {
                opts.max_ticks = Some(value.parse().expect("--max-ticks takes an integer"))
            }
            other => {
                eprintln!("unknown flag {other}; see --help");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    opts
}

/// The simulated crowd for one tenant (mirrors the bench harness).
fn make_platform(ds: &EmDataset, error_rate: f64, seed: u64) -> CrowdPlatform {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let pool = if error_rate == 0.0 {
        WorkerPool::perfect(50)
    } else {
        WorkerPool::heterogeneous(50, error_rate, error_rate / 2.0, &mut rng)
    };
    CrowdPlatform::with_faults(
        pool,
        CrowdConfig { price_cents: ds.price_cents, seed, ..Default::default() },
        FaultConfig::default(),
        RetryPolicy::default(),
    )
}

fn main() -> ExitCode {
    let opts = parse_args();

    let mut svc = match MatchService::new(ServiceConfig {
        threads: opts.threads,
        max_active: opts.max_active,
        checkpoint_root: opts.root.clone(),
        ..Default::default()
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open service: {e}");
            return ExitCode::from(2);
        }
    };

    for (k, name) in opts.datasets.iter().enumerate() {
        let Some(ds) = datagen::by_name(name, GenConfig { scale: opts.scale, seed: opts.seed })
        else {
            eprintln!("unknown dataset {name} (have: {})", datagen::DATASET_NAMES.join(", "));
            return ExitCode::from(2);
        };
        let task = task_from_parts(
            ds.table_a.clone(),
            ds.table_b.clone(),
            &ds.instruction,
            ds.seeds.positive,
            ds.seeds.negative,
        );
        let gold = GoldOracle::from_pairs(ds.gold.iter().copied()); // lint:allow(D2): order-free set-to-set projection; the oracle stores membership only and never iterates in hash order
        let platform = make_platform(&ds, opts.error_rate, opts.seed + k as u64);
        let matches = gold.matches().clone();
        let spec = TenantSpec {
            run_id: name.clone(),
            task,
            platform,
            oracle: Box::new(gold),
            gold: Some(matches),
            config: CorleoneConfig {
                blocker: BlockerConfig { t_b: 100_000, ..Default::default() },
                ..Default::default()
            },
            seed: opts.seed + 1000 * k as u64,
        };
        if let Err(e) = svc.submit(spec) {
            eprintln!("cannot submit {name}: {e}");
            return ExitCode::from(2);
        }
    }

    let interrupted = match opts.max_ticks {
        Some(n) => !svc.run_ticks(n),
        None => {
            svc.run_all();
            false
        }
    };

    for ev in svc.poll_events() {
        if !opts.quiet {
            println!("{}", serde_json::to_string(&ev).expect("event serializes"));
        }
    }

    let finished: Vec<String> = svc.finished().iter().map(|s| s.to_string()).collect();
    if let Some(dir) = &opts.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create --out dir: {e}");
            return ExitCode::from(2);
        }
        for id in &finished {
            let report = svc.take_report(id).expect("finished report exists");
            let path = dir.join(format!("{id}.json"));
            if let Err(e) = std::fs::write(&path, report.deterministic_json()) {
                eprintln!("cannot write {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }

    let perf = serde_json::to_string(svc.service_perf()).expect("perf serializes");
    println!("{{\"service_perf\":{perf}}}");
    if interrupted {
        let done = serde_json::to_string(&finished).expect("list serializes");
        println!(
            "{{\"killed\":{{\"ticks\":{},\"finished\":{done}}}}}",
            opts.max_ticks.unwrap_or(0)
        );
    }
    ExitCode::SUCCESS
}
