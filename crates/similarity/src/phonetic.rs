//! Phonetic matching: American Soundex, the classic record-linkage
//! encoding for person and place names ("Smith" ≈ "Smyth").

/// American Soundex code of a word: first letter + three digits, e.g.
/// `soundex("Robert") == "R163"`. Returns `None` for words without an
/// ASCII-alphabetic first character.
pub fn soundex(word: &str) -> Option<String> {
    let mut chars = word
        .chars()
        .filter(|c| c.is_ascii_alphabetic())
        .map(|c| c.to_ascii_uppercase());
    let first = chars.next()?;

    fn digit(c: char) -> u8 {
        match c {
            'B' | 'F' | 'P' | 'V' => 1,
            'C' | 'G' | 'J' | 'K' | 'Q' | 'S' | 'X' | 'Z' => 2,
            'D' | 'T' => 3,
            'L' => 4,
            'M' | 'N' => 5,
            'R' => 6,
            // A, E, I, O, U, Y are not coded; H and W are transparent.
            _ => 0,
        }
    }

    let mut code = String::with_capacity(4);
    code.push(first);
    let mut last_digit = digit(first);
    for c in chars {
        if c == 'H' || c == 'W' {
            // H and W do not reset the previous digit (standard rule).
            continue;
        }
        let d = digit(c);
        if d != 0 && d != last_digit {
            code.push(char::from(b'0' + d));
            if code.len() == 4 {
                break;
            }
        }
        last_digit = d;
    }
    while code.len() < 4 {
        code.push('0');
    }
    Some(code)
}

/// Token-level Soundex similarity of two strings: the Jaccard overlap of
/// their token Soundex-code sets. 1.0 when both have no codable tokens.
pub fn soundex_similarity(a: &str, b: &str) -> f64 {
    use std::collections::HashSet;
    let codes = |s: &str| -> HashSet<String> {
        crate::tokenize::words(s)
            .iter()
            .filter_map(|w| soundex(w))
            .collect()
    };
    let ca = codes(a);
    let cb = codes(b);
    if ca.is_empty() && cb.is_empty() {
        return 1.0;
    }
    if ca.is_empty() || cb.is_empty() {
        return 0.0;
    }
    let inter = ca.intersection(&cb).count();
    let union = ca.len() + cb.len() - inter;
    inter as f64 / union as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_codes() {
        assert_eq!(soundex("Robert").as_deref(), Some("R163"));
        assert_eq!(soundex("Rupert").as_deref(), Some("R163"));
        assert_eq!(soundex("Ashcraft").as_deref(), Some("A261"));
        assert_eq!(soundex("Ashcroft").as_deref(), Some("A261"));
        assert_eq!(soundex("Tymczak").as_deref(), Some("T522"));
        assert_eq!(soundex("Pfister").as_deref(), Some("P236"));
        assert_eq!(soundex("Honeyman").as_deref(), Some("H555"));
    }

    #[test]
    fn homophones_collide() {
        assert_eq!(soundex("Smith"), soundex("Smyth"));
        // Different first letters give different codes by design.
        assert_ne!(soundex("Catherine"), soundex("Kathryn"));
    }

    #[test]
    fn short_and_empty_words() {
        assert_eq!(soundex("A").as_deref(), Some("A000"));
        assert_eq!(soundex(""), None);
        assert_eq!(soundex("123"), None);
    }

    #[test]
    fn similarity_on_token_sets() {
        assert_eq!(soundex_similarity("john smith", "jon smyth"), 1.0);
        assert_eq!(soundex_similarity("john smith", "mary jones"), 0.0);
        let half = soundex_similarity("john smith", "john baker");
        assert!(half > 0.0 && half < 1.0);
    }

    #[test]
    fn similarity_empty_cases() {
        assert_eq!(soundex_similarity("", ""), 1.0);
        assert_eq!(soundex_similarity("", "smith"), 0.0);
        assert_eq!(soundex_similarity("123 456", "789"), 1.0, "no codable tokens on either side");
    }
}
