//! Numeric comparators for number-typed attributes (price, year, pages).
//!
//! All comparators return a similarity in `[0, 1]` so decision-tree
//! thresholds read naturally in extracted blocking rules, e.g. the paper's
//! "if the prices of two products differ by at least $20, then they do not
//! match" becomes `price_rel_sim <= t`.

/// 1.0 if the two numbers are equal (to within `1e-9` absolute), else 0.0.
pub fn num_exact(a: f64, b: f64) -> f64 {
    f64::from((a - b).abs() <= 1e-9)
}

/// Relative similarity `1 - |a - b| / max(|a|, |b|)`, clamped to `[0, 1]`.
/// Equal values (including both zero) give 1.
pub fn num_rel_sim(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        return 1.0;
    }
    (1.0 - (a - b).abs() / denom).clamp(0.0, 1.0)
}

/// Absolute-difference similarity with a scale: `1 - min(|a-b|/scale, 1)`.
/// A `scale` of 20 reproduces the paper's "$20 price difference" style rule
/// as a threshold on this feature.
pub fn num_abs_sim(a: f64, b: f64, scale: f64) -> f64 {
    assert!(scale > 0.0, "scale must be positive");
    1.0 - ((a - b).abs() / scale).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_matches() {
        assert_eq!(num_exact(3.0, 3.0), 1.0);
        assert_eq!(num_exact(3.0, 3.1), 0.0);
    }

    #[test]
    fn rel_sim_behaviour() {
        assert_eq!(num_rel_sim(0.0, 0.0), 1.0);
        assert_eq!(num_rel_sim(100.0, 100.0), 1.0);
        assert!((num_rel_sim(100.0, 90.0) - 0.9).abs() < 1e-12);
        assert_eq!(num_rel_sim(0.0, 5.0), 0.0);
    }

    #[test]
    fn rel_sim_negative_values() {
        let s = num_rel_sim(-10.0, 10.0);
        assert!((0.0..=1.0).contains(&s));
        assert_eq!(s, 0.0);
    }

    #[test]
    fn abs_sim_scale() {
        assert_eq!(num_abs_sim(100.0, 100.0, 20.0), 1.0);
        assert_eq!(num_abs_sim(100.0, 110.0, 20.0), 0.5);
        assert_eq!(num_abs_sim(100.0, 200.0, 20.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn abs_sim_rejects_zero_scale() {
        num_abs_sim(1.0, 2.0, 0.0);
    }
}
